"""Quickstart: a content-aware distributed web server in ~60 lines.

Builds a three-node heterogeneous cluster, partitions a small site across
it by content type, routes client requests through the content-aware
distributor, and prints where every request landed.

Run:  python examples/quickstart.py
"""

from repro.cluster import BackendServer, distributor_spec, paper_testbed_specs
from repro.content import generate_catalog
from repro.core import ContentAwareDistributor, apply_plan, partition_by_type
from repro.net import HttpRequest, Lan, Nic
from repro.sim import RngStream, Simulator


def main():
    sim = Simulator()
    lan = Lan(sim)

    # Three machines from the paper's testbed: one slow, one mid, one fast.
    specs = [paper_testbed_specs()[i] for i in (0, 3, 5)]
    servers = {s.name: BackendServer(sim, lan, s) for s in specs}

    # A small synthetic site, partitioned by content type: every node gets
    # the content it is best at serving.
    catalog = generate_catalog(60, rng=RngStream(7))
    plan = partition_by_type(catalog, specs)
    url_table, doctree = apply_plan(plan, catalog, servers)

    # The front end: terminates client connections, parses HTTP, consults
    # the URL table, and splices onto pre-forked backend connections.
    distributor = ContentAwareDistributor(
        sim, lan, distributor_spec(), servers, url_table, prefork=4)

    client_nic = Nic(sim, 100, name="client")
    urls = sorted(catalog.paths())[:10]
    outcomes = []

    def client():
        for url in urls:
            outcome = yield sim.process(
                distributor.submit(HttpRequest(url), client_nic))
            outcomes.append(outcome)

    sim.process(client())
    sim.run()

    print("Cluster:")
    for spec in specs:
        print(f"  {spec.name}: {spec.cpu_mhz:.0f} MHz, {spec.mem_mb} MB, "
              f"{spec.disk.kind} disk -> "
              f"{len(servers[spec.name].store)} documents placed")
    print("\nRequests routed by the content-aware distributor:")
    for outcome in outcomes:
        resp = outcome.response
        print(f"  {resp.request.url:45s} -> {outcome.backend:8s} "
              f"({resp.status}, {resp.content_length:6d} B, "
              f"{outcome.latency * 1000:6.2f} ms)")
    print(f"\nURL table: {len(url_table)} documents, "
          f"{url_table.memory_footprint_bytes() / 1024:.1f} KB, "
          f"{url_table.lookups} lookups "
          f"({url_table.cache_hit_rate:.0%} entry-cache hits)")
    assert all(o.response.ok for o in outcomes)
    print("OK")


if __name__ == "__main__":
    main()
