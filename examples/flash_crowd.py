"""Flash crowd: two defence layers against a sudden demand spike, live.

Act 1 -- §3.3 auto-replication dissolving a hot spot.  A handful of
documents suddenly dominate the request stream, overloading the nodes
that hold them.  The distributor's load accountant (l_i = (load_CPU +
load_Disk) x processing_time, L_j per §3.3) flags the imbalance; the
controller ships CopyAgents to underutilized nodes; the URL table picks
up the new replicas and the distributor spreads the load.

Act 2 -- overload control riding out a 4x client burst.  Replication
takes seconds; a flash crowd arrives in milliseconds.  The distributor's
admission control sheds the excess with clean 503 + Retry-After responses
while a concurrent disk slowdown trips that node's circuit breaker, and
both heal before the episode ends.

Run:  python examples/flash_crowd.py
"""

import statistics

from repro.core import AutoReplicator, LoadAccountant
from repro.experiments import ExperimentConfig, build_deployment
from repro.mgmt import Broker, Controller
from repro.workload import WORKLOAD_A, WorkloadSpec

FLASH = WorkloadSpec(
    name="flash-crowd",
    catalog_mix=WORKLOAD_A.catalog_mix,
    request_mix=WORKLOAD_A.request_mix,
    zipf_alpha=1.4,           # extreme skew: a flash crowd on a few pages
    n_objects=2000,
)


def imbalance(servers):
    served = [s.meter.completions for s in servers.values()]
    mean = statistics.mean(served)
    return statistics.pstdev(served) / mean if mean else 0.0


def run(auto: bool):
    config = ExperimentConfig(scheme="partition-ca", workload=FLASH,
                              duration=14.0, warmup=3.0, seed=42)
    deployment = build_deployment(config)
    accountant = LoadAccountant(
        {n: s.spec.weight for n, s in deployment.servers.items()})
    deployment.frontend.on_response = accountant.record
    replicator = None
    if auto:
        controller = Controller(deployment.sim, deployment.frontend.nic,
                                deployment.url_table, deployment.doctree)
        registry = {}
        for server in deployment.servers.values():
            controller.register_broker(Broker(
                deployment.sim, deployment.lan, server,
                deployment.frontend.nic, registry))
        replicator = AutoReplicator(
            deployment.sim, accountant, deployment.url_table, controller,
            interval=1.5, threshold=0.30, max_actions_per_interval=3)
        replicator.start()
    summary = deployment.run(50)
    return deployment, summary, replicator


def main():
    dep_off, sum_off, _ = run(auto=False)
    dep_on, sum_on, replicator = run(auto=True)

    print("Flash crowd on a partitioned cluster (50 WebBench clients):\n")
    print(f"  without auto-replication: {sum_off['throughput_rps']:7.1f} "
          f"req/s, load imbalance CV = {imbalance(dep_off.servers):.2f}")
    print(f"  with    auto-replication: {sum_on['throughput_rps']:7.1f} "
          f"req/s, load imbalance CV = {imbalance(dep_on.servers):.2f}")
    print(f"\nRebalancing actions taken ({len(replicator.history)}):")
    for action in replicator.history[:12]:
        print(f"  t={action.at:5.2f}s {action.kind:9s} {action.path} "
              f"-> {action.node}")
    if len(replicator.history) > 12:
        print(f"  ... and {len(replicator.history) - 12} more")
    assert imbalance(dep_on.servers) < imbalance(dep_off.servers)
    print("\nOK: the hot spot was dissolved by automatic replication")

    overload_act()


def overload_act():
    """Act 2: shedding + circuit breakers under a 4x burst + slow disk."""
    from repro.experiments.chaos import run_overload_episode

    print("\nFlash crowd, act 2: a 4x client burst with a concurrent disk "
          "slowdown,\nthis time absorbed by the overload-control layer:\n")
    result = run_overload_episode(seed=1)
    print(f"  completed {result.completed} requests "
          f"({result.goodput:.0f} req/s goodput)")
    print(f"  shed {result.shed} excess requests with a clean "
          f"503 + Retry-After")
    print(f"  {result.timeouts} backend timeouts tripped "
          f"{result.breaker_opened} circuit breaker(s); "
          f"{result.breaker_reclosed} re-closed after probing")
    print(f"  admission window never exceeded: peak inflight "
          f"{result.admission_peak_inflight}/"
          f"{result.config.max_inflight}, peak queue "
          f"{result.admission_peak_queue}/{result.config.max_queue}")
    assert result.survived, result.failure_summary()
    assert result.shed > 0 and result.breaker_opened > 0
    assert result.breakers_all_closed
    print("\nOK: the burst was shed cleanly and every breaker re-closed")


if __name__ == "__main__":
    main()
