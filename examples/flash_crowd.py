"""Flash crowd: §3.3 auto-replication dissolving a hot spot, live.

A handful of documents suddenly dominate the request stream (a "flash
crowd"), overloading the nodes that hold them.  The distributor's load
accountant (l_i = (load_CPU + load_Disk) x processing_time, L_j per §3.3)
flags the imbalance; the controller ships CopyAgents to underutilized
nodes; the URL table picks up the new replicas and the distributor spreads
the load.

Run:  python examples/flash_crowd.py
"""

import statistics

from repro.core import AutoReplicator, LoadAccountant
from repro.experiments import ExperimentConfig, build_deployment
from repro.mgmt import Broker, Controller
from repro.workload import WORKLOAD_A, WorkloadSpec

FLASH = WorkloadSpec(
    name="flash-crowd",
    catalog_mix=WORKLOAD_A.catalog_mix,
    request_mix=WORKLOAD_A.request_mix,
    zipf_alpha=1.4,           # extreme skew: a flash crowd on a few pages
    n_objects=2000,
)


def imbalance(servers):
    served = [s.meter.completions for s in servers.values()]
    mean = statistics.mean(served)
    return statistics.pstdev(served) / mean if mean else 0.0


def run(auto: bool):
    config = ExperimentConfig(scheme="partition-ca", workload=FLASH,
                              duration=14.0, warmup=3.0, seed=42)
    deployment = build_deployment(config)
    accountant = LoadAccountant(
        {n: s.spec.weight for n, s in deployment.servers.items()})
    deployment.frontend.on_response = accountant.record
    replicator = None
    if auto:
        controller = Controller(deployment.sim, deployment.frontend.nic,
                                deployment.url_table, deployment.doctree)
        registry = {}
        for server in deployment.servers.values():
            controller.register_broker(Broker(
                deployment.sim, deployment.lan, server,
                deployment.frontend.nic, registry))
        replicator = AutoReplicator(
            deployment.sim, accountant, deployment.url_table, controller,
            interval=1.5, threshold=0.30, max_actions_per_interval=3)
        replicator.start()
    summary = deployment.run(50)
    return deployment, summary, replicator


def main():
    dep_off, sum_off, _ = run(auto=False)
    dep_on, sum_on, replicator = run(auto=True)

    print("Flash crowd on a partitioned cluster (50 WebBench clients):\n")
    print(f"  without auto-replication: {sum_off['throughput_rps']:7.1f} "
          f"req/s, load imbalance CV = {imbalance(dep_off.servers):.2f}")
    print(f"  with    auto-replication: {sum_on['throughput_rps']:7.1f} "
          f"req/s, load imbalance CV = {imbalance(dep_on.servers):.2f}")
    print(f"\nRebalancing actions taken ({len(replicator.history)}):")
    for action in replicator.history[:12]:
        print(f"  t={action.at:5.2f}s {action.kind:9s} {action.path} "
              f"-> {action.node}")
    if len(replicator.history) > 12:
        print(f"  ... and {len(replicator.history) - 12} more")
    assert imbalance(dep_on.servers) < imbalance(dep_off.servers)
    print("\nOK: the hot spot was dissolved by automatic replication")


if __name__ == "__main__":
    main()
