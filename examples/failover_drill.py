"""Failover drill: the §2.3 primary/backup distributor under live load.

The primary distributor crashes mid-run.  Requests submitted during the
detection window (three missed 250 ms heartbeats) wait it out with the
pair's bounded retry backoff, then the backup -- whose URL table was
replicated on every heartbeat -- takes over and answers them.

Run:  python examples/failover_drill.py
"""

from repro.cluster import distributor_spec
from repro.core import ContentAwareDistributor, HaDistributorPair, UrlTable
from repro.experiments import ExperimentConfig, build_deployment
from repro.sim import RngStream
from repro.workload import WORKLOAD_A, WebBenchRig

CRASH_AT = 5.0
DURATION = 12.0


def main():
    config = ExperimentConfig(scheme="partition-ca", workload=WORKLOAD_A,
                              duration=DURATION, warmup=1.0, seed=42,
                              n_objects=2000)
    deployment = build_deployment(config)
    sim = deployment.sim
    primary = deployment.frontend
    backup = ContentAwareDistributor(
        sim, deployment.lan, distributor_spec(), deployment.servers,
        UrlTable(), prefork=config.prefork, warmup=config.warmup,
        name="dist-backup")
    pair = HaDistributorPair(sim, primary, backup,
                             heartbeat_interval=0.25, misses_to_fail=3)
    rig = WebBenchRig(sim, pair.submit, deployment.sampler,
                      n_machines=8, warmup=1.0, rng=RngStream(42, "rig"))
    sim.schedule(CRASH_AT, primary.crash)
    rig.start_clients(30)
    sim.run(until=DURATION)
    rig.stop_clients()
    pair.stop()

    print("Failover drill (30 clients, primary crashes at t=5.0 s):\n")
    print(f"  heartbeats observed: {pair.heartbeats}, "
          f"state syncs: {pair.state_syncs}")
    print(f"  takeover at t={pair.failover_at:.2f} s "
          f"(detection {pair.failover_at - CRASH_AT:.2f} s)")
    print(f"  requests that rode out the outage via retry: {pair.retries}, "
          f"client errors: {rig.errors}")
    print(f"  requests served: primary={primary.meter.completions}, "
          f"backup={backup.meter.completions}")
    print(f"  overall throughput: {rig.throughput(DURATION):.1f} req/s")
    assert pair.failed_over and backup.meter.completions > 0
    assert pair.retries > 0 and rig.errors == 0
    print("\nOK: the backup took over; no client saw an error")


if __name__ == "__main__":
    main()
