"""Reproduce every table and figure in the paper's evaluation (§5).

Runs the §5.2 URL-table overhead measurement and Figures 2-4 at full scale
and prints the reproduction tables next to the paper's reported shapes.
Takes a minute or two of wall time (the throughput figures sweep 5 client
counts over up to 3 cluster configurations each).

Run:  python examples/reproduce_paper.py
"""

import time

from repro.experiments import (figure2, figure3, figure4,
                               url_table_overhead)


def main():
    t0 = time.time()

    print("=" * 70)
    result = url_table_overhead()
    print(result["rendered"])
    print("paper reports: ~8700 objects, ~260 KB, ~4.32 us "
          "(350 MHz kernel implementation)")

    print("\n" + "=" * 70)
    fig2 = figure2()
    print(fig2["rendered"])
    print("paper's shape: NFS far below and flat; "
          "partition consistently above replication")

    print("\n" + "=" * 70)
    fig3 = figure3()
    print(fig3["rendered"])
    print("paper's shape: content-aware partition outperforms "
          "full replication + WLC")

    print("\n" + "=" * 70)
    fig4 = figure4()
    print(fig4["rendered"])

    print("\n" + "=" * 70)
    print(f"done in {time.time() - t0:.0f} s")


if __name__ == "__main__":
    main()
