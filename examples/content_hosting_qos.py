"""Differentiated hosting: explicit control over resource allocation (§4).

The paper's hosting scenario: third-party content providers pay for
different service levels.  The administrator uses the remote console to
place a premium customer's catalog on the powerful nodes (replicated), and
a budget customer's on a single slow node -- then both are hit with the
same traffic and the latency difference is measured.

Run:  python examples/content_hosting_qos.py
"""

from repro.cluster import BackendServer, distributor_spec, paper_testbed_specs
from repro.content import ContentItem, ContentType, DocTree, Priority
from repro.core import ContentAwareDistributor, UrlTable
from repro.mgmt import Broker, Controller, RemoteConsole
from repro.net import HttpRequest, Lan, Nic
from repro.sim import Simulator, SummaryStats


def main():
    sim = Simulator()
    lan = Lan(sim)
    specs = paper_testbed_specs()
    servers = {s.name: BackendServer(sim, lan, s) for s in specs}
    url_table = UrlTable()
    doctree = DocTree()
    distributor = ContentAwareDistributor(
        sim, lan, distributor_spec(), servers, url_table, prefork=8)

    # management plane: controller on the distributor, broker per node
    controller = Controller(sim, distributor.nic, url_table, doctree)
    registry = {}
    for server in servers.values():
        controller.register_broker(
            Broker(sim, lan, server, distributor.nic, registry))
    console = RemoteConsole(controller)

    premium = [ContentItem(f"/premium/page{i:02d}.html", 6000,
                           ContentType.HTML, priority=Priority.CRITICAL)
               for i in range(8)]
    budget = [ContentItem(f"/budget/page{i:02d}.html", 6000,
                          ContentType.HTML)
              for i in range(8)]

    def provision():
        # premium: replicated across the two most powerful nodes
        for item in premium:
            yield from console.insert_file(item, {"s350-0", "s350-1"})
        # budget: single copy on the slowest machine
        for item in budget:
            yield from console.insert_file(item, {"s150-0"})

    console.run(provision())
    print("Administrator's single-system-image view (excerpt):")
    print(console.view("/premium", max_entries=3))
    print(console.view("/budget", max_entries=3))

    # identical concurrent traffic against both customers
    client_nic = Nic(sim, 100, name="client")
    latency = {"premium": SummaryStats(), "budget": SummaryStats()}

    def client(tier, items):
        for _round in range(20):
            for item in items:
                outcome = yield sim.process(distributor.submit(
                    HttpRequest(item.path), client_nic))
                assert outcome.response.ok
                latency[tier].observe(outcome.latency)

    for _ in range(3):  # three concurrent clients per tier
        sim.process(client("premium", premium))
        sim.process(client("budget", budget))
    sim.run()

    p, b = latency["premium"], latency["budget"]
    print(f"\npremium: {p.n} requests, mean {p.mean * 1000:.2f} ms "
          f"(max {p.max * 1000:.2f} ms) across 2 powerful replicas")
    print(f"budget:  {b.n} requests, mean {b.mean * 1000:.2f} ms "
          f"(max {b.max * 1000:.2f} ms) on one slow node")
    assert p.mean < b.mean, "premium tier must see lower latency"
    print("OK: explicit placement delivered differentiated service")


if __name__ == "__main__":
    main()
