"""Mutable documents: the §4 consistency workflow, live.

"In our Web site, some documents are mutable, which presents an
interesting challenge ... We can separate such mutable content onto a
dedicated server node ... consistency of object modifications by the
content provider can be maintained by a centralized policy."

This example shows both §4 strategies:

1. a *volatile* stock-ticker page pinned to a single dedicated node -- no
   replicas, so every update is trivially consistent;
2. a *replicated* product page pushed to three nodes -- an update flows
   through UpdateAgents that rewrite each copy and invalidate each node's
   memory cache, so no client ever sees a stale version after the push
   completes.

Run:  python examples/mutable_content.py
"""

import dataclasses

from repro.cluster import BackendServer, distributor_spec, paper_testbed_specs
from repro.content import ContentItem, ContentType, DocTree
from repro.core import ContentAwareDistributor, UrlTable
from repro.mgmt import Broker, Controller, RemoteConsole
from repro.net import HttpRequest, Lan, Nic
from repro.sim import Simulator


def main():
    sim = Simulator()
    lan = Lan(sim)
    specs = paper_testbed_specs()[:4]
    servers = {s.name: BackendServer(sim, lan, s) for s in specs}
    url_table, doctree = UrlTable(), DocTree()
    distributor = ContentAwareDistributor(
        sim, lan, distributor_spec(), servers, url_table, prefork=4)
    controller = Controller(sim, distributor.nic, url_table, doctree)
    registry = {}
    for server in servers.values():
        controller.register_broker(
            Broker(sim, lan, server, distributor.nic, registry))
    console = RemoteConsole(controller)

    names = sorted(servers)
    ticker = ContentItem("/live/ticker.html", 2000, ContentType.HTML,
                         mutable=True)
    product = ContentItem("/products/catalog.html", 8000, ContentType.HTML,
                          mutable=True)
    console.run(console.insert_file(ticker, {names[3]}))   # dedicated node
    console.run(console.insert_file(product, set(names[:3])))  # 3 replicas

    client_nic = Nic(sim, 100, name="client")
    observed = []

    def fetch(url):
        outcome = yield sim.process(distributor.submit(HttpRequest(url),
                                                       client_nic))
        observed.append((sim.now, url, outcome.backend,
                         outcome.response.content_length))

    # read both pages from several replicas, update, read again
    def scenario():
        for _ in range(3):
            yield from fetch(ticker.path)
            yield from fetch(product.path)
        # content provider pushes new versions through the controller
        yield from controller.update_content(dataclasses.replace(
            ticker, size_bytes=2400))
        yield from controller.update_content(dataclasses.replace(
            product, size_bytes=9500))
        for _ in range(3):
            yield from fetch(ticker.path)
            yield from fetch(product.path)

    sim.process(scenario())
    sim.run()

    print("Reads before and after the §4 consistency push:\n")
    for at, url, backend, size in observed:
        print(f"  t={at:6.3f}s  {url:28s} from {backend:8s} {size:5d} B")
    ticker_sizes = {s for _, u, _, s in observed if u == ticker.path}
    product_sizes = [s for _, u, _, s in observed if u == product.path]
    assert ticker_sizes == {2000, 2400}
    assert product_sizes[:3] == [8000] * 3
    assert product_sizes[3:] == [9500] * 3, \
        "no stale replica may be served after the update completes"
    print("\nOK: every replica served the new version after the push; "
          "the dedicated\nnode needed no cross-node consistency at all")


if __name__ == "__main__":
    main()
