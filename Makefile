PYTHON ?= python
PYTHONPATH := src

.PHONY: verify test check check-deep chaos-smoke chaos chaos-overload \
	trace telemetry telemetry-smoke golden bench bench-smoke \
	bench-queues sweep sweep-smoke recover recover-smoke

## The full tier-1 gate: unit/integration tests, the repro.analysis
## correctness passes, and the chaos smoke episodes.
verify: test check chaos-smoke

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

check:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro check

## Whole-program gate/leak/stale-state analysis only (fast, static).
check-deep:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro check --deep

chaos-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q -m chaos_smoke

## The full fault-injection acceptance run (20 seeded episodes).
chaos:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro chaos --seed 1 --episodes 20

## The flash-crowd + slow-disk overload episode (graceful degradation).
chaos-overload:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro overload --seed 1

## The traced overload episode: trace summary + per-request waterfall.
trace:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro trace --seed 1

## The telemetry dashboard for the overload episode (DESIGN §15):
## windowed series, scheduler introspection, SLO verdicts.
telemetry:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro top --seed 1

## CI smoke: the telemetry test battery (sampler/SLO consistency,
## byte-determinism, probe zero-perturbation).
telemetry-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q -m telemetry

## Kernel fast-path wall-clock benchmark (writes BENCH_kernel.json).
## Not part of tier-1: wall-clock numbers are host-dependent.
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench

## CI smoke: every bench stage at reduced scale, asserting the fast
## path is byte-identical to the segment path.  The wall-clock speedup
## target is NOT asserted (CI hosts are slow and noisy) -- --smoke
## makes the exit code equivalence-only.
bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench --scale quick \
		--smoke --output .bench-smoke.json

## Scheduler queue microbenchmark: heap vs calendar backend on pure
## scheduling mixes, with a cross-backend dispatch-order digest check
## (writes BENCH_queues.json).
bench-queues:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/perf/profile_queues.py \
		--out BENCH_queues.json

## Run the checked-in sweep spec across 4 workers (DESIGN §13); the
## merged report is byte-identical regardless of the worker count.
sweep:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro sweep \
		--spec specs/sweep_smoke.json --workers 4 --out sweeps

## CI smoke: same spec, 2 workers, fresh output root.
sweep-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro sweep \
		--spec specs/sweep_smoke.json --workers 2 --out .sweep-smoke

## Exhaustive crash-point exploration: crash the controller at every
## WAL/dispatch boundary of the scripted episode, prove each converges.
recover:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro recover --explore

## CI smoke: a bounded shard of the exploration (first 12 boundaries).
recover-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro recover --explore \
		--limit 12

## Regenerate the golden fixtures (metrics + recovery) after a reviewed
## model change.
golden:
	REPRO_UPDATE_GOLDEN=1 PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		tests/integration/test_golden_metrics.py \
		tests/integration/test_recovery_golden.py -q
