"""Ablations of the routing-policy design choices DESIGN.md calls out.

1. The L4 baseline's **Weighted** Least Connection vs plain least
   connections vs random, on the heterogeneous cluster with Workload B:
   capacity weights are what keep the content-blind router from drowning
   the slow nodes.
2. Replica selection at the content-aware distributor (least-loaded vs
   round-robin) when hot content is replicated.
"""

from conftest import emit
from repro.core import (LeastConnections, RandomChoice, RoundRobin,
                        WeightedLeastConnection, partial_replication)
from repro.experiments import ExperimentConfig, build_deployment
from repro.workload import WORKLOAD_B, WorkloadSpec, WORKLOAD_A


def run_l4(policy_factory, duration=12.0, warmup=3.0, clients=60):
    config = ExperimentConfig(scheme="replication-l4", workload=WORKLOAD_B,
                              duration=duration, warmup=warmup, seed=42,
                              n_objects=4000)
    deployment = build_deployment(config)
    deployment.frontend.policy = policy_factory()
    return deployment.run(clients)["throughput_rps"]


HOT_REPLICATED = WorkloadSpec(
    name="hot-replicated",
    catalog_mix=WORKLOAD_A.catalog_mix,
    request_mix=WORKLOAD_A.request_mix,
    zipf_alpha=1.2,
    n_objects=2000,
)


def run_replica_policy(policy_factory, duration=12.0, warmup=3.0,
                       clients=60):
    config = ExperimentConfig(scheme="partition-ca", workload=HOT_REPLICATED,
                              duration=duration, warmup=warmup, seed=42)
    deployment = build_deployment(config)
    # replicate the hottest documents (smallest per class) everywhere,
    # so replica *selection* is what differentiates the policies
    hot = sorted(deployment.catalog.static_items(),
                 key=lambda i: i.size_bytes)[:50]
    plan_nodes = list(deployment.servers)
    for item in hot:
        for node in plan_nodes:
            if not deployment.servers[node].holds(item.path):
                deployment.servers[node].place(item)
                deployment.servers[node].cache.admit(item.path,
                                                     item.size_bytes)
            if node not in deployment.url_table.locations(item.path):
                deployment.url_table.add_location(item.path, node)
    deployment.frontend.policy = policy_factory()
    return deployment.run(clients)["throughput_rps"]


class TestL4PolicyAblation:
    def test_weighted_least_connection_beats_unweighted_and_random(
            self, benchmark):
        results = benchmark.pedantic(
            lambda: {
                "wlc": run_l4(WeightedLeastConnection),
                "lc": run_l4(LeastConnections),
                "random": run_l4(RandomChoice),
            }, rounds=1, iterations=1)
        emit("Ablation: L4 routing policy on Workload B (req/s)\n" +
             "\n".join(f"  {name:8s} {rps:7.1f}"
                       for name, rps in results.items()))
        # weights matter on a heterogeneous cluster
        assert results["wlc"] > results["random"]
        assert results["wlc"] >= 0.95 * results["lc"]


class TestReplicaPolicyAblation:
    def test_least_loaded_replica_selection_at_least_matches_round_robin(
            self, benchmark):
        results = benchmark.pedantic(
            lambda: {
                "least-loaded": run_replica_policy(WeightedLeastConnection),
                "round-robin": run_replica_policy(RoundRobin),
            }, rounds=1, iterations=1)
        emit("Ablation: replica selection at the distributor (req/s)\n" +
             "\n".join(f"  {name:12s} {rps:7.1f}"
                       for name, rps in results.items()))
        assert results["least-loaded"] >= 0.9 * results["round-robin"]
