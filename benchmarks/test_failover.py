"""§2.3 ablation: primary/backup distributor failover under load.

"If the primary distributor fails, the backup takes over the job of the
primary..."  We crash the primary mid-run: clients see connection errors
for exactly the detection window (misses x heartbeat interval), then the
backup -- whose URL table was replicated on each heartbeat -- takes over
and throughput recovers.
"""

from conftest import emit
from repro.cluster import distributor_spec
from repro.core import ContentAwareDistributor, HaDistributorPair, UrlTable
from repro.experiments import ExperimentConfig, build_deployment
from repro.workload import WORKLOAD_A, RequestSampler, WebBenchRig
from repro.sim import RngStream

HEARTBEAT = 0.25
MISSES = 3
CRASH_AT = 6.0
DURATION = 14.0


def run_failover(clients=40):
    config = ExperimentConfig(scheme="partition-ca", workload=WORKLOAD_A,
                              duration=DURATION, warmup=2.0, seed=42,
                              n_objects=3000)
    deployment = build_deployment(config)
    sim = deployment.sim
    primary = deployment.frontend
    backup = ContentAwareDistributor(
        sim, deployment.lan, distributor_spec(), deployment.servers,
        UrlTable(), prefork=config.prefork,
        max_pool_size=config.max_pool_size, warmup=config.warmup,
        name="dist-backup")
    # retry_attempts=0: this benchmark measures the *raw* outage window,
    # so clients must fail fast instead of riding out the takeover
    pair = HaDistributorPair(sim, primary, backup,
                             heartbeat_interval=HEARTBEAT,
                             misses_to_fail=MISSES,
                             retry_attempts=0)
    rig = WebBenchRig(sim, pair.submit, deployment.sampler,
                      n_machines=config.n_client_machines,
                      warmup=config.warmup, rng=RngStream(42, "rig"))
    sim.schedule(CRASH_AT, primary.crash)
    rig.start_clients(clients)
    sim.run(until=DURATION)
    rig.stop_clients()
    pair.stop()
    recovered_completions = backup.meter.completions
    return {
        "pair": pair,
        "rig": rig,
        "failover_at": pair.failover_at,
        "detection": pair.failover_at - CRASH_AT,
        "errors": rig.errors,
        "error_window": (rig.last_error_at - rig.first_error_at
                         if rig.errors else 0.0),
        "primary_completions": primary.meter.completions,
        "backup_completions": recovered_completions,
        "throughput": rig.throughput(DURATION),
    }


class TestFailover:
    def test_failover_restores_service(self, benchmark):
        result = benchmark.pedantic(run_failover, rounds=1, iterations=1)
        emit("Ablation: §2.3 primary/backup distributor failover\n"
             f"  crash at t={CRASH_AT:.1f}s, takeover at "
             f"t={result['failover_at']:.2f}s "
             f"(detection {result['detection']:.2f}s)\n"
             f"  client errors={result['errors']} over "
             f"{result['error_window']:.2f}s; "
             f"served: primary={result['primary_completions']}, "
             f"backup={result['backup_completions']}")
        pair = result["pair"]
        assert pair.failed_over
        # detection window depends on the crash's phase relative to the
        # heartbeat: between (misses-1) and (misses+1) intervals
        assert (MISSES - 1) * HEARTBEAT - 1e-6 <= result["detection"] \
            <= (MISSES + 1) * HEARTBEAT + 1e-6
        # clients saw errors only around the outage window
        assert result["errors"] > 0
        assert result["rig"].first_error_at >= CRASH_AT
        assert result["rig"].last_error_at <= result["failover_at"] + 0.5
        # the backup carried real load after takeover
        assert result["backup_completions"] > 100
        # the replicated URL table let it route everything
        assert result["backup_completions"] + result["errors"] > 0
