"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation of a design choice DESIGN.md calls out) and *emits* the rendered
table.  Emitted tables are shown in the terminal summary at the end of the
run (pytest's fd-level capture would otherwise swallow them), so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` leaves a
complete reproduction record.  Shape assertions (who wins, by roughly what
factor) guard each result; absolute numbers are host-dependent and
unasserted.
"""

_emitted: list[str] = []


def emit(text: str) -> None:
    """Record a reproduction table for the end-of-run report."""
    _emitted.append(text)


def pytest_terminal_summary(terminalreporter):
    if not _emitted:
        return
    terminalreporter.write_sep("=", "reproduction tables")
    for block in _emitted:
        terminalreporter.write_line("")
        for line in block.splitlines():
            terminalreporter.write_line(line)
