"""Figure 4 reproduction: benefit of content segregation at saturation.

Paper: "Figure 4 shows the throughput when the server was saturated by 120
concurrent WebBench clients.  In the content-aware router with content
segregation, the average CGI request, average ASP request, and average
static request ... increased by 45 percent, 42 percent, and 58 percent
respectively."

We assert the direction (every class gains) and the band (tens of
percent), not the exact 1999 percentages.
"""

from conftest import emit
from repro.experiments import figure4


class TestFigure4:
    def test_figure4_reproduction(self, benchmark):
        result = benchmark.pedantic(
            lambda: figure4(n_clients=120, duration=16.0, warmup=4.0),
            rounds=1, iterations=1)
        emit(result["rendered"] +
             "\npaper gains: CGI +45%, ASP +42%, static +58%")
        for klass in ("cgi", "asp", "static"):
            gain = result["classes"][klass]["gain_pct"]
            assert gain > 15.0, f"{klass} gain too small: {gain:.1f}%"
            assert gain < 150.0, f"{klass} gain implausibly large: {gain:.1f}%"

        # the paper's headline: segregation helps *static* content a lot
        # (short requests no longer delayed by long-running ones)
        assert result["classes"]["static"]["gain_pct"] > 25.0
