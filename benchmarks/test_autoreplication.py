"""§3.3 ablation: the auto-replication facility under a hot-spot workload.

"The dispersing content approach could lead to load imbalance derived from
the access skew among the documents. ... we implement an auto-replication
facility to further ensure an even load distribution."

A strongly Zipf-skewed static workload concentrates load on the few nodes
holding the hottest documents.  With the auto-replicator running, popular
content is copied to underutilized nodes (and the URL table updated), so
the distributor can spread replica load; the per-node load imbalance must
drop and throughput must not regress.
"""

import statistics

from conftest import emit
from repro.content import ContentType
from repro.core import AutoReplicator, LoadAccountant
from repro.experiments import ExperimentConfig, build_deployment
from repro.mgmt import Broker, Controller
from repro.workload import WORKLOAD_A, WorkloadSpec

HOTSPOT = WorkloadSpec(
    name="hotspot",
    catalog_mix=WORKLOAD_A.catalog_mix,
    request_mix=WORKLOAD_A.request_mix,
    zipf_alpha=1.30,          # much hotter than A's 0.45: a few documents
    n_objects=3000,           # dominate, pinning their home nodes
)


def run_cell(auto_replicate: bool, duration=16.0, warmup=4.0, clients=60):
    config = ExperimentConfig(scheme="partition-ca", workload=HOTSPOT,
                              duration=duration, warmup=warmup, seed=42)
    deployment = build_deployment(config)
    frontend = deployment.frontend
    accountant = LoadAccountant(
        {name: srv.spec.weight for name, srv in deployment.servers.items()})
    frontend.on_response = accountant.record
    replicator = None
    if auto_replicate:
        controller = Controller(deployment.sim, frontend.nic,
                                deployment.url_table, deployment.doctree)
        registry: dict[str, Broker] = {}
        for server in deployment.servers.values():
            broker = Broker(deployment.sim, deployment.lan, server,
                            frontend.nic, registry)
            controller.register_broker(broker)
        replicator = AutoReplicator(
            deployment.sim, accountant, deployment.url_table, controller,
            interval=1.5, threshold=0.30, max_actions_per_interval=3)
        replicator.start()
    summary = deployment.run(clients)
    served = [srv.meter.completions
              for srv in deployment.servers.values()]
    mean = statistics.mean(served)
    imbalance = (statistics.pstdev(served) / mean) if mean else 0.0
    return {
        "throughput": summary["throughput_rps"],
        "imbalance_cv": imbalance,
        "max_over_mean": max(served) / mean if mean else 0.0,
        "actions": len(replicator.history) if replicator else 0,
        "served": served,
    }


class TestAutoReplication:
    def test_autoreplication_evens_load(self, benchmark):
        results = benchmark.pedantic(
            lambda: {"off": run_cell(False), "on": run_cell(True)},
            rounds=1, iterations=1)
        off, on = results["off"], results["on"]
        emit("Ablation: §3.3 auto-replication under a hot-spot workload\n"
             f"  off: {off['throughput']:7.1f} req/s  "
             f"imbalance CV={off['imbalance_cv']:.2f}  "
             f"max/mean={off['max_over_mean']:.2f}\n"
             f"  on:  {on['throughput']:7.1f} req/s  "
             f"imbalance CV={on['imbalance_cv']:.2f}  "
             f"max/mean={on['max_over_mean']:.2f}  "
             f"(actions={on['actions']})")
        assert on["actions"] >= 2, "replicator must have acted"
        assert on["imbalance_cv"] < off["imbalance_cv"], \
            "auto-replication must reduce load imbalance"
        assert on["throughput"] > 0.9 * off["throughput"], \
            "auto-replication must not cost meaningful throughput"
