"""Ablation: backend failure under live load, end to end.

A backend dies mid-run.  The broker stops answering status probes, the
cluster monitor (§3.1's monitoring loop) marks the node down in the
distributor's routing view, and re-replicates documents that still have a
surviving copy.  Replicated (critical) content stays available; documents
whose only copy lived on the dead node return errors until it recovers --
exactly the §1.2 trade-off between partitioning and replication.
"""

from conftest import emit
from repro.core import AutoReplicator, LoadAccountant
from repro.experiments import ExperimentConfig, build_deployment
from repro.mgmt import Broker, ClusterMonitor, Controller
from repro.workload import WORKLOAD_A

CRASH_AT = 5.0
RECOVER_AT = 11.0
DURATION = 16.0


def run_failure_drill(clients=50):
    config = ExperimentConfig(scheme="partition-ca", workload=WORKLOAD_A,
                              duration=DURATION, warmup=2.0, seed=42,
                              n_objects=2500)
    deployment = build_deployment(config)
    sim = deployment.sim
    controller = Controller(sim, deployment.frontend.nic,
                            deployment.url_table, deployment.doctree)
    registry: dict[str, Broker] = {}
    for server in deployment.servers.values():
        controller.register_broker(Broker(
            sim, deployment.lan, server, deployment.frontend.nic, registry))
    monitor = ClusterMonitor(sim, controller, deployment.frontend.view,
                             interval=0.5, misses_to_fail=2)
    monitor.start()
    victim = "s350-1"
    sim.schedule(CRASH_AT, deployment.servers[victim].crash)
    sim.schedule(RECOVER_AT, deployment.servers[victim].recover)
    summary = deployment.run(clients)
    monitor.stop()
    kinds = [e.kind for e in monitor.events]
    return {
        "summary": summary,
        "monitor": monitor,
        "victim": victim,
        "kinds": kinds,
        "down_at": next(e.at for e in monitor.events if e.kind == "down"),
        "re_replications": kinds.count("re-replicated"),
        "lost": kinds.count("lost"),
        "errors": summary["errors"],
        "throughput": summary["throughput_rps"],
    }


class TestBackendFailure:
    def test_monitor_contains_the_failure(self, benchmark):
        result = benchmark.pedantic(run_failure_drill, rounds=1,
                                    iterations=1)
        from collections import Counter
        counts = dict(Counter(result["kinds"]))
        emit("Ablation: backend failure under load (crash t=5 s, "
             "recover t=11 s)\n"
             f"  detected down at t={result['down_at']:.2f}s; "
             f"event counts={counts}\n"
             f"  re-replicated={result['re_replications']} documents, "
             f"single-copy lost={result['lost']}\n"
             f"  client errors={result['errors']}, overall throughput "
             f"{result['throughput']:.1f} req/s")
        # detection happened within a couple of monitor rounds
        assert CRASH_AT <= result["down_at"] <= CRASH_AT + 2.5
        # the node came back and was marked up again
        assert "up" in result["kinds"]
        # replicated (critical) content was re-protected on survivors
        assert result["re_replications"] > 0
        # partition-without-replication loses single-copy documents --
        # the §1.2 trade-off made visible
        assert result["lost"] > 0
        # but the cluster kept serving: errors (failed requests for the
        # victim's single-copy content during its 6 s outage) stay a small
        # fraction of the traffic
        completed = result["summary"]["completed"]
        assert completed > 7 * result["errors"]
