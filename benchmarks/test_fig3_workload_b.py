"""Figure 3 reproduction: benefit of content partition (Workload B).

Paper's shape: "the throughput achieved with our proposed system
outperforms that of content full-replication with Weighted-Least-Connection
load distribution" -- content-blind dispatch sends CPU-heavy dynamic
requests to slow/low-memory nodes, where they take orders of magnitude
longer.
"""

from conftest import emit
from repro.experiments import figure3


class TestFigure3:
    def test_figure3_reproduction(self, benchmark):
        result = benchmark.pedantic(
            lambda: figure3(clients=(15, 30, 60, 90, 120),
                            duration=14.0, warmup=4.0),
            rounds=1, iterations=1)
        emit(result["rendered"])
        replication = result["series"]["replication-l4"]
        partition = result["series"]["partition-ca"]

        # the content-aware configuration wins at every load level
        for n, (p, r) in enumerate(zip(partition, replication)):
            assert p > r, f"partition-ca must win at point {n}: {p} vs {r}"

        # and the margin grows toward saturation (heterogeneity bites
        # hardest when the cluster is busiest)
        first_gain = partition[0] / replication[0]
        last_gain = partition[-1] / replication[-1]
        assert last_gain > first_gain
        assert last_gain > 1.2, f"saturation gain too small: {last_gain:.2f}"
