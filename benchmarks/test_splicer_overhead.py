"""§5.2 mechanism overhead: the packet-level distributor's per-request cost.

The paper (citing its companion [24]) claims the content-aware mechanism's
overhead "is insignificant": the pre-forked persistent connections mean no
distributor-to-backend handshake is ever paid per request, and relaying is
pure header rewriting.  This benchmark drives the real packet-level
splicer and counts what the mechanism actually does per request.
"""

import pytest

from conftest import emit
from repro.content import ContentItem, ContentType
from repro.core import SplicingDistributor, UrlTable
from repro.net import (Address, Host, HttpRequest, HttpResponse, Network,
                       TcpState)
from repro.sim import Simulator


def build(prefork=4):
    sim = Simulator()
    net = Network(sim)
    table = UrlTable()
    host = Host(net, "10.0.1.1")

    def app(sock):
        def loop():
            while sock.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
                payload, _ = yield sock.recv()
                response = HttpResponse(request=payload,
                                        content_length=2048,
                                        served_by="s1")
                sock.send(response, response.wire_bytes)

        sim.process(loop())

    host.listen(80, app)
    dist = SplicingDistributor(sim, net, table,
                               {"s1": Address("10.0.1.1", 80)},
                               prefork=prefork)
    done = []
    dist.prefork_all().add_callback(lambda ev: done.append(True))
    sim.run(until=0.01)
    assert done
    item = ContentItem("/doc.html", 2048, ContentType.HTML)
    table.insert(item, {"s1"})
    return sim, net, dist, item


def run_requests(sim, net, dist, item, n):
    host = Host(net, "10.0.9.1")
    served = []

    def go():
        for _ in range(n):
            sock = host.socket()
            yield sock.connect(Address("10.0.0.100", 80))
            request = HttpRequest(item.path)
            sock.send(request, request.wire_bytes)
            payload, _ = yield sock.recv()
            served.append(payload)
            yield sock.close()

    sim.process(go())
    sim.run(until=sim.now + 60.0)
    return served


class TestSplicerOverhead:
    def test_per_request_segment_budget(self, benchmark):
        def measure():
            sim, net, dist, item = build()
            baseline_segments = net.segments_sent  # prefork handshakes
            served = run_requests(sim, net, dist, item, 50)
            return {
                "dist": dist,
                "served": len(served),
                "segments": net.segments_sent - baseline_segments,
                "sim_time": sim.now,
            }

        result = benchmark.pedantic(measure, rounds=1, iterations=1)
        dist = result["dist"]
        per_request = result["segments"] / result["served"]
        emit("Section 5.2 mechanism overhead (packet-level splicer)\n"
             f"  {result['served']} requests, "
             f"{result['segments']} segments total "
             f"({per_request:.1f} segments/request)\n"
             f"  backend handshakes after prefork: 0 "
             f"(pre-forked persistent connections reused)")
        assert result["served"] == 50
        # the §2.2 budget: client handshake (3) + request + its ACK +
        # relayed request + its ACK + response + its ACK + relay back +
        # client ACK + 4-segment teardown ~= 16; assert a sane bound
        assert per_request <= 20
        # no distributor->backend SYN after the prefork phase: every leg
        # still has its original ISN-based flow
        assert all(leg.state == "ESTABLISHED"
                   for leg in dist._legs.values())
        # connection reuse really happened
        assert sum(leg.uses for leg in dist._legs.values()) == 50

    def test_lookup_plus_splice_scales_with_requests(self, benchmark):
        """Doubling requests doubles segments -- no superlinear cost."""
        def measure(n):
            sim, net, dist, item = build()
            base = net.segments_sent
            run_requests(sim, net, dist, item, n)
            return net.segments_sent - base

        small = measure(20)
        large = measure(40)
        assert large == pytest.approx(2 * small, rel=0.1)
        benchmark.pedantic(lambda: measure(10), rounds=1, iterations=1)
