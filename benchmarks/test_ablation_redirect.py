"""Ablation: splicing distributor vs HTTP redirection (§2.1's rejected
alternative).

The paper rejects redirection because "it necessitate[s] the use of one
additional connection, which introduces an extra round-trip latency".
That round trip is a *client* round trip -- negligible on the §5.1 LAN
testbed, dominant for real WAN clients.  The benchmark therefore runs both
regimes:

* **LAN clients** (client RTT ~0): redirection is competitive -- its data
  path bypasses the front end entirely (visible in the NIC counters);
* **WAN clients** (40 ms one-way): the extra connection's round trips
  roughly double user-perceived latency, which is the paper's argument.
"""

from conftest import emit
from repro.cluster import distributor_spec
from repro.core import ContentAwareDistributor, HttpRedirector
from repro.experiments import ExperimentConfig, build_deployment
from repro.sim import RngStream
from repro.workload import WORKLOAD_A, WebBenchRig

WAN_ONE_WAY = 0.040


def run_cell(front: str, clients: int, client_latency: float,
             duration=12.0, warmup=3.0):
    config = ExperimentConfig(scheme="partition-ca", workload=WORKLOAD_A,
                              duration=duration, warmup=warmup, seed=42,
                              n_objects=4000)
    deployment = build_deployment(config)
    cls = HttpRedirector if front == "redirect" else ContentAwareDistributor
    frontend = cls(deployment.sim, deployment.lan, distributor_spec(),
                   deployment.servers, deployment.url_table,
                   warmup=warmup, client_latency=client_latency)
    rig = WebBenchRig(deployment.sim, frontend.submit, deployment.sampler,
                      n_machines=config.n_client_machines,
                      warmup=warmup, rng=RngStream(42, "rig"))
    rig.start_clients(clients)
    deployment.sim.run(until=duration)
    rig.stop_clients()
    return {
        "rps": rig.throughput(duration),
        "p50_ms": rig.latency.percentile(50) * 1000,
        "fe_nic_mb": frontend.nic.bytes_sent / 1e6,
    }


class TestRedirectAblation:
    def test_splice_vs_redirect_lan_and_wan(self, benchmark):
        results = benchmark.pedantic(
            lambda: {
                "lan": {f: run_cell(f, clients=30, client_latency=0.0)
                        for f in ("splice", "redirect")},
                "wan": {f: run_cell(f, clients=30,
                                    client_latency=WAN_ONE_WAY)
                        for f in ("splice", "redirect")},
            }, rounds=1, iterations=1)
        lines = ["Ablation: §2.1 splicing vs HTTP redirection"]
        for regime, cells in results.items():
            for front, r in cells.items():
                lines.append(
                    f"  {regime} clients, {front:8s}: {r['rps']:7.1f} "
                    f"req/s, p50 {r['p50_ms']:6.1f} ms, "
                    f"front-end tx {r['fe_nic_mb']:6.1f} MB")
        emit("\n".join(lines))

        wan = results["wan"]
        # the paper's complaint: the extra connection's client round trips
        # dominate WAN latency (roughly 2x)
        assert wan["redirect"]["p50_ms"] > 1.5 * wan["splice"]["p50_ms"]
        # closed-loop consequence: per-client throughput collapses too
        assert wan["redirect"]["rps"] < wan["splice"]["rps"]
        # redirection's structural property on any network: content bytes
        # bypass the front end
        lan = results["lan"]
        assert lan["redirect"]["fe_nic_mb"] < 0.2 * lan["splice"]["fe_nic_mb"]
