"""Ablations promised in DESIGN.md §5: auto-replication threshold
sensitivity, and the §3.3 load-metric constants vs naive balancing.

1. **Threshold sensitivity** -- §3.3 declares a node overloaded when L_j
   exceeds the cluster average "by a threshold" but never says by how
   much.  Sweeping the threshold shows the trade-off: a tight threshold
   reacts to noise (many actions), a loose one never reacts at all.
2. **Load metric as a routing signal** -- the paper computes l_i with
   heuristic constants (static 1/9, dynamic 10/5) and says "a somewhat
   heuristic constant that makes intuitive sense works well".  We compare
   replica selection driven by the accumulated L_j metric against plain
   weighted connection counting on a replicated hot set with mixed
   dynamic/static traffic.
"""

import statistics

from conftest import emit
from repro.core import (AutoReplicator, LoadAccountant, LoadAwareReplica,
                        WeightedLeastConnection)
from repro.experiments import ExperimentConfig, build_deployment
from repro.mgmt import Broker, Controller
from repro.workload import WORKLOAD_A, WORKLOAD_B, WorkloadSpec

HOTSPOT = WorkloadSpec(
    name="hotspot-threshold",
    catalog_mix=WORKLOAD_A.catalog_mix,
    request_mix=WORKLOAD_A.request_mix,
    zipf_alpha=1.30,
    n_objects=3000,
)


def run_threshold(threshold: float, duration=14.0, warmup=3.0, clients=50):
    config = ExperimentConfig(scheme="partition-ca", workload=HOTSPOT,
                              duration=duration, warmup=warmup, seed=42)
    deployment = build_deployment(config)
    accountant = LoadAccountant(
        {n: s.spec.weight for n, s in deployment.servers.items()})
    deployment.frontend.on_response = accountant.record
    controller = Controller(deployment.sim, deployment.frontend.nic,
                            deployment.url_table, deployment.doctree)
    registry: dict[str, Broker] = {}
    for server in deployment.servers.values():
        controller.register_broker(Broker(
            deployment.sim, deployment.lan, server,
            deployment.frontend.nic, registry))
    replicator = AutoReplicator(deployment.sim, accountant,
                                deployment.url_table, controller,
                                interval=1.5, threshold=threshold,
                                max_actions_per_interval=3)
    replicator.start()
    summary = deployment.run(clients)
    served = [s.meter.completions for s in deployment.servers.values()]
    mean = statistics.mean(served)
    return {
        "throughput": summary["throughput_rps"],
        "imbalance": statistics.pstdev(served) / mean if mean else 0.0,
        "actions": len(replicator.history),
    }


def run_replica_metric(policy_name: str, duration=12.0, warmup=3.0,
                       clients=60):
    config = ExperimentConfig(scheme="partition-ca", workload=WORKLOAD_B,
                              duration=duration, warmup=warmup, seed=42,
                              n_objects=3000)
    deployment = build_deployment(config)
    # replicate the hottest static documents cluster-wide so replica
    # *selection* is exercised against background dynamic traffic
    hot = sorted(deployment.catalog.static_items(),
                 key=lambda i: i.size_bytes)[:40]
    for item in hot:
        for node, server in deployment.servers.items():
            if not server.holds(item.path):
                server.place(item)
                server.cache.admit(item.path, item.size_bytes)
            if node not in deployment.url_table.locations(item.path):
                deployment.url_table.add_location(item.path, node)
    accountant = LoadAccountant(
        {n: s.spec.weight for n, s in deployment.servers.items()})
    deployment.frontend.on_response = accountant.record
    if policy_name == "load-metric":
        deployment.frontend.policy = LoadAwareReplica(accountant)
    else:
        deployment.frontend.policy = WeightedLeastConnection()
    return deployment.run(clients)["throughput_rps"]


class TestThresholdSensitivity:
    def test_threshold_sweep(self, benchmark):
        thresholds = (0.15, 0.30, 0.60, 1.50)
        results = benchmark.pedantic(
            lambda: {t: run_threshold(t) for t in thresholds},
            rounds=1, iterations=1)
        lines = ["Ablation: §3.3 overload-threshold sensitivity "
                 "(hot-spot workload)"]
        for t, r in results.items():
            lines.append(f"  threshold {t:4.2f}: {r['throughput']:7.1f} "
                         f"req/s, imbalance CV={r['imbalance']:.2f}, "
                         f"actions={r['actions']}")
        emit("\n".join(lines))
        # tighter thresholds act more
        actions = [results[t]["actions"] for t in thresholds]
        assert all(a >= b for a, b in zip(actions, actions[1:])), actions
        # a very loose threshold effectively disables rebalancing, and the
        # hot spot costs real throughput
        assert results[1.50]["actions"] < results[0.15]["actions"]
        assert results[0.30]["throughput"] > 1.2 * results[1.50]["throughput"]


class TestLoadMetricRouting:
    def test_load_metric_vs_connection_counting(self, benchmark):
        results = benchmark.pedantic(
            lambda: {
                "load-metric": run_replica_metric("load-metric"),
                "connections": run_replica_metric("connections"),
            }, rounds=1, iterations=1)
        emit("Ablation: §3.3 load metric as the replica-selection signal\n"
             f"  L_j (1/9, 10/5 weights): {results['load-metric']:7.1f} "
             f"req/s\n"
             f"  weighted conn counting:  {results['connections']:7.1f} "
             f"req/s")
        # the paper's claim is modest ("works well"): the metric must be
        # competitive with connection counting, not necessarily better
        assert results["load-metric"] > 0.85 * results["connections"]
