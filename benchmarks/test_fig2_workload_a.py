"""Figure 2 reproduction: benefit of content partition (Workload A).

Paper's shape: the NFS-shared configuration "performed very poorly compared
to the other two content placement schemes" (the file server is the
bottleneck), and "content partition with content-aware routing consistently
achieved a greater throughput" than full replication (reduced per-node
working set -> better memory-cache hit rates).
"""

from conftest import emit
from repro.experiments import figure2


class TestFigure2:
    def test_figure2_reproduction(self, benchmark):
        result = benchmark.pedantic(
            lambda: figure2(clients=(15, 30, 60, 90, 120),
                            duration=14.0, warmup=4.0),
            rounds=1, iterations=1)
        emit(result["rendered"])
        replication = result["series"]["replication-l4"]
        nfs = result["series"]["nfs-l4"]
        partition = result["series"]["partition-ca"]

        # NFS far below both alternatives at every load level
        for n, r, p in zip(nfs, replication, partition):
            assert n < 0.75 * r, "NFS must trail full replication"
            assert n < 0.75 * p, "NFS must trail content partition"

        # NFS is flat: the file server saturates early
        assert max(nfs) < 1.3 * min(nfs)

        # partition + content-aware routing consistently above replication
        wins = sum(1 for p, r in zip(partition, replication) if p > r)
        assert wins >= 4, (
            f"partition must beat replication consistently, won {wins}/5")

        # cache mechanism: partition's per-node working set fits in memory
        last = result["details"]["partition-ca"][-1]
        base = result["details"]["replication-l4"][-1]
        assert last["mean_cache_hit_rate"] > base["mean_cache_hit_rate"]
