"""Extension benchmark: LARD vs the paper's schemes (future-work study).

The paper's conclusion: "In the future, we will further investigate more
sophisticated load-balancing algorithm[s]".  LARD (Pai et al., ASPLOS
1998) is the canonical contemporary: content-aware like the paper's
distributor, but with a *dynamic* content-to-server assignment over a
fully replicated cluster instead of a static partition.

Two regimes on Workload A:

* **cold caches** -- LARD's home turf: locality builds per-node working
  sets on the fly, so it must beat content-blind WLC;
* **steady state (prewarmed)** -- the paper's static partition, which
  also encodes node *capacity* (dynamic on fast CPUs, video on fast
  disks), stays on top on this heterogeneous testbed in both regimes.
"""

from conftest import emit
from repro.experiments import ExperimentConfig, build_deployment
from repro.workload import WORKLOAD_A


def run(scheme, prewarm, clients=90, duration=14.0, warmup=4.0):
    config = ExperimentConfig(scheme=scheme, workload=WORKLOAD_A,
                              duration=duration, warmup=warmup,
                              prewarm=prewarm, seed=42)
    return build_deployment(config).run(clients)["throughput_rps"]


class TestLardExtension:
    def test_lard_vs_paper_schemes(self, benchmark):
        schemes = ("replication-l4", "replication-lard", "partition-ca")
        results = benchmark.pedantic(
            lambda: {
                "cold": {s: run(s, prewarm=False) for s in schemes},
                "warm": {s: run(s, prewarm=True) for s in schemes},
            }, rounds=1, iterations=1)
        lines = ["Extension: LARD vs the paper's schemes "
                 "(Workload A, 90 clients, req/s)"]
        for regime in ("cold", "warm"):
            row = "  ".join(f"{s}={results[regime][s]:7.1f}"
                            for s in schemes)
            lines.append(f"  {regime:4s}: {row}")
        emit("\n".join(lines))

        cold, warm = results["cold"], results["warm"]
        # LARD's locality beats content-blind WLC from cold caches
        assert cold["replication-lard"] > cold["replication-l4"]
        # the paper's heterogeneity-aware static partition wins both
        # regimes on this testbed
        assert cold["partition-ca"] > cold["replication-lard"]
        assert warm["partition-ca"] > warm["replication-lard"]
