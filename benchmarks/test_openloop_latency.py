"""Extension benchmark: open-loop latency vs offered load (hockey stick).

The paper evaluates with a closed-loop generator (WebBench), which cannot
show queueing onset directly.  Replaying Poisson traces at increasing
offered rates exposes where each placement scheme's latency knee sits --
the partition + content-aware configuration sustains a higher offered load
before p95 latency explodes.
"""

from conftest import emit
from repro.core import OverloadConfig
from repro.experiments import ExperimentConfig, build_deployment
from repro.sim import RngStream
from repro.workload import WORKLOAD_A, TraceReplayer, generate_trace

RATES = (200, 500, 800)
DURATION = 10.0
WARMUP = 2.0
#: well past the partition-ca knee: the over-capacity point where the
#: shedding-vs-unbounded-queueing comparison is made
OVER_RATE = 1400


def run_point(scheme: str, rate: int,
              overload: OverloadConfig = None) -> dict:
    config = ExperimentConfig(scheme=scheme, workload=WORKLOAD_A,
                              duration=DURATION, warmup=WARMUP, seed=42,
                              overload=overload)
    deployment = build_deployment(config)
    trace = generate_trace(deployment.sampler, rate=rate,
                           duration=DURATION - 1.0,
                           rng=RngStream(42, "openloop"))
    replayer = TraceReplayer(deployment.sim, deployment.frontend.submit,
                             trace, warmup=WARMUP)
    deployment.sim.run(until=DURATION)
    summary = replayer.summary(DURATION)
    summary["frontend_peak_inflight"] = deployment.frontend.peak_inflight
    return summary


class TestOpenLoopLatency:
    def test_latency_knee_by_scheme(self, benchmark):
        schemes = ("replication-l4", "partition-ca")
        results = benchmark.pedantic(
            lambda: {s: {r: run_point(s, r) for r in RATES}
                     for s in schemes},
            rounds=1, iterations=1)
        lines = ["Extension: open-loop p95 latency (ms) vs offered load"]
        header = "  offered req/s: " + "  ".join(f"{r:>7d}" for r in RATES)
        lines.append(header)
        for s in schemes:
            vals = "  ".join(
                f"{results[s][r]['latency_p95'] * 1000:7.1f}" for r in RATES)
            lines.append(f"  {s:16s} {vals}")
        emit("\n".join(lines))

        for s in schemes:
            p95 = [results[s][r]["latency_p95"] for r in RATES]
            # latency must rise with offered load (queueing builds)
            assert p95[-1] > p95[0]
        # at the highest offered rate, the content-aware partition keeps
        # latency lower than content-blind replication
        assert results["partition-ca"][800]["latency_p95"] < \
            results["replication-l4"][800]["latency_p95"]

    def test_overload_shedding_bounds_the_tail(self, benchmark):
        """Over capacity, shedding trades completions for a bounded tail.

        Without admission control the open-loop backlog grows without
        limit and served latency rides the queue; with it, excess
        arrivals get an immediate 503 and the *served* requests keep a
        bounded p99 and a bounded concurrent population.
        """
        results = benchmark.pedantic(
            lambda: {
                "off": run_point("partition-ca", OVER_RATE),
                "on": run_point("partition-ca", OVER_RATE,
                                overload=OverloadConfig()),
            }, rounds=1, iterations=1)
        on, off = results["on"], results["off"]
        emit("Extension: over-capacity point "
             f"({OVER_RATE} req/s offered, partition-ca)\n"
             f"  shedding off: p99={off['latency_p99'] * 1000:.1f} ms "
             f"peak_inflight={off['frontend_peak_inflight']} "
             f"errors={off['errors']}\n"
             f"  shedding on:  p99={on['latency_p99'] * 1000:.1f} ms "
             f"peak_inflight={on['frontend_peak_inflight']} "
             f"errors={on['errors']} (503 sheds)")
        config = OverloadConfig()
        # protection actually engaged: some arrivals were shed
        assert on["errors"] > 0
        assert off["errors"] == 0
        # the admitted population stays within the configured window
        # (+ max_queue waiting + the instantaneous shed in progress);
        # unprotected, the backlog blows far past it
        cap = config.max_inflight + config.max_queue
        assert off["frontend_peak_inflight"] > cap
        assert on["frontend_peak_inflight"] <= cap + 1
        # and the served tail stays bounded instead of riding the queue
        assert on["latency_p99"] < off["latency_p99"]
