"""Extension benchmark: open-loop latency vs offered load (hockey stick).

The paper evaluates with a closed-loop generator (WebBench), which cannot
show queueing onset directly.  Replaying Poisson traces at increasing
offered rates exposes where each placement scheme's latency knee sits --
the partition + content-aware configuration sustains a higher offered load
before p95 latency explodes.
"""

from conftest import emit
from repro.experiments import ExperimentConfig, build_deployment
from repro.sim import RngStream
from repro.workload import WORKLOAD_A, TraceReplayer, generate_trace

RATES = (200, 500, 800)
DURATION = 10.0
WARMUP = 2.0


def run_point(scheme: str, rate: int) -> dict:
    config = ExperimentConfig(scheme=scheme, workload=WORKLOAD_A,
                              duration=DURATION, warmup=WARMUP, seed=42)
    deployment = build_deployment(config)
    trace = generate_trace(deployment.sampler, rate=rate,
                           duration=DURATION - 1.0,
                           rng=RngStream(42, "openloop"))
    replayer = TraceReplayer(deployment.sim, deployment.frontend.submit,
                             trace, warmup=WARMUP)
    deployment.sim.run(until=DURATION)
    return replayer.summary(DURATION)


class TestOpenLoopLatency:
    def test_latency_knee_by_scheme(self, benchmark):
        schemes = ("replication-l4", "partition-ca")
        results = benchmark.pedantic(
            lambda: {s: {r: run_point(s, r) for r in RATES}
                     for s in schemes},
            rounds=1, iterations=1)
        lines = ["Extension: open-loop p95 latency (ms) vs offered load"]
        header = "  offered req/s: " + "  ".join(f"{r:>7d}" for r in RATES)
        lines.append(header)
        for s in schemes:
            vals = "  ".join(
                f"{results[s][r]['latency_p95'] * 1000:7.1f}" for r in RATES)
            lines.append(f"  {s:16s} {vals}")
        emit("\n".join(lines))

        for s in schemes:
            p95 = [results[s][r]["latency_p95"] for r in RATES]
            # latency must rise with offered load (queueing builds)
            assert p95[-1] > p95[0]
        # at the highest offered rate, the content-aware partition keeps
        # latency lower than content-blind replication
        assert results["partition-ca"][800]["latency_p95"] < \
            results["replication-l4"][800]["latency_p95"]
