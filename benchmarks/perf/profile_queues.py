#!/usr/bin/env python
"""Heap vs calendar queue microbenchmark (DESIGN §16).

Drives the two scheduler backends of :class:`repro.sim.Simulator` -- the
reference flat binary heap and the fast path's two-level calendar queue --
through pure scheduling workloads with no model code in the way, so the
numbers isolate queue cost from everything the reproduction benchmarks
measure.  Four mixes cover the shapes the splicing workloads produce:

* ``uniform``   -- independent delays, few timestamp collisions (the
                   heap's best case: this is what a binary heap is for);
* ``batched``   -- delays quantized to a coarse tick, so many events
                   share exact timestamps (the calendar's bucket-append
                   and batch-drain fast paths);
* ``zero_delay`` -- bursts of same-instant callbacks (the level-0 FIFO:
                   O(1) append/popleft vs heap push/pop);
* ``bimodal``   -- mostly-short plus occasionally-long delays (deep
                   queue, the distribution request/timeout traffic has).

Every mix runs on both backends with identical deterministic workloads;
a SHA-256 digest over the (fire-order, timestamp) stream must match
between backends, re-proving order equivalence while timing it.

Wall clocks are min-of-N repeats (this host's timings are noisy).  The
artifact is JSON with sorted keys so diffs are stable:

    PYTHONPATH=src python benchmarks/perf/profile_queues.py \
        --events 200000 --repeats 3 --out BENCH_queues.json

Not part of tier-1: wall-clock numbers are host-dependent.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import struct
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, os.pardir, "src"))

from repro.sim import Simulator  # noqa: E402


def _lcg(seed: int):
    """Deterministic uniform(0, 1) stream (no stdlib Random warm-up cost)."""
    state = (seed * 2654435761 + 1) & 0x7FFFFFFF
    while True:
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        yield state / 0x80000000


def _mix_uniform(u: float) -> list[float]:
    return [1e-6 + u * 1e-3]


def _mix_batched(u: float) -> list[float]:
    # 200 distinct ticks -> heavy exact-timestamp collision
    return [(int(u * 200) + 1) * 1e-4]


def _mix_zero_delay(u: float) -> list[float]:
    if u < 0.2:
        return [0.0, 0.0, 0.0, 0.0]
    return [1e-6 + u * 1e-4]


def _mix_bimodal(u: float) -> list[float]:
    if u < 0.9:
        return [1e-6 + u * 1e-5]
    return [u * 1e-1]


MIXES = {
    "uniform": _mix_uniform,
    "batched": _mix_batched,
    "zero_delay": _mix_zero_delay,
    "bimodal": _mix_bimodal,
}

#: initial self-propagating chains per run (queue depth floor)
CHAINS = 256


def _drive(fast_path: bool, mix_fn, n_events: int, seed: int):
    """Run one workload on one backend; returns (wall_s, fired, digest)."""
    sim = Simulator(fast_path=fast_path)
    rand = _lcg(seed)
    digest = hashlib.sha256()
    pack = struct.pack
    scheduled = 0
    fired = 0

    def cb() -> None:
        nonlocal scheduled, fired
        fired += 1
        digest.update(pack("<d", sim.now))
        for delay in mix_fn(next(rand)):
            if scheduled < n_events:
                scheduled += 1
                sim.schedule(delay, cb)

    for _ in range(min(CHAINS, n_events)):
        scheduled += 1
        sim.schedule(next(rand) * 1e-3, cb)
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    return wall, fired, digest.hexdigest()


def run_profile(n_events: int, repeats: int, seed: int) -> dict:
    mixes: dict[str, dict] = {}
    for name, mix_fn in MIXES.items():
        cells: dict[str, dict] = {}
        digests: dict[str, str] = {}
        for backend, fast in (("heap", False), ("calendar", True)):
            walls = []
            fired = 0
            digest = ""
            for rep in range(repeats):
                wall, fired, digest_rep = _drive(fast, mix_fn, n_events, seed)
                if rep and digest_rep != digest:
                    raise AssertionError(
                        f"{name}/{backend}: non-deterministic across repeats")
                digest = digest_rep
                walls.append(wall)
            wall = min(walls)
            cells[backend] = {
                "events": fired,
                "events_per_s": round(fired / wall),
                "wall_s": round(wall, 6),
            }
            digests[backend] = digest
        identical = digests["heap"] == digests["calendar"]
        if not identical:
            raise AssertionError(
                f"{name}: calendar dispatch order diverged from the heap")
        mixes[name] = {
            "calendar": cells["calendar"],
            "digest": digests["heap"],
            "heap": cells["heap"],
            "identical": identical,
            "speedup": round(
                cells["heap"]["wall_s"] / cells["calendar"]["wall_s"], 3),
        }
    return {
        "config": {"chains": CHAINS, "events": n_events,
                   "repeats": repeats, "seed": seed},
        "host": {"platform": platform.platform(),
                 "python": platform.python_version()},
        "mixes": mixes,
    }


def render(payload: dict) -> str:
    lines = ["queue backend microbenchmark "
             f"(events={payload['config']['events']}, "
             f"min of {payload['config']['repeats']} repeats)",
             f"{'mix':<12} {'heap ev/s':>12} {'calendar ev/s':>14} "
             f"{'speedup':>8}  identical"]
    for name, cell in payload["mixes"].items():
        lines.append(f"{name:<12} {cell['heap']['events_per_s']:>12,} "
                     f"{cell['calendar']['events_per_s']:>14,} "
                     f"{cell['speedup']:>7}x  "
                     f"{'yes' if cell['identical'] else 'NO'}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="heap vs calendar scheduler microbenchmark")
    parser.add_argument("--events", type=int, default=200_000,
                        help="events per mix per run (default 200000)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repeats; min wall is reported (default 3)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default="BENCH_queues.json",
                        help="JSON artifact path (default BENCH_queues.json)")
    args = parser.parse_args(argv)
    payload = run_profile(args.events, args.repeats, args.seed)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(render(payload))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
