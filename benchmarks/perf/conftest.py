"""Wall-clock kernel benchmarks (DESIGN.md §11).

Unlike the reproduction benchmarks one directory up, these measure the
*simulator itself*: the kernel fast path against the segment-accurate
path on the same seeded workloads.  They are marked ``bench`` and are not
part of tier-1 (wall-clock assertions are host-dependent); run them via
``make bench`` / ``repro bench`` or
``pytest benchmarks/perf -m bench --benchmark-disable``.
"""

_emitted: list[str] = []


def emit(text: str) -> None:
    """Record a report block for the end-of-run summary."""
    _emitted.append(text)


def pytest_terminal_summary(terminalreporter):
    if not _emitted:
        return
    terminalreporter.write_sep("=", "kernel fast-path benchmarks")
    for block in _emitted:
        terminalreporter.write_line("")
        for line in block.splitlines():
            terminalreporter.write_line(line)
