"""The ISSUE acceptance benchmark: fast path vs segment path wall clock.

The open-loop latency workload through the packet-level splicing
distributor must run >= 5x faster on the kernel fast path, with a
byte-identical result digest.  The request-level stages (Figure 2/3
cells, the overload episode) must also be byte-identical; their speedups
are bounded by model-layer work and only asserted to not regress (>= 1x
within noise).
"""

import pytest

from conftest import emit
from repro.experiments.bench import render_bench, run_bench

pytestmark = pytest.mark.bench


class TestKernelFastPath:
    def test_openloop_speedup_and_equivalence(self):
        payload = run_bench(stages=["openloop_latency"], scale="default")
        emit(render_bench(payload))
        stage = payload["stages"]["openloop_latency"]
        assert stage["identical"], \
            "fast path diverged from the segment path"
        assert stage["speedup"] >= 5.0, \
            f"fast path only {stage['speedup']}x vs segment path"
        assert payload["target"]["met"]

    def test_request_level_stages_identical(self):
        payload = run_bench(stages=["fig2_workload_a", "fig3_workload_b",
                                    "overload_episode"], scale="quick")
        emit(render_bench(payload))
        for name, stage in payload["stages"].items():
            assert stage["identical"], f"{name}: fast path diverged"
            # the request-level fast path trims events, never adds them
            assert stage["events"]["fast"] < stage["events"]["segment"]
            # wall clock must not regress beyond measurement noise
            assert stage["speedup"] >= 0.9, \
                f"{name}: fast path slower ({stage['speedup']}x)"
