"""§5.2 reproduction: URL-table memory footprint and lookup latency.

Paper: "Our Web site contains about 8700 Web objects.  In such scale, the
memory consumed by the URL table is about 260k bytes.  During the peak
load, the average lookup time is about 4.32 usecs."

Plus the ablation for the recently-accessed-entry cache ([28]'s
demultiplexing-speedup technique).
"""

import pytest

from conftest import emit
from repro.content import generate_catalog
from repro.core import UrlTable
from repro.experiments import url_table_overhead
from repro.sim import RngStream, ZipfSampler


def build_table(n_objects=8700, cache_entries=512):
    rng = RngStream(42, "bench/url")
    catalog = generate_catalog(n_objects, rng=rng.substream("catalog"))
    table = UrlTable(cache_entries=cache_entries)
    for item in catalog:
        table.insert(item, {"node-1"})
    paths = sorted(catalog.paths())
    zipf = ZipfSampler(len(paths), alpha=0.8, rng=rng.substream("zipf"))
    stream = [paths[zipf.sample() - 1] for _ in range(4096)]
    return table, stream


class TestSection52:
    def test_lookup_latency_at_paper_scale(self, benchmark):
        """Mean lookup time over a Zipf stream at 8700 objects."""
        table, stream = build_table()
        idx = iter(range(10 ** 9))

        def lookup():
            table.lookup(stream[next(idx) % len(stream)])

        benchmark(lookup)
        result = url_table_overhead(n_objects=8700, lookups=20000)
        emit(result["rendered"] +
             f"\npaper: ~260 KB, ~4.32 us  |  measured: "
             f"{result['memory_kb']:.0f} KB, {result['mean_lookup_us']:.2f} us")
        assert 130 <= result["memory_kb"] <= 520
        assert result["mean_lookup_us"] < 50.0

    def test_lookup_latency_without_entry_cache(self, benchmark):
        """Ablation: disable the recently-accessed-entry cache."""
        table, stream = build_table(cache_entries=0)
        idx = iter(range(10 ** 9))

        def lookup():
            table.lookup(stream[next(idx) % len(stream)])

        benchmark(lookup)
        assert table.cache_hits == 0

    def test_entry_cache_speedup(self, benchmark):
        """The cache must actually absorb a Zipf stream's repeats."""
        cached = url_table_overhead(n_objects=8700, lookups=20000)
        uncached = url_table_overhead(n_objects=8700, lookups=20000,
                                      cache_entries=0)
        emit(f"entry-cache ablation: with={cached['mean_lookup_us']:.2f} us "
             f"(hit rate {cached['cache_hit_rate']:.0%}), "
             f"without={uncached['mean_lookup_us']:.2f} us")
        assert cached["cache_hit_rate"] > 0.3

        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def test_insert_throughput(self, benchmark):
        """Table build cost at site scale (management-plane operation)."""
        rng = RngStream(7, "bench/insert")
        catalog = list(generate_catalog(2000, rng=rng))

        def build():
            table = UrlTable()
            for item in catalog:
                table.insert(item, {"n1"})
            return table

        table = benchmark(build)
        assert len(table) == 2000
