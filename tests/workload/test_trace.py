"""Tests for open-loop trace generation, persistence, and replay."""

import pytest

from repro.content import generate_catalog
from repro.experiments import ExperimentConfig, build_deployment
from repro.sim import RngStream, Simulator
from repro.workload import (WORKLOAD_A, RequestSampler, Trace, TraceEntry,
                            TraceReplayer, generate_trace)


@pytest.fixture
def sampler():
    catalog = generate_catalog(200, rng=RngStream(1),
                               mix=WORKLOAD_A.catalog_mix)
    return RequestSampler(catalog, WORKLOAD_A, rng=RngStream(2, "s"))


class TestTraceGeneration:
    def test_validation(self, sampler):
        with pytest.raises(ValueError):
            generate_trace(sampler, rate=0, duration=1)
        with pytest.raises(ValueError):
            generate_trace(sampler, rate=10, duration=0)

    def test_rate_approximately_respected(self, sampler):
        trace = generate_trace(sampler, rate=200, duration=20,
                               rng=RngStream(3, "t"))
        assert trace.offered_load() == pytest.approx(200, rel=0.1)

    def test_entries_sorted_and_bounded(self, sampler):
        trace = generate_trace(sampler, rate=50, duration=5,
                               rng=RngStream(4, "t"))
        times = [e.at for e in trace]
        assert times == sorted(times)
        assert times[-1] < 5.0

    def test_deterministic(self, sampler):
        a = generate_trace(sampler, rate=50, duration=3,
                           rng=RngStream(5, "t"))
        # fresh sampler with identical seed for a fair comparison
        catalog = generate_catalog(200, rng=RngStream(1),
                                   mix=WORKLOAD_A.catalog_mix)
        s2 = RequestSampler(catalog, WORKLOAD_A, rng=RngStream(2, "s"))
        # consume the same number of draws first
        b_sampler = s2
        b = generate_trace(b_sampler, rate=50, duration=3,
                           rng=RngStream(5, "t"))
        assert [(e.at, e.url) for e in a] == [(e.at, e.url) for e in b]


class TestTracePersistence:
    def test_roundtrip(self, sampler, tmp_path):
        trace = generate_trace(sampler, rate=80, duration=4,
                               rng=RngStream(6, "t"))
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = Trace.load(path)
        assert len(loaded) == len(trace)
        assert [(e.at, e.url) for e in loaded] == \
               [(e.at, e.url) for e in trace]

    def test_entry_json_roundtrip(self):
        entry = TraceEntry(at=1.25, url="/a/b.html")
        assert TraceEntry.from_json(entry.to_json()) == entry

    def test_empty_trace(self, tmp_path):
        trace = Trace()
        assert trace.duration == 0.0
        assert trace.offered_load() == 0.0
        path = tmp_path / "empty.jsonl"
        trace.save(path)
        assert len(Trace.load(path)) == 0


class TestTraceReplay:
    def test_replay_against_real_cluster(self):
        config = ExperimentConfig(scheme="partition-ca", workload=WORKLOAD_A,
                                  n_objects=300, duration=6.0, warmup=1.0)
        deployment = build_deployment(config)
        trace = generate_trace(deployment.sampler, rate=100, duration=4.0,
                               rng=RngStream(7, "t"))
        replayer = TraceReplayer(deployment.sim, deployment.frontend.submit,
                                 trace)
        deployment.sim.run(until=6.0)
        summary = replayer.summary(6.0)
        assert summary["issued"] == len(trace)
        assert summary["errors"] == 0
        # an under-loaded system completes everything it was offered
        assert summary["completed"] == summary["issued"]
        assert summary["latency_p95"] < 0.5

    def test_open_loop_overload_queues(self):
        """Offered load beyond capacity: arrivals keep coming, in-flight
        grows -- the open-loop signature a closed loop cannot show."""
        config = ExperimentConfig(scheme="partition-ca", workload=WORKLOAD_A,
                                  n_objects=300, duration=6.0, warmup=1.0)
        deployment = build_deployment(config)
        trace = generate_trace(deployment.sampler, rate=8000, duration=3.0,
                               rng=RngStream(8, "t"))
        replayer = TraceReplayer(deployment.sim, deployment.frontend.submit,
                                 trace, warmup=1.0)
        deployment.sim.run(until=3.0)
        assert replayer.peak_in_flight > 100
        assert replayer.meter.requests_per_second(3.0) < 4000

    def test_latency_grows_with_offered_load(self):
        """The hockey stick: p95 latency rises sharply near saturation."""
        p95 = {}
        for rate in (150, 1500):
            config = ExperimentConfig(scheme="partition-ca",
                                      workload=WORKLOAD_A,
                                      n_objects=300, duration=8.0,
                                      warmup=2.0)
            deployment = build_deployment(config)
            trace = generate_trace(deployment.sampler, rate=rate,
                                   duration=7.0, rng=RngStream(9, "t"))
            replayer = TraceReplayer(deployment.sim,
                                     deployment.frontend.submit,
                                     trace, warmup=2.0)
            deployment.sim.run(until=8.0)
            p95[rate] = replayer.summary(8.0)["latency_p95"]
        assert p95[1500] > 2 * p95[150]
