"""Tests for workload specs, request sampling, and the WebBench rig."""

import pytest

from repro.content import ContentType, generate_catalog
from repro.net import HttpVersion
from repro.sim import RngStream, Simulator
from repro.workload import (WORKLOAD_A, WORKLOAD_B, RequestSampler,
                            WebBenchRig, WorkloadSpec)


class TestWorkloadSpecs:
    def test_request_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="X", catalog_mix=WORKLOAD_A.catalog_mix,
                         request_mix={ContentType.HTML: 0.5})

    def test_requests_must_have_catalog_backing(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="X", catalog_mix=WORKLOAD_A.catalog_mix,
                         request_mix={ContentType.HTML: 0.5,
                                      ContentType.CGI: 0.5})

    def test_workload_a_is_static(self):
        assert WORKLOAD_A.dynamic_request_fraction == 0.0

    def test_workload_b_is_significantly_dynamic(self):
        assert WORKLOAD_B.dynamic_request_fraction >= 0.15

    def test_multimedia_requests_are_rare(self):
        """Arlitt & Jin: the largest files get ~0.1 % of requests."""
        for spec in (WORKLOAD_A, WORKLOAD_B):
            assert spec.request_mix[ContentType.VIDEO] <= 0.002


class TestRequestSampler:
    @pytest.fixture
    def catalog_a(self):
        return generate_catalog(600, rng=RngStream(1),
                                mix=WORKLOAD_A.catalog_mix)

    def test_validation(self, catalog_a):
        with pytest.raises(ValueError):
            RequestSampler(catalog_a, WORKLOAD_A, http10_fraction=2.0)

    def test_class_mix_respected(self, catalog_a):
        sampler = RequestSampler(catalog_a, WORKLOAD_A,
                                 rng=RngStream(2, "s"))
        counts = {t: 0 for t in ContentType}
        n = 5000
        for _ in range(n):
            counts[sampler.sample_item().ctype] += 1
        assert counts[ContentType.IMAGE] / n == pytest.approx(0.61, abs=0.03)
        assert counts[ContentType.HTML] / n == pytest.approx(0.385, abs=0.03)
        assert counts[ContentType.CGI] == 0

    def test_popular_items_are_small(self, catalog_a):
        """Rank-1 popularity goes to the smallest file of the class."""
        sampler = RequestSampler(catalog_a, WORKLOAD_A, rng=RngStream(3, "s"))
        counts: dict[str, int] = {}
        for _ in range(8000):
            item = sampler.sample_item(ContentType.IMAGE)
            counts[item.path] = counts.get(item.path, 0) + 1
        most_popular = max(counts, key=counts.get)
        sizes = sorted(i.size_bytes
                       for i in catalog_a.by_type(ContentType.IMAGE))
        assert catalog_a.get(most_popular).size_bytes <= sizes[len(sizes)//10]

    def test_http_version_mix(self, catalog_a):
        sampler = RequestSampler(catalog_a, WORKLOAD_A,
                                 rng=RngStream(4, "s"),
                                 http10_fraction=0.5)
        versions = [sampler.request().version for _ in range(400)]
        tens = sum(1 for v in versions if v is HttpVersion.HTTP_1_0)
        assert 120 <= tens <= 280

    def test_requests_resolve_in_catalog(self, catalog_a):
        sampler = RequestSampler(catalog_a, WORKLOAD_A, rng=RngStream(5, "s"))
        for _ in range(200):
            req = sampler.request()
            assert req.url in catalog_a

    def test_deterministic(self, catalog_a):
        a = RequestSampler(catalog_a, WORKLOAD_A, rng=RngStream(6, "s"))
        b = RequestSampler(catalog_a, WORKLOAD_A, rng=RngStream(6, "s"))
        assert [a.request().url for _ in range(50)] == \
               [b.request().url for _ in range(50)]

    def test_expected_request_bytes_reasonable(self, catalog_a):
        sampler = RequestSampler(catalog_a, WORKLOAD_A, rng=RngStream(7, "s"))
        mean = sampler.expected_request_bytes(draws=3000)
        # request-weighted mean must be far below the inventory mean
        inventory_mean = catalog_a.total_bytes / len(catalog_a)
        assert mean < inventory_mean

    def test_workload_b_samples_dynamic(self):
        catalog = generate_catalog(800, rng=RngStream(8),
                                   mix=WORKLOAD_B.catalog_mix)
        sampler = RequestSampler(catalog, WORKLOAD_B, rng=RngStream(8, "s"))
        types = {sampler.sample_item().ctype for _ in range(2000)}
        assert ContentType.CGI in types
        assert ContentType.ASP in types


class FakeFrontend:
    """Deterministic front end: every request succeeds after a fixed delay."""

    def __init__(self, sim, delay=0.01):
        self.sim = sim
        self.delay = delay
        self.served = 0

    def submit(self, request, nic):
        from repro.core.frontend import RequestOutcome
        from repro.net import HttpResponse

        def go():
            yield self.sim.timeout(self.delay)
            self.served += 1
            resp = HttpResponse(request=request, content_length=1000,
                                served_by="fake",
                                completed_at=self.sim.now)
            return RequestOutcome(response=resp, latency=self.delay,
                                  backend="fake")

        return go()


class FailingFrontend(FakeFrontend):
    """Fails every request until ``recover_at``."""

    def __init__(self, sim, recover_at):
        super().__init__(sim)
        self.recover_at = recover_at

    def submit(self, request, nic):
        if self.sim.now < self.recover_at:
            raise RuntimeError("down")
        return super().submit(request, nic)


class TestWebBenchRig:
    def make(self, sim, frontend, warmup=0.0, think=0.0):
        catalog = generate_catalog(200, rng=RngStream(1),
                                   mix=WORKLOAD_A.catalog_mix)
        sampler = RequestSampler(catalog, WORKLOAD_A, rng=RngStream(2, "s"))
        return WebBenchRig(sim, frontend.submit, sampler, n_machines=4,
                           warmup=warmup, think_time=think,
                           rng=RngStream(3, "rig"))

    def test_validation(self):
        sim = Simulator()
        fe = FakeFrontend(sim)
        with pytest.raises(ValueError):
            WebBenchRig(sim, fe.submit, None, n_machines=0)
        rig = self.make(sim, fe)
        with pytest.raises(ValueError):
            rig.start_clients(0)

    def test_closed_loop_throughput(self):
        sim = Simulator()
        fe = FakeFrontend(sim, delay=0.01)
        rig = self.make(sim, fe)
        rig.start_clients(5)
        sim.run(until=2.0)
        rig.stop_clients()
        # 5 clients, 10 ms per request -> ~500 req/s
        assert rig.throughput(2.0) == pytest.approx(500, rel=0.05)

    def test_warmup_excluded_from_metrics(self):
        sim = Simulator()
        fe = FakeFrontend(sim, delay=0.01)
        rig = self.make(sim, fe, warmup=1.0)
        rig.start_clients(2)
        sim.run(until=2.0)
        # only the second half counts
        assert rig.meter.completions == pytest.approx(200, rel=0.1)

    def test_think_time_lowers_throughput(self):
        sim = Simulator()
        fe = FakeFrontend(sim, delay=0.01)
        rig = self.make(sim, fe, think=0.09)
        rig.start_clients(5)
        sim.run(until=2.0)
        assert rig.throughput(2.0) < 120

    def test_per_class_accounting(self):
        sim = Simulator()
        fe = FakeFrontend(sim)
        rig = self.make(sim, fe)
        rig.start_clients(4)
        sim.run(until=1.0)
        summary = rig.summary(1.0)
        assert summary["completed"] > 0
        assert "image" in summary["by_class"]
        total_by_class = sum(
            m.completions for m in rig.class_meters.values())
        assert total_by_class == rig.meter.completions

    def test_errors_retried_with_backoff(self):
        sim = Simulator()
        fe = FailingFrontend(sim, recover_at=1.0)
        rig = self.make(sim, fe)
        rig.start_clients(3)
        sim.run(until=3.0)
        assert rig.errors > 0
        assert rig.first_error_at is not None
        assert rig.first_error_at < 0.01
        assert rig.last_error_at < 1.3
        assert rig.meter.completions > 0  # recovered and made progress

    def test_clients_spread_over_machines(self):
        sim = Simulator()
        fe = FakeFrontend(sim)
        rig = self.make(sim, fe)
        rig.start_clients(8)
        nics = {c.nic.name for c in rig.clients}
        assert len(nics) == 4  # all machines used

    def test_stop_clients_halts_load(self):
        sim = Simulator()
        fe = FakeFrontend(sim)
        rig = self.make(sim, fe)
        rig.start_clients(2)
        sim.run(until=0.5)
        rig.stop_clients()
        served = fe.served
        sim.run(until=1.5)
        assert fe.served <= served + 2  # at most in-flight ones finish
