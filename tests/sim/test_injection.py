"""Tests for the engine's fault-injection hook (Simulator.add_injection)."""

import pytest

from repro.sim import Simulator


class TestAddInjection:
    def test_apply_fires_at_scheduled_time(self):
        sim = Simulator()
        fired = []
        record = sim.add_injection(2.5, lambda: fired.append(sim.now),
                                   label="crash")
        sim.run(until=5.0)
        assert fired == [2.5]
        assert record.label == "crash"
        assert record.at == 2.5
        assert record.applied
        assert record.applied_at == 2.5

    def test_revert_fires_after_duration(self):
        sim = Simulator()
        trace = []
        record = sim.add_injection(1.0, lambda: trace.append(("on", sim.now)),
                                   revert=lambda: trace.append(
                                       ("off", sim.now)),
                                   duration=2.0)
        sim.run(until=0.5)
        assert not record.applied and not record.active
        sim.run(until=2.0)
        assert record.active  # applied, not yet reverted
        sim.run(until=5.0)
        assert trace == [("on", 1.0), ("off", 3.0)]
        assert record.reverted_at == 3.0
        assert not record.active

    def test_permanent_injection_never_reverts(self):
        sim = Simulator()
        sim.add_injection(1.0, lambda: None, duration=0.0)
        record = sim.injections[0]
        sim.run(until=10.0)
        assert record.applied
        assert record.reverted_at is None
        assert record.active  # permanent faults stay active

    def test_registry_keeps_schedule_order(self):
        sim = Simulator()
        sim.add_injection(3.0, lambda: None, label="b")
        sim.add_injection(1.0, lambda: None, label="a")
        assert [r.label for r in sim.injections] == ["b", "a"]
        assert [r.at for r in sim.injections] == [3.0, 1.0]

    def test_negative_delay_or_duration_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.add_injection(-1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.add_injection(1.0, lambda: None, duration=-0.5)

    def test_injections_interleave_with_processes(self):
        sim = Simulator()
        state = {"broken": False}
        seen = []

        def proc():
            while sim.now < 6.0:
                yield sim.timeout(1.0)
                seen.append((sim.now, state["broken"]))

        sim.process(proc())
        sim.add_injection(1.5, lambda: state.update(broken=True),
                          revert=lambda: state.update(broken=False),
                          duration=2.0)
        sim.run(until=7.0)
        assert seen == [(1.0, False), (2.0, True), (3.0, True),
                        (4.0, False), (5.0, False), (6.0, False)]
