"""Edge-case and property tests for the simulation kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import AllOf, AnyOf, Interrupt, Resource, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestConditionFailures:
    def test_all_of_fails_if_component_fails(self, sim):
        caught = []

        def child_ok():
            yield sim.timeout(1.0)

        def child_bad():
            yield sim.timeout(2.0)
            raise ValueError("bad child")

        def parent():
            try:
                yield AllOf(sim, [sim.process(child_ok()),
                                  sim.process(child_bad())])
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(parent())
        sim.run()
        assert caught == ["bad child"]

    def test_any_of_fails_if_first_event_fails(self, sim):
        caught = []

        def child_bad():
            yield sim.timeout(1.0)
            raise ValueError("early failure")

        def parent():
            try:
                yield AnyOf(sim, [sim.process(child_bad()),
                                  sim.timeout(10.0)])
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(parent())
        sim.run()
        assert caught == ["early failure"]

    def test_any_of_success_defuses_later_failure(self, sim):
        """A condition observes its components, so a failure landing after
        the condition already fired is absorbed (SimPy semantics) -- the
        failed process still records its exception."""
        log = []

        def child_bad():
            yield sim.timeout(5.0)
            raise ValueError("late")

        bad_proc = None

        def parent():
            nonlocal bad_proc
            bad_proc = sim.process(child_bad())
            result = yield AnyOf(sim, [sim.timeout(1.0, value="fast"),
                                       bad_proc])
            log.append(list(result.values()))

        sim.process(parent())
        sim.run()  # must not raise: the condition observed the failure
        assert log == [["fast"]]
        assert not bad_proc.ok
        with pytest.raises(ValueError):
            _ = bad_proc.value


class TestProcessJoinChains:
    def test_deep_join_chain(self, sim):
        order = []

        def worker(depth):
            if depth > 0:
                yield sim.process(worker(depth - 1))
            yield sim.timeout(1.0)
            order.append(depth)

        sim.process(worker(5))
        sim.run()
        assert order == [0, 1, 2, 3, 4, 5]
        assert sim.now == pytest.approx(6.0)

    def test_joining_already_finished_process(self, sim):
        def quick():
            yield sim.timeout(1.0)
            return "done"

        got = []

        def late_joiner(proc):
            yield sim.timeout(5.0)
            value = yield proc
            got.append((sim.now, value))

        proc = sim.process(quick())
        sim.process(late_joiner(proc))
        sim.run()
        assert got == [(5.0, "done")]

    def test_two_joiners_both_get_value(self, sim):
        def child():
            yield sim.timeout(1.0)
            return 99

        got = []

        def joiner(proc):
            got.append((yield proc))

        proc = sim.process(child())
        sim.process(joiner(proc))
        sim.process(joiner(proc))
        sim.run()
        assert got == [99, 99]


class TestInterruptEdgeCases:
    def test_interrupt_process_waiting_on_resource(self, sim):
        res = Resource(sim, capacity=1)
        log = []

        def holder():
            req = yield res.request()
            yield sim.timeout(10.0)
            res.release(req)

        def waiter():
            req = res.request()
            try:
                yield req
            except Interrupt:
                req.cancel()
                log.append("interrupted")
                return
            res.release(req)  # pragma: no cover

        sim.process(holder())
        waiter_proc = sim.process(waiter())
        sim.schedule(1.0, lambda: waiter_proc.interrupt())
        sim.run()
        assert log == ["interrupted"]
        # the cancelled request never blocks later grants
        assert res.queue_len == 0

    def test_interrupt_during_join_detaches(self, sim):
        log = []

        def child():
            yield sim.timeout(10.0)
            return "child-done"

        def parent(proc):
            try:
                yield proc
            except Interrupt:
                log.append(("interrupted", sim.now))
            yield sim.timeout(1.0)
            log.append(("after", sim.now))

        child_proc = sim.process(child())
        parent_proc = sim.process(parent(child_proc))
        sim.schedule(2.0, lambda: parent_proc.interrupt())
        sim.run()
        assert log == [("interrupted", 2.0), ("after", 3.0)]
        assert child_proc.value == "child-done"  # child unaffected

    def test_double_interrupt(self, sim):
        hits = []

        def stubborn():
            for _ in range(2):
                try:
                    yield sim.timeout(100.0)
                except Interrupt as exc:
                    hits.append(exc.cause)

        proc = sim.process(stubborn())
        sim.schedule(1.0, lambda: proc.interrupt("one"))
        sim.schedule(2.0, lambda: proc.interrupt("two"))
        sim.run()
        assert hits == ["one", "two"]


class TestSchedulingProperties:
    @given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(n=st.integers(1, 30))
    @settings(max_examples=30, deadline=None)
    def test_n_processes_all_complete(self, n):
        sim = Simulator()
        done = []

        def worker(i):
            yield sim.timeout(i * 0.1)
            done.append(i)

        for i in range(n):
            sim.process(worker(i))
        sim.run()
        assert sorted(done) == list(range(n))
