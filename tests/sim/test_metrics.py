"""Tests for the metrics collectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (Counter, Histogram, MetricSet, SummaryStats,
                       ThroughputMeter, TimeWeighted)


class TestCounter:
    def test_increment(self):
        c = Counter("reqs")
        c.increment()
        c.increment(4)
        assert c.count == 5

    def test_negative_increment_rejected(self):
        c = Counter()
        with pytest.raises(ValueError):
            c.increment(-1)

    def test_rate(self):
        c = Counter()
        c.increment(10)
        assert c.rate(5.0) == 2.0
        assert c.rate(0.0) == 0.0


class TestSummaryStats:
    def test_empty(self):
        s = SummaryStats()
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_known_values(self):
        s = SummaryStats()
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            s.observe(x)
        assert s.mean == pytest.approx(5.0)
        assert s.n == 8
        assert s.min == 2.0
        assert s.max == 9.0
        assert s.variance == pytest.approx(32.0 / 7.0)

    def test_merge_equals_combined_stream(self):
        xs = [1.0, 2.0, 3.5, 9.0]
        ys = [0.5, 7.0, 2.2]
        a, b, combined = SummaryStats(), SummaryStats(), SummaryStats()
        for x in xs:
            a.observe(x)
            combined.observe(x)
        for y in ys:
            b.observe(y)
            combined.observe(y)
        merged = a.merge(b)
        assert merged.n == combined.n
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.variance == pytest.approx(combined.variance)
        assert merged.min == combined.min
        assert merged.max == combined.max

    def test_merge_with_empty(self):
        a = SummaryStats()
        a.observe(3.0)
        merged = a.merge(SummaryStats())
        assert merged.n == 1
        assert merged.mean == 3.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_property_mean_within_bounds(self, xs):
        s = SummaryStats()
        for x in xs:
            s.observe(x)
        assert s.min - 1e-6 <= s.mean <= s.max + 1e-6
        assert s.variance >= -1e-9


class TestHistogram:
    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram(low=0)
        with pytest.raises(ValueError):
            Histogram(low=10, high=1)

    def test_percentile_bounds(self):
        h = Histogram()
        with pytest.raises(ValueError):
            h.percentile(101)
        assert h.percentile(50) == 0.0  # empty

    def test_out_of_range_values_clamped(self):
        h = Histogram(low=1.0, high=100.0)
        h.observe(0.001)
        h.observe(1e9)
        assert h.total == 2
        assert h.counts[0] == 1
        assert h.counts[-1] == 1

    def test_percentile_accuracy(self):
        h = Histogram(low=1e-3, high=1e3)
        for i in range(1, 1001):
            h.observe(i / 10.0)  # 0.1 .. 100.0 uniform
        assert h.percentile(50) == pytest.approx(50.0, rel=0.15)
        assert h.percentile(95) == pytest.approx(95.0, rel=0.15)

    def test_stats_embedded(self):
        h = Histogram()
        h.observe(2.0)
        h.observe(4.0)
        assert h.stats.mean == pytest.approx(3.0)

    def test_underflow_overflow_counted(self):
        h = Histogram(low=1.0, high=100.0)
        h.observe(0.001)
        h.observe(0.5)
        h.observe(50.0)
        h.observe(1e9)
        assert h.underflow == 2
        assert h.overflow == 1
        assert h.total == 4

    def test_percentile_clamped_to_observed_range(self):
        # an overflow parked in the top bucket must not let a percentile
        # report a latency no request actually saw
        h = Histogram(low=1e-3, high=10.0)
        for _ in range(99):
            h.observe(1.0)
        h.observe(1e6)
        assert h.percentile(99) <= h.stats.max == 1e6
        assert h.percentile(50) >= h.stats.min == 1.0
        # all mass in one value: every percentile collapses onto it
        g = Histogram(low=1e-3, high=10.0)
        g.observe(2.0)
        g.observe(2.0)
        for p in (1, 50, 99, 100):
            assert g.percentile(p) == pytest.approx(2.0)

    @given(st.lists(st.floats(1e-5, 1e2), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_percentiles_monotone(self, xs):
        h = Histogram(low=1e-6, high=1e3)
        for x in xs:
            h.observe(x)
        ps = [h.percentile(p) for p in (10, 50, 90, 99)]
        assert all(a <= b + 1e-9 for a, b in zip(ps, ps[1:]))


class TestTimeWeighted:
    def test_constant_signal(self):
        tw = TimeWeighted(now=0.0, value=3.0)
        assert tw.average(10.0) == pytest.approx(3.0)

    def test_step_signal(self):
        tw = TimeWeighted(now=0.0, value=0.0)
        tw.update(5.0, 10.0)
        assert tw.average(10.0) == pytest.approx(5.0)
        assert tw.peak == 10.0

    def test_monotone_time_enforced(self):
        tw = TimeWeighted(now=5.0)
        with pytest.raises(ValueError):
            tw.update(4.0, 1.0)

    def test_average_at_start_time(self):
        tw = TimeWeighted(now=2.0, value=7.0)
        assert tw.average(2.0) == 7.0


class TestThroughputMeter:
    def test_warmup_excluded(self):
        m = ThroughputMeter(warmup=10.0)
        m.record(5.0)
        m.record(15.0, nbytes=100)
        m.record(20.0, nbytes=50)
        assert m.completions == 2
        assert m.bytes == 150
        assert m.requests_per_second(20.0) == pytest.approx(0.2)
        assert m.bytes_per_second(20.0) == pytest.approx(15.0)

    def test_empty_window(self):
        m = ThroughputMeter(warmup=10.0)
        assert m.requests_per_second(5.0) == 0.0
        assert m.bytes_per_second(10.0) == 0.0

    def test_first_last_timestamps(self):
        m = ThroughputMeter()
        m.record(1.0)
        m.record(9.0)
        assert m.first_t == 1.0
        assert m.last_t == 9.0


class TestMetricSet:
    def test_lazy_creation_and_reuse(self):
        ms = MetricSet()
        ms.counter("a").increment()
        ms.counter("a").increment()
        assert ms.counter("a").count == 2
        ms.stats("lat").observe(1.0)
        ms.histogram("h").observe(0.5)
        snap = ms.snapshot()
        assert snap["counters"]["a"] == 2
        assert snap["stats"]["lat"]["n"] == 1
        assert snap["histograms"]["h"]["n"] == 1

    def test_timeweighted_and_meter_accessors(self):
        ms = MetricSet()
        tw = ms.timeweighted("inflight")
        tw.update(0.0, 4)
        tw.update(2.0, 1)
        assert ms.timeweighted("inflight") is tw
        meter = ms.meter("throughput")
        meter.record(1.0, nbytes=100)
        assert ms.meter("throughput") is meter

        snap = ms.snapshot(now=4.0)
        assert snap["timeweighted"]["inflight"]["peak"] == 4
        assert snap["timeweighted"]["inflight"]["value"] == 1
        assert snap["timeweighted"]["inflight"]["avg"] == \
            pytest.approx((4 * 2.0 + 1 * 2.0) / 4.0)
        assert snap["meters"]["throughput"] == {"n": 1, "bytes": 100}
        # without a clock reading the time-average is undefined
        assert "avg" not in ms.snapshot()["timeweighted"]["inflight"]

    def test_snapshot_sections_and_keys_sorted(self):
        ms = MetricSet()
        for name in ("zeta", "alpha", "mid"):
            ms.counter(name).increment()
            ms.stats(name).observe(1.0)
            ms.histogram(name).observe(1.0)
            ms.timeweighted(name)
            ms.meter(name)
        snap = ms.snapshot()
        assert list(snap) == ["counters", "stats", "histograms",
                              "timeweighted", "meters"]
        for section in snap.values():
            assert list(section) == sorted(section)
        hist = snap["histograms"]["alpha"]
        assert hist["underflow"] == 0 and hist["overflow"] == 0
