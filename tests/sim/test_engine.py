"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (AllOf, AnyOf, Interrupt, Simulator, StopSimulation)


@pytest.fixture
def sim():
    return Simulator()


class TestClockAndScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_run_empty_heap_is_noop(self, sim):
        sim.run()
        assert sim.now == 0.0

    def test_run_until_advances_clock_even_without_events(self, sim):
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_run_until_in_past_raises(self, sim):
        sim.run(until=10.0)
        with pytest.raises(ValueError):
            sim.run(until=3.0)

    def test_schedule_callback_fires_at_delay(self, sim):
        fired = []
        sim.schedule(2.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [2.5]

    def test_schedule_order_same_timestamp_is_fifo(self, sim):
        order = []
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(1.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, lambda: order.append(3))
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(2.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2, 3]

    def test_run_until_excludes_later_events(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_peek_reports_next_timestamp(self, sim):
        assert sim.peek() == float("inf")
        sim.schedule(4.0, lambda: None)
        assert sim.peek() == 4.0

    def test_stop_halts_run(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, sim.stop)
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run()
        assert fired == [1]
        assert sim.now == 2.0


class TestTimeout:
    def test_timeout_resumes_process_after_delay(self, sim):
        log = []

        def proc():
            yield sim.timeout(2.0)
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [2.0]

    def test_timeout_value_is_delivered(self, sim):
        got = []

        def proc():
            value = yield sim.timeout(1.0, value="payload")
            got.append(value)

        sim.process(proc())
        sim.run()
        assert got == ["payload"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_zero_delay_fires_at_current_time(self, sim):
        log = []

        def proc():
            yield sim.timeout(0.0)
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [0.0]


class TestProcess:
    def test_process_return_value_becomes_event_value(self, sim):
        def child():
            yield sim.timeout(1.0)
            return 42

        got = []

        def parent():
            value = yield sim.process(child())
            got.append(value)

        sim.process(parent())
        sim.run()
        assert got == [42]

    def test_sequential_timeouts_accumulate(self, sim):
        times = []

        def proc():
            yield sim.timeout(1.0)
            times.append(sim.now)
            yield sim.timeout(2.0)
            times.append(sim.now)

        sim.process(proc())
        sim.run()
        assert times == [1.0, 3.0]

    def test_is_alive_tracks_lifetime(self, sim):
        def proc():
            yield sim.timeout(5.0)

        p = sim.process(proc())
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_exception_in_process_propagates_to_joiner(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise RuntimeError("boom")

        caught = []

        def parent():
            try:
                yield sim.process(child())
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(parent())
        sim.run()
        assert caught == ["boom"]

    def test_unobserved_process_exception_raises_at_fire(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise RuntimeError("unobserved")

        sim.process(child())
        with pytest.raises(RuntimeError, match="unobserved"):
            sim.run()

    def test_yielding_non_event_raises(self, sim):
        def proc():
            yield 17

        sim.process(proc())
        with pytest.raises(TypeError):
            sim.run()

    def test_process_requires_generator(self, sim):
        with pytest.raises(TypeError):
            sim.process(lambda: None)

    def test_waiting_on_already_processed_event_resumes_immediately(self, sim):
        ev = sim.event()
        ev.succeed("done")
        sim.run()
        assert ev.processed
        got = []

        def proc():
            value = yield ev
            got.append((sim.now, value))

        sim.process(proc())
        sim.run()
        assert got == [(0.0, "done")]

    def test_two_processes_interleave(self, sim):
        log = []

        def ping():
            for _ in range(3):
                yield sim.timeout(2.0)
                log.append(("ping", sim.now))

        def pong():
            yield sim.timeout(1.0)
            for _ in range(3):
                yield sim.timeout(2.0)
                log.append(("pong", sim.now))

        sim.process(ping())
        sim.process(pong())
        sim.run()
        assert log == [("ping", 2.0), ("pong", 3.0), ("ping", 4.0),
                       ("pong", 5.0), ("ping", 6.0), ("pong", 7.0)]

    def test_active_process_visible_during_execution(self, sim):
        seen = []

        def proc():
            seen.append(sim.active_process)
            yield sim.timeout(1.0)

        p = sim.process(proc())
        sim.run()
        assert seen == [p]
        assert sim.active_process is None


class TestManualEvents:
    def test_succeed_delivers_value(self, sim):
        ev = sim.event()
        got = []

        def waiter():
            got.append((yield ev))

        sim.process(waiter())

        def trigger():
            yield sim.timeout(3.0)
            ev.succeed("hello")

        sim.process(trigger())
        sim.run()
        assert got == ["hello"]

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(RuntimeError):
            ev.succeed(2)
        ev2 = sim.event()
        ev2.fail(ValueError("x"))
        ev2.defuse()
        with pytest.raises(RuntimeError):
            ev2.succeed(1)
        sim.run()

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_failed_event_raises_in_waiter(self, sim):
        ev = sim.event()
        caught = []

        def waiter():
            try:
                yield ev
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(waiter())
        ev.fail(ValueError("bad"))
        sim.run()
        assert caught == ["bad"]

    def test_unobserved_failed_event_raises_unless_defused(self, sim):
        ev = sim.event()
        ev.fail(ValueError("silent"))
        with pytest.raises(ValueError):
            sim.run()
        ev2 = sim.event()
        ev2.fail(ValueError("silenced"))
        ev2.defuse()
        sim.run()  # should not raise

    def test_value_access_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(RuntimeError):
            _ = ev.value


class TestInterrupt:
    def test_interrupt_wakes_sleeping_process(self, sim):
        log = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as exc:
                log.append((sim.now, exc.cause))

        p = sim.process(sleeper())
        sim.schedule(5.0, lambda: p.interrupt("wake up"))
        sim.run()
        assert log == [(5.0, "wake up")]

    def test_unhandled_interrupt_terminates_with_cause(self, sim):
        def sleeper():
            yield sim.timeout(100.0)

        p = sim.process(sleeper())
        sim.schedule(1.0, lambda: p.interrupt("die"))
        sim.run()
        assert not p.is_alive
        assert p.value == "die"

    def test_interrupting_finished_process_raises(self, sim):
        def quick():
            yield sim.timeout(1.0)

        p = sim.process(quick())
        sim.run()
        with pytest.raises(RuntimeError):
            p.interrupt()

    def test_interrupted_process_can_continue(self, sim):
        log = []

        def worker():
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                pass
            yield sim.timeout(1.0)
            log.append(sim.now)

        p = sim.process(worker())
        sim.schedule(2.0, lambda: p.interrupt())
        sim.run()
        assert log == [3.0]

    def test_original_timeout_does_not_resume_after_interrupt(self, sim):
        resumed = []

        def worker():
            try:
                yield sim.timeout(10.0)
                resumed.append("timeout")
            except Interrupt:
                resumed.append("interrupt")
            yield sim.timeout(50.0)
            resumed.append("second")

        p = sim.process(worker())
        sim.schedule(1.0, lambda: p.interrupt())
        sim.run()
        assert resumed == ["interrupt", "second"]
        assert sim.now >= 51.0


class TestConditions:
    def test_all_of_waits_for_every_event(self, sim):
        log = []

        def proc():
            t1 = sim.timeout(1.0, value="a")
            t2 = sim.timeout(3.0, value="b")
            results = yield AllOf(sim, [t1, t2])
            log.append((sim.now, sorted(results.values())))

        sim.process(proc())
        sim.run()
        assert log == [(3.0, ["a", "b"])]

    def test_any_of_fires_on_first(self, sim):
        log = []

        def proc():
            t1 = sim.timeout(1.0, value="fast")
            t2 = sim.timeout(3.0, value="slow")
            results = yield AnyOf(sim, [t1, t2])
            log.append((sim.now, list(results.values())))

        sim.process(proc())
        sim.run()
        assert log == [(1.0, ["fast"])]

    def test_empty_all_of_succeeds_immediately(self, sim):
        log = []

        def proc():
            yield AllOf(sim, [])
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [0.0]

    def test_all_of_with_already_processed_event(self, sim):
        ev = sim.event()
        ev.succeed("pre")
        sim.run()
        log = []

        def proc():
            results = yield AllOf(sim, [ev, sim.timeout(2.0, value="post")])
            log.append(sorted(results.values()))

        sim.process(proc())
        sim.run()
        assert log == [["post", "pre"]]

    def test_any_of_helper_methods(self, sim):
        log = []

        def proc():
            yield sim.any_of([sim.timeout(1.0), sim.timeout(9.0)])
            log.append(sim.now)
            yield sim.all_of([sim.timeout(1.0), sim.timeout(2.0)])
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [1.0, 3.0]


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build():
            sim = Simulator()
            trace = []

            def worker(wid, delay):
                for _ in range(5):
                    yield sim.timeout(delay)
                    trace.append((wid, sim.now))

            for wid, delay in enumerate([1.0, 1.5, 0.7]):
                sim.process(worker(wid, delay))
            sim.run()
            return trace

        assert build() == build()
