"""Property tests: the calendar queue dispatches identically to the heap.

The fast-path engine replaces the flat ``heapq`` event list with a two-level
calendar queue (level 0: FIFO for the current timestamp; level 1: per-exact-
timestamp buckets indexed by a heap of distinct times).  DESIGN §16 claims
the two structures produce *identical* (time, seq) dispatch orders.  These
tests drive randomized schedule / cancel / reschedule scripts through both
backends and require the observed fire orders to match event for event,
including same-timestamp FIFO ties and handle reuse after cancellation.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import Simulator, Timeout

# Times are drawn from a coarse grid so same-timestamp ties are common --
# ties are exactly where a broken tie-break would show up.
GRID = [round(i * 0.25, 2) for i in range(24)]


def _make_script(seed: int, n: int) -> list[dict]:
    """A deterministic op script: each op happens at ``at`` sim-time."""
    rng = random.Random(seed)
    ops = []
    for i in range(n):
        at = rng.choice(GRID)
        kind = rng.random()
        fire_delay = rng.choice([0.0, 0.0, 0.25, 0.5, 1.0, rng.random()])
        ops.append({
            "at": at,
            "label": f"ev{i}",
            "delay": fire_delay,
            # ~20% of future events get cancelled, ~10% rescheduled
            "cancel_after": rng.choice(GRID) if kind < 0.2 else None,
            "resched": (rng.choice([0.0, 0.25, 0.75])
                        if 0.2 <= kind < 0.3 else None),
        })
    ops.sort(key=lambda op: op["at"])
    return ops


def _run_script(fast_path: bool, script: list[dict]) -> list[tuple]:
    """Execute the script on one backend; return the observed fire order."""
    sim = Simulator(fast_path=fast_path)
    order: list[tuple] = []
    live: dict[str, tuple] = {}  # label -> (event, fire_time)
    dead: set[str] = set()

    def fire(label: str) -> None:
        if label not in dead:
            order.append((round(sim.now, 6), label))

    def do_schedule(label: str, delay: float) -> None:
        ev = sim.schedule(delay, lambda lb=label: fire(lb))
        live[label] = (ev, sim.now + delay)

    def do_cancel(label: str) -> None:
        ev, when = live.get(label, (None, 0.0))
        if ev is None or when <= sim.now:
            return
        if fast_path:
            # Real removal by handle on the calendar backend.
            if sim._cancel_scheduled(ev, when):
                dead.add(label)
        else:
            # The heap has no cancellation; emulate by muting the callback
            # so the surviving order is comparable.
            dead.add(label)

    for op in script:
        at, label = op["at"], op["label"]

        def run_op(op=op, label=label) -> None:
            do_schedule(label, op["delay"])
            if op["cancel_after"] is not None:
                sim.schedule(op["cancel_after"],
                             lambda lb=label: do_cancel(lb))
            if op["resched"] is not None:
                def resched(lb=label, d=op["resched"]) -> None:
                    do_cancel(lb)
                    do_schedule(lb + "'", d)
                sim.schedule(op["resched"] / 2.0, resched)

        sim.schedule(at, run_op)
    sim.run()
    return order


@pytest.mark.parametrize("seed", range(8))
def test_random_schedule_cancel_reschedule_order_identical(seed):
    script = _make_script(seed, n=120)
    heap_order = _run_script(False, script)
    cal_order = _run_script(True, script)
    assert cal_order == heap_order
    assert heap_order, "script produced no events"


def test_same_timestamp_ties_are_fifo_on_both_backends():
    for fast in (False, True):
        sim = Simulator(fast_path=fast)
        seen: list[str] = []
        # All land on t=1.0; insertion order must be preserved.
        for name in "abcdefgh":
            sim.schedule(1.0, lambda n=name: seen.append(n))
        sim.run()
        assert seen == list("abcdefgh"), fast


def test_zero_delay_chain_drains_within_one_batch_in_order():
    """Events enqueued at the current timestamp fire after earlier peers
    but before any later timestamp, in enqueue order — on both backends."""
    results = {}
    for fast in (False, True):
        sim = Simulator(fast_path=fast)
        seen: list[str] = []

        def chain() -> None:
            seen.append("chain")
            sim.schedule(0.0, lambda: seen.append("child1"))
            sim.schedule(0.0, lambda: seen.append("child2"))

        sim.schedule(1.0, chain)
        sim.schedule(1.0, lambda: seen.append("peer"))
        sim.schedule(1.25, lambda: seen.append("later"))
        sim.run()
        results[fast] = seen
    assert results[True] == results[False]
    assert results[True] == ["chain", "peer", "child1", "child2", "later"]


def test_cancel_by_handle_removes_pending_entry():
    sim = Simulator(fast_path=True)
    fired: list[str] = []
    keep = sim.schedule(1.0, lambda: fired.append("keep"))
    drop = sim.schedule(1.0, lambda: fired.append("drop"))
    assert sim.heap_depth == 2
    assert sim._cancel_scheduled(drop, 1.0)
    assert sim.heap_depth == 1
    # a second cancel of the same handle is a no-op
    assert not sim._cancel_scheduled(drop, 1.0)
    sim.run()
    assert fired == ["keep"]
    assert keep.processed


def test_cancelled_handle_reuse_via_timeout_pool():
    """A cancelled pooled timeout can be recycled and re-issued without
    double-firing or perturbing dispatch order (the segmented-hold split
    in resources.py relies on exactly this)."""
    sim = Simulator(fast_path=True)
    t = sim.hot_timeout(2.0)
    woke: list[float] = []
    t.add_callback(lambda ev: woke.append(sim.now))
    assert sim._cancel_scheduled(t, 2.0)
    # hand the handle back and re-issue at an earlier time
    t.callbacks = []
    sim._timeout_pool.append(t)
    t2 = sim.hot_timeout(1.0)
    assert t2 is t  # the handle really was reused
    t2.add_callback(lambda ev: woke.append(sim.now))
    sim.run()
    assert woke == [1.0]


def test_peek_and_depth_parity_across_backends():
    for fast in (False, True):
        sim = Simulator(fast_path=fast)
        assert sim.peek() == float("inf")
        sim.schedule(2.0, lambda: None)
        sim.schedule(0.5, lambda: None)
        assert sim.peek() == 0.5
        assert sim.heap_depth == 2
        sim.run(until=1.0)
        assert sim.now == 1.0
        assert sim.peek() == 2.0
        assert sim.heap_depth == 1
        sim.run()
        assert sim.heap_depth == 0


def test_peek_skips_fully_cancelled_buckets():
    sim = Simulator(fast_path=True)
    only = sim.schedule(1.0, lambda: None)
    sim.schedule(3.0, lambda: None)
    assert sim._cancel_scheduled(only, 1.0)
    assert sim.peek() == 3.0
    sim.run()
    assert sim.now == 3.0


def test_run_until_boundary_parity():
    script = _make_script(seed=99, n=60)
    for until in (1.0, 2.5, 7.0):
        results = {}
        for fast in (False, True):
            sim = Simulator(fast_path=fast)
            seen: list[tuple] = []
            for op in script:
                sim.schedule(op["at"] + op["delay"],
                             lambda lb=op["label"]: seen.append(
                                 (round(sim.now, 6), lb)))
            sim.run(until=until)
            results[fast] = (seen, sim.now)
        assert results[True] == results[False], until


def test_step_fires_one_event_and_counts_batches():
    from repro.obs.telemetry import KernelStats

    ks = KernelStats()
    sim = Simulator(fast_path=True, kernel_stats=ks)
    seen: list[str] = []
    for name in "abc":
        sim.schedule(1.0, lambda n=name: seen.append(n))
    sim.schedule(2.0, lambda: seen.append("d"))
    sim.step()
    assert seen == ["a"]
    sim.run()
    assert seen == ["a", "b", "c", "d"]
    assert ks.batches >= 1
    assert ks.batched_events >= 3
    assert ks.max_batch >= 3
    report = ks.report()
    assert report["batch_dispatch"]["batches"] == ks.batches

    with pytest.raises(IndexError):
        sim.step()


def test_timeout_pool_still_recycles_on_calendar_backend():
    sim = Simulator(fast_path=True)

    def proc():
        for _ in range(5):
            yield sim.hot_timeout(0.1)

    sim.process(proc())
    sim.run()
    # steady state is two pooled objects: the resume that requests the next
    # hot timeout runs before the fired one is recycled back into the pool
    assert len(sim._timeout_pool) == 2
    for t in sim._timeout_pool:
        assert isinstance(t, Timeout) and t._pooled
