"""Tests (including property-based) for RNG streams and samplers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (HybridSizeSampler, LognormalSampler, ParetoSampler,
                       RngStream, ZipfSampler)


class TestRngStream:
    def test_same_seed_same_sequence(self):
        a = RngStream(7, "x")
        b = RngStream(7, "x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_labels_differ(self):
        a = RngStream(7, "x")
        b = RngStream(7, "y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RngStream(1, "x")
        b = RngStream(2, "x")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_substream_is_deterministic(self):
        a = RngStream(3).substream("clients")
        b = RngStream(3).substream("clients")
        assert a.random() == b.random()

    def test_substream_independent_of_parent_consumption(self):
        parent1 = RngStream(3)
        _ = [parent1.random() for _ in range(100)]
        sub1 = parent1.substream("s")
        sub2 = RngStream(3).substream("s")
        assert sub1.random() == sub2.random()

    def test_passthroughs_work(self):
        r = RngStream(1)
        assert 0 <= r.random() < 1
        assert 1 <= r.randint(1, 3) <= 3
        assert r.choice([5]) == 5
        assert r.uniform(2, 2) == 2
        assert r.expovariate(1.0) > 0
        assert r.paretovariate(2.0) >= 1.0
        assert r.lognormvariate(0, 1) > 0
        seq = [1, 2, 3]
        r.shuffle(seq)
        assert sorted(seq) == [1, 2, 3]
        assert len(r.sample(range(10), 3)) == 3
        assert isinstance(r.gauss(0, 1), float)


class TestZipfSampler:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, alpha=-1)

    def test_probabilities_sum_to_one(self):
        z = ZipfSampler(50, alpha=0.9)
        total = sum(z.probability(k) for k in range(1, 51))
        assert total == pytest.approx(1.0)

    def test_probability_monotone_decreasing(self):
        z = ZipfSampler(100, alpha=1.0)
        probs = [z.probability(k) for k in range(1, 101)]
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_probability_rank_bounds(self):
        z = ZipfSampler(10)
        with pytest.raises(ValueError):
            z.probability(0)
        with pytest.raises(ValueError):
            z.probability(11)

    def test_samples_in_range(self):
        z = ZipfSampler(20, rng=RngStream(1, "z"))
        for _ in range(1000):
            assert 1 <= z.sample() <= 20

    def test_empirical_skew_matches_zipf(self):
        z = ZipfSampler(100, alpha=1.0, rng=RngStream(2, "z"))
        counts = [0] * 101
        n = 20000
        for _ in range(n):
            counts[z.sample()] += 1
        # rank 1 should receive roughly p(1) of requests (within 20 %)
        expected = z.probability(1)
        assert counts[1] / n == pytest.approx(expected, rel=0.2)
        # top 10 ranks should dominate the bottom 50
        assert sum(counts[1:11]) > sum(counts[51:101])

    def test_alpha_zero_is_uniform(self):
        z = ZipfSampler(4, alpha=0.0)
        for k in range(1, 5):
            assert z.probability(k) == pytest.approx(0.25)

    @given(n=st.integers(1, 200), alpha=st.floats(0.0, 2.0))
    @settings(max_examples=40, deadline=None)
    def test_property_cdf_valid(self, n, alpha):
        z = ZipfSampler(n, alpha=alpha)
        assert z._cdf[-1] == pytest.approx(1.0)
        assert all(b >= a - 1e-12 for a, b in zip(z._cdf, z._cdf[1:]))
        assert 1 <= z.sample() <= n


class TestSizeSamplers:
    def test_pareto_validation(self):
        with pytest.raises(ValueError):
            ParetoSampler(alpha=0)
        with pytest.raises(ValueError):
            ParetoSampler(x_min=0)

    def test_pareto_min_respected(self):
        p = ParetoSampler(alpha=1.5, x_min=100, rng=RngStream(1, "p"))
        assert all(p.sample() >= 100 for _ in range(500))

    def test_lognormal_mean(self):
        ln = LognormalSampler(mu=1.0, sigma=0.5)
        assert ln.mean() == pytest.approx(math.exp(1.0 + 0.125))

    def test_hybrid_validation(self):
        with pytest.raises(ValueError):
            HybridSizeSampler(tail_prob=1.5)

    def test_hybrid_bounds_respected(self):
        h = HybridSizeSampler(rng=RngStream(5, "h"), min_bytes=128,
                              max_bytes=1 << 20)
        sizes = [h.sample() for _ in range(2000)]
        assert all(128 <= s <= (1 << 20) for s in sizes)
        assert all(isinstance(s, int) for s in sizes)

    def test_hybrid_is_heavy_tailed(self):
        """A small fraction of files should hold most of the bytes --
        the paper quotes 0.3 % of files taking 53.9 % of storage."""
        h = HybridSizeSampler(rng=RngStream(6, "h"))
        sizes = sorted((h.sample() for _ in range(5000)), reverse=True)
        total = sum(sizes)
        top_5pct = sum(sizes[:len(sizes) // 20])
        assert top_5pct / total > 0.5

    def test_hybrid_deterministic(self):
        a = HybridSizeSampler(rng=RngStream(7, "h"))
        b = HybridSizeSampler(rng=RngStream(7, "h"))
        assert [a.sample() for _ in range(50)] == [b.sample() for _ in range(50)]
