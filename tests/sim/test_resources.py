"""Unit tests for Resource / PriorityResource / Store / Container."""

import pytest

from repro.sim import (Container, PriorityResource, Resource, Simulator,
                       Store)


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_grant_when_free(self, sim):
        res = Resource(sim, capacity=1)
        log = []

        def proc():
            req = yield res.request()
            log.append(sim.now)
            res.release(req)

        sim.process(proc())
        sim.run()
        assert log == [0.0]
        assert res.in_use == 0

    def test_fifo_service_order(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def worker(name, hold):
            req = yield res.request()
            order.append((name, sim.now))
            yield sim.timeout(hold)
            res.release(req)

        sim.process(worker("a", 2.0))
        sim.process(worker("b", 1.0))
        sim.process(worker("c", 1.0))
        sim.run()
        assert order == [("a", 0.0), ("b", 2.0), ("c", 3.0)]

    def test_capacity_two_allows_two_concurrent(self, sim):
        res = Resource(sim, capacity=2)
        order = []

        def worker(name):
            req = yield res.request()
            order.append((name, sim.now))
            yield sim.timeout(5.0)
            res.release(req)

        for name in "abc":
            sim.process(worker(name))
        sim.run()
        assert order == [("a", 0.0), ("b", 0.0), ("c", 5.0)]

    def test_release_unowned_request_raises(self, sim):
        res = Resource(sim)
        req = res.request()
        sim.run()
        res.release(req)
        with pytest.raises(RuntimeError):
            res.release(req)

    def test_wait_time_accounting(self, sim):
        res = Resource(sim, capacity=1)

        def worker(hold):
            req = yield res.request()
            yield sim.timeout(hold)
            res.release(req)

        sim.process(worker(4.0))
        sim.process(worker(1.0))
        sim.run()
        assert res.total_requests == 2
        assert res.total_wait_time == pytest.approx(4.0)

    def test_utilization(self, sim):
        res = Resource(sim, capacity=1)

        def worker():
            req = yield res.request()
            yield sim.timeout(5.0)
            res.release(req)

        sim.process(worker())
        sim.run(until=10.0)
        assert res.utilization() == pytest.approx(0.5)

    def test_cancel_pending_request(self, sim):
        res = Resource(sim, capacity=1)
        granted = []

        def holder():
            req = yield res.request()
            yield sim.timeout(10.0)
            res.release(req)

        sim.process(holder())
        sim.run(until=1.0)
        abandoned = res.request()
        abandoned.cancel()

        def late():
            req = yield res.request()
            granted.append(sim.now)
            res.release(req)

        sim.process(late())
        sim.run()
        assert granted == [10.0]
        assert not abandoned.triggered

    def test_cancel_granted_request_raises(self, sim):
        res = Resource(sim)
        req = res.request()
        sim.run()
        with pytest.raises(RuntimeError):
            req.cancel()

    def test_peak_queue_len(self, sim):
        res = Resource(sim, capacity=1)

        def worker():
            req = yield res.request()
            yield sim.timeout(1.0)
            res.release(req)

        for _ in range(4):
            sim.process(worker())
        sim.run()
        # The first request is granted immediately; the other three queue.
        assert res.peak_queue_len == 3


class TestPriorityResource:
    def test_lowest_priority_value_first(self, sim):
        res = PriorityResource(sim, capacity=1)
        order = []

        def holder():
            req = yield res.request()
            yield sim.timeout(1.0)
            res.release(req)

        def worker(name, prio):
            req = yield res.request(priority=prio)
            order.append(name)
            res.release(req)

        sim.process(holder())
        sim.process(worker("low", 10))
        sim.process(worker("high", 1))
        sim.process(worker("mid", 5))
        sim.run()
        assert order == ["high", "mid", "low"]

    def test_ties_break_fifo(self, sim):
        res = PriorityResource(sim, capacity=1)
        order = []

        def holder():
            req = yield res.request()
            yield sim.timeout(1.0)
            res.release(req)

        def worker(name):
            req = yield res.request(priority=5)
            order.append(name)
            res.release(req)

        sim.process(holder())
        for name in "abc":
            sim.process(worker(name))
        sim.run()
        assert order == ["a", "b", "c"]


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")
        got = []

        def getter():
            got.append((yield store.get()))

        sim.process(getter())
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def getter():
            item = yield store.get()
            got.append((sim.now, item))

        sim.process(getter())
        sim.schedule(3.0, lambda: store.put("late"))
        sim.run()
        assert got == [(3.0, "late")]

    def test_fifo_item_order(self, sim):
        store = Store(sim)
        for i in range(3):
            store.put(i)
        got = []

        def getter():
            for _ in range(3):
                got.append((yield store.get()))

        sim.process(getter())
        sim.run()
        assert got == [0, 1, 2]

    def test_fifo_getter_order(self, sim):
        store = Store(sim)
        got = []

        def getter(name):
            item = yield store.get()
            got.append((name, item))

        sim.process(getter("first"))
        sim.process(getter("second"))
        sim.schedule(1.0, lambda: store.put("a"))
        sim.schedule(2.0, lambda: store.put("b"))
        sim.run()
        assert got == [("first", "a"), ("second", "b")]

    def test_capacity_overflow_raises(self, sim):
        store = Store(sim, capacity=1)
        store.put(1)
        with pytest.raises(OverflowError):
            store.put(2)

    def test_try_get(self, sim):
        store = Store(sim)
        assert store.try_get() is None
        store.put("y")
        assert store.try_get() == "y"

    def test_cancel_get(self, sim):
        store = Store(sim)
        ev = store.get()
        store.cancel_get(ev)
        store.put("z")
        assert not ev.triggered
        assert store.try_get() == "z"

    def test_len_and_peak(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.peak_size == 2


class TestContainer:
    def test_init_validation(self, sim):
        with pytest.raises(ValueError):
            Container(sim, init=-1)
        with pytest.raises(ValueError):
            Container(sim, init=5, capacity=3)

    def test_get_blocks_until_level_sufficient(self, sim):
        tank = Container(sim, init=1.0)
        got = []

        def getter():
            yield tank.get(3.0)
            got.append(sim.now)

        sim.process(getter())
        sim.schedule(2.0, lambda: tank.put(2.0))
        sim.run()
        assert got == [2.0]
        assert tank.level == 0.0

    def test_put_clamped_to_capacity(self, sim):
        tank = Container(sim, init=0.0, capacity=5.0)
        tank.put(100.0)
        assert tank.level == 5.0

    def test_negative_amounts_rejected(self, sim):
        tank = Container(sim)
        with pytest.raises(ValueError):
            tank.put(-1)
        with pytest.raises(ValueError):
            tank.get(-1)
