"""MgmtCrash: the controller-outage fault, driven through FaultSchedule."""

import pytest

from repro.chaos import (ChaosTargets, FAULT_KINDS, FaultSchedule,
                         MgmtCrash)
from repro.cluster import BackendServer, paper_testbed_specs
from repro.content import ContentItem, ContentType, DocTree
from repro.core import UrlTable
from repro.mgmt import (Broker, Controller, ControllerDurability,
                        DurabilityConfig)
from repro.net import Lan, Nic
from repro.sim import Simulator


def build(n_nodes=3, durability=True):
    sim = Simulator()
    lan = Lan(sim)
    specs = paper_testbed_specs()[:n_nodes]
    servers = {s.name: BackendServer(sim, lan, s) for s in specs}
    controller_nic = Nic(sim, 100, name="controller")
    controller = Controller(sim, controller_nic, UrlTable(), DocTree())
    registry: dict[str, Broker] = {}
    for server in servers.values():
        broker = Broker(sim, lan, server, controller_nic, registry)
        controller.register_broker(broker)
    if durability:
        ControllerDurability(
            DurabilityConfig(recovery_grace=0.2)).attach(controller)
    targets = ChaosTargets(sim=sim, lan=lan, servers=servers,
                           brokers=registry, controller=controller)
    return sim, servers, controller, targets


class TestMgmtCrashFault:
    def test_not_in_rotation(self):
        # appending MgmtCrash to FAULT_KINDS would shift every golden
        # chaos episode's forced fault; it must stay opt-in
        assert MgmtCrash not in FAULT_KINDS

    def test_requires_controller_target(self):
        sim, servers, controller, targets = build()
        targets.controller = None
        fault = MgmtCrash(at=1.0, duration=0.5)
        with pytest.raises(ValueError):
            fault.apply(targets)

    def test_must_be_transient(self):
        sim, servers, controller, targets = build()
        fault = MgmtCrash(at=1.0, duration=0.0)
        with pytest.raises(ValueError):
            fault.apply(targets)

    def test_schedule_crashes_and_recovers_controller(self):
        sim, servers, controller, targets = build()
        schedule = FaultSchedule([MgmtCrash(at=0.5, duration=0.6)])
        schedule.install(targets)
        sim.run(until=0.7)
        assert not controller.alive
        assert controller.crashes == 1
        sim.run(until=3.0)
        assert controller.alive
        assert controller.restarts == 1
        # the revert kicked off a recovery pass over the (empty) WAL
        assert controller.durability.last_recovery is not None
        assert controller.durability.last_recovery.clean

    def test_outage_interrupts_inflight_op_then_recovery_resolves(self):
        sim, servers, controller, targets = build()
        node = sorted(servers)[0]
        doc = item = ContentItem("/mc/x.html", 8192, ContentType.HTML)
        outcome = {}

        def driver():
            yield sim.timeout(0.4)
            try:
                yield from controller.place(item, node)
                outcome["placed"] = True
            except Exception as exc:
                outcome["error"] = type(exc).__name__

        sim.process(driver())
        schedule = FaultSchedule([MgmtCrash(at=0.401, duration=0.5)])
        schedule.install(targets)
        sim.run()
        assert outcome == {"error": "ControllerCrashed"}
        report = controller.durability.last_recovery
        assert report is not None and report.clean
        # recovery converged: routing and physical state agree
        routed = (doc.path in controller.url_table
                  and node in controller.url_table.locations(doc.path))
        assert routed == servers[node].holds(doc.path)
        assert controller.durability.verify_consistency() == []

    def test_without_durability_restart_skips_recovery(self):
        sim, servers, controller, targets = build(durability=False)
        schedule = FaultSchedule([MgmtCrash(at=0.5, duration=0.5)])
        schedule.install(targets)
        sim.run(until=2.0)
        assert controller.alive
        assert controller.durability is None
