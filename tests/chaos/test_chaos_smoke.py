"""Chaos smoke: three short seeded episodes inside the tier-1 budget.

The full harness is ``repro chaos --seed 1 --episodes 20``; this marker
runs a miniature version so every CI run exercises the fault-injection
subsystem end to end (fault classes rotate, so three episodes cover three
different forced classes, including a primary failover at episode 1).
"""

import pytest

from repro.experiments.chaos import ChaosRunner


@pytest.mark.chaos_smoke
class TestChaosSmoke:
    def test_three_short_episodes_survive(self):
        runner = ChaosRunner(seed=1, episodes=3, duration=3.0, clients=6,
                             n_objects=150, settle=1.5)
        results = runner.run()
        assert runner.all_survived, runner.report()
        # the rotation forced three distinct fault classes
        forced = {r.schedule.kinds() for r in results}
        assert len(forced) == 3
        # at least one episode actually failed over the distributor
        assert any(r.failed_over for r in results)
        # traffic flowed in every episode
        assert all(r.completed > 100 for r in results)

    def test_same_seed_same_outcomes(self):
        a = ChaosRunner(seed=5, episodes=1, duration=3.0, clients=4,
                        n_objects=120, settle=1.5)
        b = ChaosRunner(seed=5, episodes=1, duration=3.0, clients=4,
                        n_objects=120, settle=1.5)
        ra, rb = a.run()[0], b.run()[0]
        assert ra.completed == rb.completed
        assert ra.errors == rb.errors
        assert ra.schedule.describe() == rb.schedule.describe()
        assert a.report() == b.report()
