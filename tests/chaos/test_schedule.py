"""Tests for FaultSchedule and the seeded schedule generator."""

import pytest

from repro.chaos import (BackendCrash, FAULT_KINDS, FaultSchedule, LanDelay,
                         Partition, generate_schedule)
from repro.cluster import BackendServer, paper_testbed_specs
from repro.net import Lan
from repro.sim import RngStream, Simulator

NODES = [s.name for s in paper_testbed_specs()]


class TestFaultSchedule:
    def test_faults_sorted_by_time(self):
        schedule = FaultSchedule([
            LanDelay(extra=0.01, at=5.0, duration=1.0),
            BackendCrash(node="n1", at=2.0, duration=1.0),
        ])
        assert [f.at for f in schedule] == [2.0, 5.0]
        assert schedule.kinds() == ("backend-crash", "lan-delay")

    def test_at_most_one_partition(self):
        with pytest.raises(ValueError):
            FaultSchedule([
                Partition(nodes=("a",), at=1.0, duration=1.0),
                Partition(nodes=("b",), at=3.0, duration=1.0),
            ])

    def test_install_registers_engine_injections(self):
        sim = Simulator()
        lan = Lan(sim)
        spec = paper_testbed_specs()[0]
        servers = {spec.name: BackendServer(sim, lan, spec)}
        from repro.chaos import ChaosTargets
        targets = ChaosTargets(sim=sim, lan=lan, servers=servers)
        schedule = FaultSchedule([
            BackendCrash(node=spec.name, at=1.0, duration=2.0)])
        records = schedule.install(targets)
        assert len(records) == 1
        assert sim.injections == records
        sim.run(until=2.0)
        assert not servers[spec.name].alive
        sim.run(until=4.0)
        assert servers[spec.name].alive  # reverted after its duration

    def test_past_faults_rejected(self):
        sim = Simulator()
        lan = Lan(sim)
        spec = paper_testbed_specs()[0]
        servers = {spec.name: BackendServer(sim, lan, spec)}
        sim.run(until=5.0)
        from repro.chaos import ChaosTargets
        targets = ChaosTargets(sim=sim, lan=lan, servers=servers)
        schedule = FaultSchedule([
            BackendCrash(node=spec.name, at=1.0, duration=2.0)])
        with pytest.raises(ValueError):
            schedule.install(targets)


class TestGenerateSchedule:
    def test_deterministic_for_a_seed(self):
        a = generate_schedule(RngStream(3, "sched"), NODES, 6.0)
        b = generate_schedule(RngStream(3, "sched"), NODES, 6.0)
        assert a.describe() == b.describe()
        c = generate_schedule(RngStream(4, "sched"), NODES, 6.0)
        assert a.describe() != c.describe()

    def test_forced_kind_always_present(self):
        for cls in FAULT_KINDS:
            schedule = generate_schedule(RngStream(1, "s"), NODES, 6.0,
                                         forced=cls)
            assert cls.kind in schedule.kinds()

    def test_distinct_kinds_no_duplicates(self):
        for seed in range(10):
            schedule = generate_schedule(RngStream(seed, "s"), NODES, 6.0,
                                         forced=BackendCrash,
                                         extra_faults=3)
            kinds = [f.kind for f in schedule]
            assert len(kinds) == len(set(kinds)) == 4

    def test_faults_strike_and_heal_inside_the_run(self):
        for seed in range(20):
            schedule = generate_schedule(RngStream(seed, "s"), NODES, 6.0,
                                         extra_faults=4)
            for fault in schedule:
                assert 0.0 < fault.at < 6.0 * 0.45 + 1e-9
                assert fault.ends_at < 6.0 * 0.70 + 1e-9

    def test_rotation_covers_every_kind(self):
        seen = set()
        for i in range(len(FAULT_KINDS)):
            forced = FAULT_KINDS[i % len(FAULT_KINDS)]
            schedule = generate_schedule(RngStream(1, f"ep/{i}"), NODES,
                                         6.0, forced=forced)
            seen.update(schedule.kinds())
        assert seen == {cls.kind for cls in FAULT_KINDS}
