"""Tests for the typed fault classes and the hooks they drive."""

import pytest

from repro.chaos import (AgentLoss, BackendCrash, ChaosTargets, DiskSlowdown,
                         LanDelay, PacketLoss, Partition, PrimaryCrash)
from repro.cluster import BackendServer, paper_testbed_specs
from repro.mgmt import Broker, StatusAgent
from repro.net import Lan, Nic
from repro.sim import RngStream, Simulator


def build_targets(n_servers=2):
    sim = Simulator()
    lan = Lan(sim)
    specs = paper_testbed_specs()[:n_servers]
    servers = {s.name: BackendServer(sim, lan, s) for s in specs}
    # seed 0's first loss draw is 0.236 < 0.9: the first transfer under
    # PacketLoss(rate=0.9) deterministically pays a retransmission
    return ChaosTargets(sim=sim, lan=lan, servers=servers,
                        loss_rng=RngStream(0, "loss"),
                        agent_rng=RngStream(0, "agents"))


class TestBackendCrash:
    def test_apply_and_revert(self):
        targets = build_targets()
        node = sorted(targets.servers)[0]
        fault = BackendCrash(node=node, at=1.0, duration=2.0)
        fault.apply(targets)
        assert not targets.servers[node].alive
        fault.revert(targets)
        assert targets.servers[node].alive


class TestPrimaryCrash:
    def test_requires_pair(self):
        targets = build_targets()
        with pytest.raises(ValueError):
            PrimaryCrash(at=1.0).apply(targets)


class TestPacketLoss:
    def test_lossy_transfers_pay_retransmissions(self):
        targets = build_targets()
        sim, lan = targets.sim, targets.lan
        fault = PacketLoss(rate=0.9, retransmit_delay=0.5, at=0.0,
                           duration=1.0)
        fault.apply(targets)
        a = Nic(sim, 100, name="a.nic")
        b = Nic(sim, 100, name="b.nic")
        done = []

        def go():
            yield from lan.transfer(a, b, 1000)
            done.append(sim.now)

        sim.process(go())
        sim.run(until=60.0)
        assert done and done[0] > 0.5  # at least one retransmission round
        assert lan.retransmissions >= 1
        fault.revert(targets)
        assert lan.loss_rate == 0.0

    def test_rate_validation(self):
        targets = build_targets()
        with pytest.raises(ValueError):
            PacketLoss(rate=1.0, at=0.0).apply(targets)


class TestLanDelay:
    def test_delay_is_additive_and_revertable(self):
        targets = build_targets()
        lan = targets.lan
        fault = LanDelay(extra=0.25, at=0.0, duration=1.0)
        fault.apply(targets)
        assert lan.extra_latency == pytest.approx(0.25)
        fault.revert(targets)
        assert lan.extra_latency == 0.0

    def test_transfers_observe_extra_latency(self):
        targets = build_targets()
        sim, lan = targets.sim, targets.lan
        a = Nic(sim, 100, name="a.nic")
        b = Nic(sim, 100, name="b.nic")
        base = lan.transfer_time(a, b, 1000)
        LanDelay(extra=0.5, at=0.0, duration=1.0).apply(targets)
        done = []

        def go():
            yield from lan.transfer(a, b, 1000)
            done.append(sim.now)

        sim.process(go())
        sim.run(until=5.0)
        assert done[0] == pytest.approx(base + 0.5)


class TestPartition:
    def test_cross_partition_transfers_block_until_heal(self):
        targets = build_targets()
        sim, lan = targets.sim, targets.lan
        a = Nic(sim, 100, name="a.nic")
        b = Nic(sim, 100, name="b.nic")
        c = Nic(sim, 100, name="c.nic")
        fault = Partition(nodes=("a",), at=0.0, duration=3.0)
        fault.apply(targets)
        done = {}

        def crossing():
            yield from lan.transfer(a, b, 100)
            done["crossing"] = sim.now

        def same_side():
            yield from lan.transfer(b, c, 100)
            done["same_side"] = sim.now

        sim.process(crossing())
        sim.process(same_side())
        sim.schedule(3.0, lambda: fault.revert(targets))
        sim.run(until=10.0)
        # the same-side transfer was never head-of-line blocked
        assert done["same_side"] < 0.1
        assert done["crossing"] >= 3.0
        assert lan.transfers_blocked == 1
        assert lan.partitioned_nodes == frozenset()


class TestDiskSlowdown:
    def test_reads_slow_down_by_factor(self):
        targets = build_targets()
        sim = targets.sim
        node = sorted(targets.servers)[0]
        disk = targets.servers[node].disk
        base = disk.spec.read_time(100_000)
        DiskSlowdown(node=node, factor=10.0, at=0.0, duration=1.0) \
            .apply(targets)
        done = []

        def go():
            yield from disk.read(100_000)
            done.append(sim.now)

        sim.process(go())
        sim.run(until=60.0)
        assert done[0] == pytest.approx(base * 10.0)
        DiskSlowdown(node=node, factor=10.0, at=0.0).revert(targets)
        assert disk.slowdown == 1.0

    def test_factor_below_one_rejected(self):
        targets = build_targets()
        node = sorted(targets.servers)[0]
        with pytest.raises(ValueError):
            DiskSlowdown(node=node, factor=0.5, at=0.0).apply(targets)


class TestAgentLoss:
    def test_dispatches_dropped_probabilistically(self):
        targets = build_targets()
        sim = targets.sim
        registry = {}
        node = sorted(targets.servers)[0]
        controller_nic = Nic(sim, 100, name="controller.nic")
        broker = Broker(sim, targets.lan, targets.servers[node],
                        controller_nic, registry=registry)
        targets.brokers = registry
        fault = AgentLoss(rate=1.0 - 1e-12, at=0.0, duration=1.0)
        fault.apply(targets)
        from repro.mgmt.messages import AgentDispatch
        for _ in range(5):
            broker.deliver(AgentDispatch(agent=StatusAgent(), target=node,
                                         sent_at=sim.now))
        assert broker.dispatches_dropped == 5
        fault.revert(targets)
        assert broker.drop_filter is None
        broker.deliver(AgentDispatch(agent=StatusAgent(), target=node,
                                     sent_at=sim.now))
        assert broker.dispatches_dropped == 5
