"""The overload chaos episode: flash crowd + slow disk, survival checked.

Three layers:

* the protected episode survives with graceful degradation -- every error
  a clean 503, admission bounds never exceeded, breakers tripped and
  re-closed, everything drained;
* the *unprotected* run of the identical scenario demonstrably violates
  the concurrency bound (the regression guard for "admission control
  actually bounds something");
* the whole episode is byte-identical across PYTHONHASHSEED values.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.chaos import (OVERLOAD_EPISODE_CONFIG,
                                     run_overload_episode)

pytestmark = pytest.mark.overload

SRC = str(Path(__file__).resolve().parents[2] / "src")

SEED = 1
SCALE = dict(duration=6.0, clients=10, n_objects=300, settle=2.5)


@pytest.fixture(scope="module")
def episode():
    return run_overload_episode(seed=SEED, **SCALE)


class TestProtectedEpisode:
    def test_survives(self, episode):
        assert episode.survived, episode.failure_summary()

    def test_every_request_answered_or_cleanly_shed(self, episode):
        assert episode.completed > 0
        assert episode.stuck_clients == []
        # clients saw 503s and nothing else -- no raw exceptions, no
        # transport failures (status None)
        assert set(episode.error_statuses) == {503}
        assert episode.errors == episode.error_statuses[503]

    def test_overload_actually_happened(self, episode):
        # the flash crowd overran admission and the slow disk caused
        # timeouts: the episode is vacuous unless both defences fired
        assert episode.shed > 0
        assert episode.timeouts > 0

    def test_admission_bounds_never_exceeded(self, episode):
        config = episode.config
        assert episode.admission_peak_inflight <= config.max_inflight
        assert episode.admission_peak_queue <= config.max_queue
        assert episode.admission_inflight_after == 0
        assert episode.admission_queued_after == 0

    def test_breakers_tripped_and_healed(self, episode):
        assert episode.breaker_opened > 0
        assert episode.breaker_reclosed > 0
        assert episode.breakers_all_closed
        assert episode.open_nodes == ()

    def test_goodput_floor(self, episode):
        # graceful degradation, not collapse: the protected plane still
        # clears a solid request rate through the whole episode
        assert episode.goodput >= 100.0

    def test_no_leaks_or_invariant_violations(self, episode):
        assert episode.invariant_violations == []
        assert episode.leak_violations == []


class TestUnprotectedBaseline:
    def test_same_episode_violates_the_bound_without_admission(self):
        result = run_overload_episode(seed=SEED, enabled=False, **SCALE)
        cap = (OVERLOAD_EPISODE_CONFIG.max_inflight +
               OVERLOAD_EPISODE_CONFIG.max_queue)
        # the raw concurrent population inside the front end blows
        # straight through what admission control would have allowed
        assert result.raw_peak_inflight > cap
        assert result.shed == 0 and result.timeouts == 0


_SUBPROCESS_SCRIPT = """
import dataclasses, json
from repro.experiments.chaos import run_overload_episode
r = run_overload_episode(seed=%d, duration=%r, clients=%d,
                         n_objects=%d, settle=%r)
out = {f.name: getattr(r, f.name) for f in dataclasses.fields(r)
       if f.name not in ("schedule", "config")}
out["schedule"] = r.schedule.describe()
out["error_statuses"] = sorted(
    (repr(k), v) for k, v in r.error_statuses.items())
print(json.dumps(out, sort_keys=True))
""" % (SEED, SCALE["duration"], SCALE["clients"], SCALE["n_objects"],
       SCALE["settle"])


def _run_with_hashseed(seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=SRC)
    proc = subprocess.run([sys.executable, "-c", _SUBPROCESS_SCRIPT],
                          capture_output=True, text=True, env=env,
                          timeout=300)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_episode_identical_across_hash_seeds():
    out_a = _run_with_hashseed("0")
    out_b = _run_with_hashseed("98765")
    assert out_a == out_b
    assert json.loads(out_a)["shed"] > 0
