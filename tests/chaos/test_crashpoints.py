"""Exhaustive crash-point exploration: every WAL/dispatch boundary of the
scripted recovery episode converges, and the report is byte-identical
across runs and ``PYTHONHASHSEED`` values."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.chaos import explore_crash_points, render_exploration
from repro.experiments.recovery import (recovery_episode_fn,
                                        run_recovery_episode)
from repro.mgmt import CrashPlan

pytestmark = pytest.mark.recovery

SRC = str(Path(__file__).resolve().parents[2] / "src")

_EXPLORE_SNIPPET = """
import json
from repro.chaos import explore_crash_points
from repro.experiments.recovery import recovery_episode_fn
report = explore_crash_points(recovery_episode_fn(1), offset=10, limit=6)
print(json.dumps(report, sort_keys=True))
"""


class TestBaselineEpisode:
    def test_baseline_converges_with_no_crash(self):
        outcome = run_recovery_episode(seed=1)
        assert outcome["converged"], outcome["failure"]
        assert not outcome["crashed"]
        assert len(outcome["ops"]["completed"]) == 8
        assert outcome["boundaries"] > 0
        assert len(outcome["descriptors"]) == outcome["boundaries"]
        assert outcome["consistency"] == []
        assert outcome["invariant_violations"] == []

    def test_crash_plan_fires_at_named_boundary(self):
        plan = CrashPlan(at_boundary=7)
        outcome = run_recovery_episode(seed=1, crash_plan=plan)
        assert plan.fired and outcome["crashed"]
        assert outcome["crash_boundary"] == 7
        assert plan.descriptor == outcome["descriptors"][6]
        assert outcome["converged"], outcome["failure"]


class TestExhaustiveExploration:
    def test_every_crash_point_converges(self):
        report = explore_crash_points(recovery_episode_fn(1))
        assert report["baseline_converged"]
        assert report["coverage"]["count"] == report["boundaries"]
        assert report["failures"] == []
        assert report["all_converged"]
        crashed = [e for e in report["explored"] if e["crashed"]]
        assert len(crashed) == report["boundaries"]

    def test_render_lists_failures_and_verdict(self):
        report = explore_crash_points(recovery_episode_fn(1), limit=3)
        text = render_exploration(report, verbose=True)
        assert "crash-point exploration" in text
        assert "all crash points converged" in text
        assert "[   1]" in text

    def test_offset_and_limit_shard_the_boundary_space(self):
        full = explore_crash_points(recovery_episode_fn(1))
        shard = explore_crash_points(recovery_episode_fn(1),
                                     offset=5, limit=4)
        assert shard["coverage"] == {"offset": 5, "count": 4,
                                     "first": 6, "last": 9}
        assert shard["explored"] == full["explored"][5:9]

    def test_invalid_slices_rejected(self):
        episode = recovery_episode_fn(1)
        with pytest.raises(ValueError):
            explore_crash_points(episode, offset=-1)
        with pytest.raises(ValueError):
            explore_crash_points(episode, limit=-1)


class TestDeterminism:
    def test_exploration_identical_across_in_process_runs(self):
        shard = dict(offset=20, limit=5)
        one = explore_crash_points(recovery_episode_fn(1), **shard)
        two = explore_crash_points(recovery_episode_fn(1), **shard)
        assert json.dumps(one, sort_keys=True) == \
            json.dumps(two, sort_keys=True)

    def test_exploration_identical_across_hash_seeds(self):
        outputs = []
        for hash_seed in ("0", "1"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed,
                       PYTHONPATH=SRC)
            proc = subprocess.run(
                [sys.executable, "-c", _EXPLORE_SNIPPET],
                capture_output=True, text=True, env=env, timeout=600)
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
