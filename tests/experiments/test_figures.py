"""Tests for the figure-reproduction harness (reduced scales for speed).

The full-scale shape assertions (who wins, by what factor) live in
``benchmarks/``; here we check the harness mechanics and the §5.2 table,
which is cheap at full scale.
"""

import pytest

from repro.experiments import (figure2, figure3, figure4, render_table,
                               url_table_overhead)
from repro.experiments.figures import DEFAULT_CLIENTS


class TestRenderTable:
    def test_renders_rows(self):
        text = render_table("T", ["a", "bee"], [[1, 2.5], [30, 4.0]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "bee" in lines[1]
        assert "30" in lines[-1]

    def test_empty_rows(self):
        text = render_table("T", ["a"], [])
        assert "a" in text


class TestFigureHarness:
    def test_figure2_small_scale_structure(self):
        fig = figure2(clients=(4, 8), duration=2.5, warmup=0.5)
        assert set(fig["series"]) == {"replication-l4", "nfs-l4",
                                      "partition-ca"}
        for series in fig["series"].values():
            assert len(series) == 2
            assert all(v > 0 for v in series)
        assert "Figure 2" in fig["rendered"]

    def test_figure3_small_scale_structure(self):
        fig = figure3(clients=(4, 8), duration=2.5, warmup=0.5)
        assert set(fig["series"]) == {"replication-l4", "partition-ca"}
        assert "Figure 3" in fig["rendered"]

    def test_figure4_small_scale_structure(self):
        fig = figure4(n_clients=12, duration=2.5, warmup=0.5)
        assert set(fig["classes"]) == {"cgi", "asp", "static"}
        for cls in fig["classes"].values():
            assert cls["baseline_rps"] > 0
            assert cls["segregated_rps"] > 0
        assert "Figure 4" in fig["rendered"]

    def test_default_client_counts_match_paper_saturation(self):
        assert DEFAULT_CLIENTS[-1] == 120  # §5.3: saturated by 120 clients


class TestUrlTableOverhead:
    def test_paper_scale_footprint(self):
        """§5.2: ~8700 objects -> ~260 KB table."""
        result = url_table_overhead(n_objects=8700, lookups=4000)
        assert result["n_objects"] == 8700
        assert 130 <= result["memory_kb"] <= 520

    def test_lookup_latency_order_of_magnitude(self):
        """§5.2 reports 4.32 us on a 350 MHz kernel implementation; our
        Python table on modern hardware should land within 0.1-50 us."""
        result = url_table_overhead(n_objects=2000, lookups=4000)
        assert 0.05 <= result["mean_lookup_us"] <= 50.0

    def test_cache_ablation_changes_hit_rate(self):
        with_cache = url_table_overhead(n_objects=1500, lookups=3000)
        without = url_table_overhead(n_objects=1500, lookups=3000,
                                     cache_entries=0)
        assert with_cache["cache_hit_rate"] > 0.3
        assert without["cache_hit_rate"] == 0.0

    def test_rendered_table(self):
        result = url_table_overhead(n_objects=500, lookups=500)
        assert "URL table overhead" in result["rendered"]
