"""Fleet determinism: the merged sweep report is byte-identical across
worker counts (1/2/4), across an artificially shuffled task-completion
order, and across start methods -- the acceptance property of DESIGN §13.
"""

import pytest

from repro.experiments.sweep import (SweepEngine, merge_sweep, runs_dir,
                                     write_report)

from .sweep_specs import tiny_spec

pytestmark = pytest.mark.sweep


def _sweep_bytes(tmp_path, tag, **engine_kwargs):
    spec = tiny_spec()
    out = tmp_path / tag
    SweepEngine(spec, out, **engine_kwargs).run()
    report = write_report(spec, out).read_bytes()
    artifacts = {p.name: p.read_bytes()
                 for p in sorted(runs_dir(out, spec).iterdir())}
    return report, artifacts


class TestFleetDeterminism:
    def test_report_identical_across_worker_counts_and_order(self, tmp_path):
        serial, serial_arts = _sweep_bytes(tmp_path, "w1", workers=1)
        two, two_arts = _sweep_bytes(tmp_path, "w2", workers=2)
        four, four_arts = _sweep_bytes(tmp_path, "w4", workers=4)
        # an artificially shuffled task order: the keyed-hash shuffle
        # permutes both dispatch and (serial) completion order
        shuffled, shuffled_arts = _sweep_bytes(tmp_path, "shuf", workers=1,
                                               shuffle_seed=7)
        reshuffled, _ = _sweep_bytes(tmp_path, "shuf2", workers=2,
                                     shuffle_seed=1312)
        assert serial == two == four == shuffled == reshuffled
        assert serial_arts == two_arts == four_arts == shuffled_arts

    def test_shuffle_actually_permutes_dispatch(self, tmp_path):
        spec = tiny_spec()
        canonical = [c.cell_id for c in spec.cells()]
        engine = SweepEngine(spec, tmp_path / "x", workers=1,
                             shuffle_seed=7)
        shuffled = [c.cell_id
                    for c in engine._dispatch_order(spec.cells())]
        assert sorted(shuffled) == sorted(canonical)
        assert shuffled != canonical

    def test_spawn_start_method_matches_fork(self, tmp_path):
        serial, _ = _sweep_bytes(tmp_path, "fork2", workers=2,
                                 start_method="fork")
        spawned, _ = _sweep_bytes(tmp_path, "spawn2", workers=2,
                                  start_method="spawn")
        assert serial == spawned


class TestMergeContract:
    def test_report_independent_of_stray_files(self, tmp_path):
        """Merge reads exactly the matrix's artifacts: leftover temp files
        or unrelated junk in runs/ change nothing."""
        spec = tiny_spec()
        out = tmp_path / "s"
        SweepEngine(spec, out, workers=1).run()
        baseline = merge_sweep(spec, out)
        (runs_dir(out, spec) / ".deadbeef.tmp.99").write_text("junk")
        (runs_dir(out, spec) / "unrelated.json").write_text("{}")
        assert merge_sweep(spec, out) == baseline

    def test_filtered_sweep_merges_only_matching_cells(self, tmp_path):
        spec = tiny_spec()
        out = tmp_path / "f"
        engine = SweepEngine(spec, out, workers=1, cell_filter="openloop")
        status = engine.run()
        assert len(status.selected) == 2
        report = merge_sweep(spec, out, cell_filter="openloop")
        assert sorted(report["cells"]) == status.selected
        assert report["filter"] == "openloop"
        assert report["aggregates"]["runs"] == 2
