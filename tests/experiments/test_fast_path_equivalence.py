"""The DESIGN.md §11 equivalence contract: the kernel fast path buys
wall-clock time only -- every simulated observable is byte-identical to
the segment/event-accurate path.

Covered surfaces: the packet-level splice fast-forward digest, Figure 2
golden sections, ``MetricSet.snapshot()``, the overload episode's outcome
table and trace JSONL, three seeded chaos episodes, the mid-run-fault
automatic fallback, and subprocess runs across two ``PYTHONHASHSEED``
values.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.experiments import ExperimentConfig, build_deployment, figure2
from repro.experiments.bench import run_openloop_splice
from repro.experiments.chaos import ChaosRunner, run_overload_episode
from repro.obs import to_jsonl
from repro.workload import WORKLOAD_A

SRC = str(Path(__file__).resolve().parents[2] / "src")

#: one small cell reused by the snapshot and subprocess tests
CELL = dict(scheme="partition-ca", duration=1.5, warmup=0.5,
            n_objects=120, n_client_machines=4, seed=1234)
N_CLIENTS = 4

OVERLOAD_SCALE = dict(seed=11, duration=3.0, clients=6, n_objects=150,
                      settle=1.5)
CHAOS_SCALE = dict(seed=1, episodes=3, duration=3.0, clients=6,
                   n_objects=150, settle=1.5)


def _reset_process_counters():
    """Rewind the process-wide id counters that show up in trace attrs.

    Request/dispatch/connection ids are labels drawn from module-level
    counters, so two episodes in one process label their traffic with
    different numbers.  Resetting them lets trace JSONL from back-to-back
    runs compare byte-for-byte (run-order hygiene, not a fast-path
    concern -- subprocess runs need no reset).
    """
    import itertools

    from repro.core import conn_pool, frontend
    from repro.mgmt import messages
    from repro.net import http

    http._request_ids = itertools.count(1)
    messages._dispatch_ids = itertools.count(1)
    conn_pool._conn_ids = itertools.count(1)
    frontend._client_ports = itertools.count(40000)


def _run_cell(fast_path: bool, fault_window=None):
    config = ExperimentConfig(workload=WORKLOAD_A, fast_path=fast_path,
                              **CELL)
    deployment = build_deployment(config)
    if fault_window is not None:
        start, stop, extra = fault_window
        lan = deployment.lan
        deployment.sim.schedule(start, lambda: lan.add_delay(extra))
        deployment.sim.schedule(stop, lambda: lan.remove_delay(extra))
    summary = deployment.run(N_CLIENTS)
    return deployment, summary


class TestSpliceFastForward:
    def test_packet_path_byte_identical_and_collapsed(self):
        segment = run_openloop_splice(rate=150.0, duration=0.4,
                                      fast_path=False)
        fast = run_openloop_splice(rate=150.0, duration=0.4,
                                   fast_path=True)
        # same completions, bytes, segment counts, relay counters, and
        # per-request completion timeline -- byte for byte
        assert segment["digest"] == fast["digest"]
        # the segment path never coalesces; the fast path must have
        assert segment["flow_forwards"] == 0
        assert fast["flow_forwards"] > 0
        # and coalescing is the point: far fewer scheduled events
        assert fast["events"] < segment["events"] / 2


class TestRequestLevelEquivalence:
    def test_metricset_snapshot_identical(self):
        dep_segment, seg_summary = _run_cell(fast_path=False)
        dep_fast, fast_summary = _run_cell(fast_path=True)
        assert seg_summary == fast_summary
        now = dep_segment.config.duration
        assert dep_segment.frontend.metrics.snapshot(now) == \
            dep_fast.frontend.metrics.snapshot(now)

    def test_figure2_golden_sections_identical(self):
        kwargs = dict(clients=(8,), duration=2.5, warmup=1.0, seed=42)
        segment = figure2(**kwargs, fast_path=False)
        fast = figure2(**kwargs, fast_path=True)
        assert json.dumps(segment, sort_keys=True) == \
            json.dumps(fast, sort_keys=True)

    def test_overload_outcome_and_trace_jsonl_identical(self):
        _reset_process_counters()
        segment = run_overload_episode(**OVERLOAD_SCALE, trace=True,
                                       fast_path=False)
        _reset_process_counters()
        fast = run_overload_episode(**OVERLOAD_SCALE, trace=True,
                                    fast_path=True)
        assert segment.report() == fast.report()
        assert to_jsonl(segment.tracer) == to_jsonl(fast.tracer)
        # the fast path really engaged (fewer kernel events, same outcome)
        assert fast.events < segment.events


class TestChaosEquivalence:
    def test_chaos_episode_outcomes_identical(self):
        segment = ChaosRunner(**CHAOS_SCALE, fast_path=False)
        segment.run()
        fast = ChaosRunner(**CHAOS_SCALE, fast_path=True)
        fast.run()
        assert len(fast.results) >= 3
        assert segment.report() == fast.report()

    def test_mid_transfer_fault_forces_fallback(self):
        """A LAN fault mid-run must push in-window transfers off the fast
        path (deterministic automatic fallback), without changing any
        observable."""
        window = (0.6, 1.1, 0.0005)     # delay fault inside the run
        _, seg_summary = _run_cell(fast_path=False, fault_window=window)
        dep_fast, fast_summary = _run_cell(fast_path=True,
                                           fault_window=window)
        assert seg_summary == fast_summary
        lan = dep_fast.lan
        # transfers outside the window used the fast branch; transfers
        # inside it fell back to the event-accurate branch
        assert 0 < lan.fast_transfers < lan.total_transfers


_SUBPROCESS_SCRIPT = """\
import json
from repro.experiments import ExperimentConfig, build_deployment
from repro.workload import WORKLOAD_A

config = ExperimentConfig(workload=WORKLOAD_A, scheme="partition-ca",
                          duration=1.5, warmup=0.5, n_objects=120,
                          n_client_machines=4, seed=1234,
                          fast_path={fast_path})
summary = build_deployment(config).run(4)
print(json.dumps(summary, sort_keys=True))
"""


def _run_subprocess(hash_seed: str, fast_path: bool) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=SRC)
    script = _SUBPROCESS_SCRIPT.format(fast_path=fast_path)
    proc = subprocess.run([sys.executable, "-c", script],
                          capture_output=True, text=True, env=env,
                          timeout=300)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestHashSeedIndependence:
    def test_fast_path_identical_across_hash_seeds_and_paths(self):
        fast_h0 = _run_subprocess("0", fast_path=True)
        fast_h1 = _run_subprocess("1", fast_path=True)
        segment_h0 = _run_subprocess("0", fast_path=False)
        assert fast_h0 == fast_h1
        assert fast_h0 == segment_h0
