"""Resume contract: an interrupted sweep continues where it stopped, a
corrupted artifact is detected and re-run, and the resumed report is
byte-identical to an uninterrupted one.
"""

import json

import pytest

from repro.experiments.sweep import (SweepEngine, SweepError, load_artifact,
                                     merge_sweep, runs_dir, write_report)

from .sweep_specs import tiny_spec

pytestmark = pytest.mark.sweep


def _artifact_bytes(out, spec):
    return {p.name: p.read_bytes()
            for p in sorted(runs_dir(out, spec).glob("*.json"))}


class TestResume:
    def test_interrupt_resume_matches_uninterrupted(self, tmp_path):
        spec = tiny_spec()
        baseline_out = tmp_path / "full"
        SweepEngine(spec, baseline_out, workers=1).run()
        baseline_report = write_report(spec, baseline_out).read_bytes()
        baseline_artifacts = _artifact_bytes(baseline_out, spec)

        # "interrupt" after 2 of 4 runs via limit
        out = tmp_path / "resumed"
        partial = SweepEngine(spec, out, workers=1, limit=2).run()
        assert not partial.complete
        assert len(partial.executed) == 2 and len(partial.pending) == 2

        # merging a partial sweep refuses loudly
        with pytest.raises(SweepError, match="missing or invalid"):
            merge_sweep(spec, out)

        # corrupt one completed artifact: truncate it mid-file
        done = sorted(runs_dir(out, spec).glob("*.json"))[0]
        done.write_bytes(done.read_bytes()[:40])

        resumed = SweepEngine(spec, out, workers=2, resume=True).run()
        assert resumed.complete
        assert len(resumed.resumed) == 1          # the surviving artifact
        assert len(resumed.invalidated) == 1      # the truncated one
        assert len(resumed.executed) == 3         # 2 pending + 1 re-run

        assert write_report(spec, out).read_bytes() == baseline_report
        assert _artifact_bytes(out, spec) == baseline_artifacts

    def test_resume_of_complete_sweep_runs_nothing(self, tmp_path):
        spec = tiny_spec()
        out = tmp_path / "s"
        SweepEngine(spec, out, workers=1).run()
        report = write_report(spec, out).read_bytes()
        again = SweepEngine(spec, out, workers=4, resume=True).run()
        assert again.executed == []
        assert sorted(again.resumed) == again.selected
        assert write_report(spec, out).read_bytes() == report

    def test_fresh_run_clears_stale_sweep_dir(self, tmp_path):
        spec = tiny_spec()
        out = tmp_path / "s"
        SweepEngine(spec, out, workers=1, limit=1).run()
        stray = runs_dir(out, spec) / "stale.json"
        stray.write_text("{}")
        status = SweepEngine(spec, out, workers=1).run()  # resume=False
        assert not stray.exists()
        assert status.complete and status.resumed == []


class TestArtifactValidation:
    @pytest.fixture()
    def completed(self, tmp_path):
        spec = tiny_spec()
        out = tmp_path / "s"
        SweepEngine(spec, out, workers=1).run()
        return spec, runs_dir(out, spec)

    def _mutate(self, run_directory, cell, edit):
        path = run_directory / f"{cell.run_id}.json"
        data = json.loads(path.read_text())
        edit(data)
        path.write_text(json.dumps(data))

    def test_valid_artifact_loads(self, completed):
        spec, run_directory = completed
        for cell in spec.cells():
            assert load_artifact(run_directory, cell) is not None

    def test_tampered_result_rejected(self, completed):
        spec, run_directory = completed
        cell = spec.cells()[0]
        self._mutate(run_directory, cell,
                     lambda d: d["result"].update(completed=999999))
        assert load_artifact(run_directory, cell) is None

    def test_schema_version_mismatch_rejected(self, completed):
        spec, run_directory = completed
        cell = spec.cells()[0]
        self._mutate(run_directory, cell,
                     lambda d: d.update(schema_version=99))
        assert load_artifact(run_directory, cell) is None

    def test_foreign_identity_rejected(self, completed):
        spec, run_directory = completed
        cell = spec.cells()[0]
        self._mutate(run_directory, cell,
                     lambda d: d.update(cell_id="cell[seed=999]"))
        assert load_artifact(run_directory, cell) is None

    def test_missing_artifact_rejected(self, completed):
        spec, run_directory = completed
        cell = spec.cells()[0]
        (run_directory / f"{cell.run_id}.json").unlink()
        assert load_artifact(run_directory, cell) is None
