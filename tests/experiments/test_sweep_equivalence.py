"""Sweep/harness equivalence: a single-cell sweep reproduces exactly the
artifact the direct harness produces -- same chaos episode outcome, same
overload counters, same bench stage digest.  The sweep adds plumbing, not
physics.
"""

import pytest

from repro.experiments.sweep import (SweepEngine, execute_cell, jsonify,
                                     load_artifact, reset_process_counters,
                                     runs_dir, spec_from_dict)

pytestmark = pytest.mark.sweep


def _single_cell_result(tmp_path, target, base):
    spec = spec_from_dict({
        "schema_version": 1, "name": "one",
        "blocks": [{"target": target, "base": base}]})
    out = tmp_path / "s"
    SweepEngine(spec, out, workers=1).run()
    (cell,) = spec.cells()
    artifact = load_artifact(runs_dir(out, spec), cell)
    assert artifact is not None
    return artifact["result"]


class TestHarnessEquivalence:
    def test_cell_matches_direct_deployment_run(self, tmp_path):
        from repro.experiments import ExperimentConfig, build_deployment
        from repro.workload import WORKLOAD_A
        base = {"scheme": "partition-ca", "workload": "A", "duration": 1.5,
                "warmup": 0.5, "n_objects": 120, "n_client_machines": 4,
                "seed": 1234, "clients": 4}
        result = _single_cell_result(tmp_path, "cell", base)
        config = ExperimentConfig(
            scheme="partition-ca", workload=WORKLOAD_A, duration=1.5,
            warmup=0.5, n_objects=120, n_client_machines=4, seed=1234)
        reset_process_counters()
        summary = build_deployment(config).run(4)
        assert result["summary"] == jsonify(summary)
        assert result["completed"] == summary["completed"]
        assert result["errors"] == summary["errors"]

    def test_chaos_matches_direct_runner(self, tmp_path):
        from repro.experiments.chaos import ChaosRunner
        base = {"seed": 1, "episodes": 2, "duration": 3.0, "clients": 6,
                "n_objects": 150, "settle": 1.5}
        result = _single_cell_result(tmp_path, "chaos", base)
        reset_process_counters()
        runner = ChaosRunner(seed=1, episodes=2, duration=3.0, clients=6,
                             n_objects=150, settle=1.5)
        runner.run()
        assert result["report"] == runner.report()
        assert result["survived"] == runner.all_survived
        assert result["completed"] == \
            sum(r.completed for r in runner.results)

    def test_overload_matches_direct_episode(self, tmp_path):
        from repro.experiments.chaos import run_overload_episode
        base = {"seed": 11, "duration": 3.0, "clients": 6,
                "n_objects": 150, "settle": 1.5}
        result = _single_cell_result(tmp_path, "overload", base)
        reset_process_counters()
        direct = run_overload_episode(seed=11, duration=3.0, clients=6,
                                      n_objects=150, settle=1.5)
        assert result["report"] == direct.report()
        assert result["survived"] == direct.survived
        assert result["completed"] == direct.completed
        assert result["shed"] == direct.shed
        assert result["peak_inflight"] == direct.admission_peak_inflight

    def test_openloop_matches_direct_bench_stage(self, tmp_path):
        from repro.experiments.bench import run_openloop_splice
        base = {"rate": 150.0, "duration": 0.4, "seed": 42,
                "fast_path": True}
        result = _single_cell_result(tmp_path, "openloop", base)
        direct = run_openloop_splice(rate=150.0, duration=0.4, seed=42,
                                     fast_path=True)
        assert result["digest"] == direct["digest"]
        assert result["events"] == direct["events"]
        assert result["flow_forwards"] == direct["flow_forwards"]
        assert "wall_s" not in result


class TestTargetContract:
    def test_unknown_target_rejected(self):
        from repro.experiments.sweep import SweepError, run_target
        with pytest.raises(SweepError, match="unknown target"):
            run_target("nope", {"seed": 1})

    def test_missing_and_unknown_params_rejected(self):
        from repro.experiments.sweep import SweepError, run_target
        with pytest.raises(SweepError, match="missing parameters"):
            run_target("openloop", {})
        with pytest.raises(SweepError, match="unknown parameters"):
            run_target("openloop", {"seed": 1, "bogus": 2})

    def test_execute_cell_digest_covers_result(self, tmp_path):
        from repro.experiments.sweep import (RunCell, canonical_json,
                                             sha256_hex)
        cell = RunCell.make("openloop",
                            {"rate": 150.0, "duration": 0.4, "seed": 42})
        artifact = execute_cell(cell)
        assert artifact["result_sha256"] == \
            sha256_hex(canonical_json(artifact["result"]))
        assert artifact["run_id"] == cell.run_id
