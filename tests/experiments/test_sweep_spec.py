"""SweepSpec expansion and validation: the run matrix is a pure function
of the spec -- sorted, content-addressed, and hostile to malformed input.
"""

import json

import pytest

from repro.experiments.sweep import (MatrixBlock, RunCell, SweepError,
                                     SweepSpec, load_spec, spec_from_dict)

from .sweep_specs import TINY_SPEC_DICT, tiny_spec


class TestExpansion:
    def test_cross_product_and_canonical_order(self):
        block = MatrixBlock.make(
            "openloop", base={"seed": 42},
            axes={"rate": [100.0, 200.0], "fast_path": [False, True]})
        spec = SweepSpec.make("m", [block])
        cells = spec.cells()
        assert len(cells) == 4
        # sorted by cell id, independent of axis insertion order
        assert [c.cell_id for c in cells] == sorted(c.cell_id for c in cells)
        rates = {c.params_dict()["rate"] for c in cells}
        assert rates == {100.0, 200.0}

    def test_cell_id_renders_json_literals(self):
        cell = RunCell.make("cell", {"seed": 7, "fast_path": True,
                                     "workload": "A"})
        assert cell.cell_id == 'cell[fast_path=true,seed=7,workload="A"]'

    def test_run_id_independent_of_param_order(self):
        a = RunCell.make("cell", {"seed": 1, "clients": 4})
        b = RunCell.make("cell", {"clients": 4, "seed": 1})
        assert a.run_id == b.run_id

    def test_run_id_differs_across_params_and_targets(self):
        base = RunCell.make("cell", {"seed": 1})
        assert base.run_id != RunCell.make("cell", {"seed": 2}).run_id
        assert base.run_id != RunCell.make("chaos", {"seed": 1}).run_id

    def test_spec_hash_changes_with_content(self):
        spec = tiny_spec()
        edited = dict(TINY_SPEC_DICT)
        edited = json.loads(json.dumps(edited))
        edited["blocks"][0]["base"]["seed"] = 43
        assert spec.spec_hash != spec_from_dict(edited).spec_hash

    def test_multiple_blocks_concatenate(self):
        spec = tiny_spec()
        assert len(spec.cells()) == 4
        targets = sorted({c.target for c in spec.cells()})
        assert targets == ["cell", "openloop"]


class TestValidation:
    def test_base_axis_collision_rejected(self):
        with pytest.raises(SweepError, match="both base and axes"):
            MatrixBlock.make("cell", base={"seed": 1}, axes={"seed": [1, 2]})

    def test_empty_axis_rejected(self):
        with pytest.raises(SweepError, match="empty"):
            MatrixBlock.make("cell", axes={"seed": []})

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(SweepError, match="duplicate values"):
            MatrixBlock.make("cell", axes={"seed": [1, 1]})

    def test_non_scalar_param_rejected(self):
        with pytest.raises(SweepError, match="not a JSON scalar"):
            MatrixBlock.make("cell", base={"seed": [1, 2]})

    def test_duplicate_cells_across_blocks_rejected(self):
        block = MatrixBlock.make("openloop", base={"seed": 42})
        with pytest.raises(SweepError, match="duplicate cell"):
            SweepSpec.make("dup", [block, block])

    def test_schema_version_enforced(self):
        with pytest.raises(SweepError, match="schema_version"):
            spec_from_dict({"schema_version": 99, "name": "x",
                            "blocks": [{"target": "openloop"}]})

    def test_unknown_keys_rejected(self):
        data = {"schema_version": 1, "name": "x", "blox": [],
                "blocks": [{"target": "openloop"}]}
        with pytest.raises(SweepError, match="unknown spec keys"):
            spec_from_dict(data)
        data = {"schema_version": 1, "name": "x",
                "blocks": [{"target": "openloop", "bases": {}}]}
        with pytest.raises(SweepError, match="unknown keys"):
            spec_from_dict(data)

    def test_bad_name_rejected(self):
        with pytest.raises(SweepError, match="slug"):
            SweepSpec.make("not a slug!", [MatrixBlock.make("openloop")])

    def test_load_spec_missing_file(self, tmp_path):
        with pytest.raises(SweepError, match="not found"):
            load_spec(tmp_path / "nope.json")

    def test_load_spec_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SweepError, match="not valid JSON"):
            load_spec(path)

    def test_load_round_trips_dict_form(self, tmp_path):
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(TINY_SPEC_DICT))
        assert load_spec(path).spec_hash == tiny_spec().spec_hash


class TestCheckedInSpec:
    def test_smoke_spec_parses_and_covers_every_target(self):
        from pathlib import Path

        from repro.experiments.sweep import TARGETS
        spec = load_spec(Path(__file__).resolve().parents[2]
                         / "specs" / "sweep_smoke.json")
        assert spec.name == "sweep-smoke"
        targets = {c.target for c in spec.cells()}
        assert targets == set(TARGETS)
