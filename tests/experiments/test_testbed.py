"""Tests for testbed construction and experiment execution (fast scales)."""

import pytest

from repro.content import ContentType
from repro.experiments import (ExperimentConfig, SCHEMES, build_deployment)
from repro.workload import WORKLOAD_A, WORKLOAD_B


def small(scheme, workload=WORKLOAD_A, **kw):
    defaults = dict(n_objects=600, duration=3.0, warmup=1.0,
                    n_client_machines=6)
    defaults.update(kw)
    return ExperimentConfig(scheme=scheme, workload=workload, **defaults)


class TestConfigValidation:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scheme="magic", workload=WORKLOAD_A)

    def test_warmup_before_duration(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scheme="partition-ca", workload=WORKLOAD_A,
                             warmup=5.0, duration=5.0)


class TestBuildDeployment:
    def test_nine_backends_always(self):
        for scheme in SCHEMES:
            dep = build_deployment(small(scheme))
            assert len(dep.servers) == 9

    def test_replication_places_everything_everywhere(self):
        dep = build_deployment(small("replication-l4"))
        for server in dep.servers.values():
            assert len(server.store) == len(dep.catalog)

    def test_nfs_exports_everything_stores_empty(self):
        dep = build_deployment(small("nfs-l4"))
        assert dep.nfs is not None
        assert len(dep.nfs.store) == len(dep.catalog)
        for server in dep.servers.values():
            assert len(server.store) == 0

    def test_partition_splits_content(self):
        dep = build_deployment(small("partition-ca"))
        assert dep.nfs is None
        copies = sum(len(s.store) for s in dep.servers.values())
        assert len(dep.catalog) <= copies < 2 * len(dep.catalog)

    def test_url_table_covers_catalog(self):
        for scheme in SCHEMES:
            dep = build_deployment(small(scheme))
            assert len(dep.url_table) == len(dep.catalog)
            assert len(dep.doctree.files()) == len(dep.catalog)

    def test_prewarm_fills_caches(self):
        dep = build_deployment(small("partition-ca"))
        warmed = [s for s in dep.servers.values() if s.cache.used_bytes > 0]
        assert len(warmed) == 9

    def test_prewarm_disabled(self):
        dep = build_deployment(small("partition-ca", prewarm=False))
        assert all(s.cache.used_bytes == 0 for s in dep.servers.values())

    def test_nfs_scheme_prewarms_only_file_server(self):
        dep = build_deployment(small("nfs-l4"))
        assert dep.nfs.cache.used_bytes > 0
        assert all(s.cache.used_bytes == 0 for s in dep.servers.values())

    def test_same_seed_same_catalog(self):
        a = build_deployment(small("partition-ca", seed=7))
        b = build_deployment(small("partition-ca", seed=7))
        assert a.catalog.paths() == b.catalog.paths()


class TestDeploymentRun:
    def test_run_produces_summary(self):
        dep = build_deployment(small("partition-ca"))
        result = dep.run(10)
        assert result["throughput_rps"] > 0
        assert result["scheme"] == "partition-ca"
        assert result["workload"] == "A"
        assert 0.0 <= result["mean_cache_hit_rate"] <= 1.0
        assert result["errors"] == 0

    def test_run_nfs_reports_file_server_stats(self):
        dep = build_deployment(small("nfs-l4"))
        result = dep.run(10)
        assert result["nfs_rpcs"] > 0
        assert 0.0 <= result["nfs_disk_utilization"] <= 1.0

    def test_workload_b_serves_dynamic(self):
        dep = build_deployment(small("partition-ca", workload=WORKLOAD_B))
        result = dep.run(10)
        assert result["by_class"].get("cgi", 0) > 0
        assert result["by_class"].get("asp", 0) > 0

    def test_deterministic_runs(self):
        r1 = build_deployment(small("replication-l4", seed=3)).run(8)
        r2 = build_deployment(small("replication-l4", seed=3)).run(8)
        assert r1["throughput_rps"] == r2["throughput_rps"]
        assert r1["completed"] == r2["completed"]

    def test_more_clients_more_throughput_until_saturation(self):
        lo = build_deployment(small("partition-ca")).run(2)
        hi = build_deployment(small("partition-ca")).run(20)
        assert hi["throughput_rps"] > lo["throughput_rps"]
