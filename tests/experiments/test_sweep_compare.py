"""``repro sweep --compare``: per-cell deltas between merged reports,
regression classification, and the recover target's fleet determinism."""

import copy
import json

import pytest

from repro.experiments.sweep import (SweepEngine, compare_reports,
                                     merge_sweep, render_compare,
                                     spec_from_dict, write_report)

pytestmark = pytest.mark.sweep


def fake_report(cells):
    return {"spec_hash": "a" * 64, "cells": cells}


def fake_cell(target="recover", params=None, completed=10, errors=0,
              survived=None, sha="0" * 64):
    result = {"completed": completed, "errors": errors}
    if survived is not None:
        result["survived"] = survived
    return {"run_id": "r", "target": target, "params": params or {},
            "result": result, "result_sha256": sha}


class TestCompareReports:
    def test_identical_reports_have_no_regressions(self):
        report = fake_report({"c1": fake_cell(survived=True)})
        comparison = compare_reports(report, copy.deepcopy(report))
        assert not comparison["regressed"]
        assert comparison["regressions"] == []
        cell = comparison["cells"]["c1"]
        assert cell["deltas"] == {"completed": 0, "errors": 0}
        assert not cell["changed"]

    def test_survival_flip_is_a_regression(self):
        prior = fake_report({"c1": fake_cell(survived=True)})
        current = fake_report({"c1": fake_cell(survived=False,
                                               sha="1" * 64)})
        comparison = compare_reports(current, prior)
        assert comparison["regressed"]
        assert comparison["regressions"] == [
            {"cell": "c1", "reasons": ["survived true -> false"]}]

    def test_error_rise_and_completed_drop_are_regressions(self):
        prior = fake_report({"c1": fake_cell(completed=10, errors=0)})
        current = fake_report({"c1": fake_cell(completed=8, errors=2,
                                               sha="1" * 64)})
        comparison = compare_reports(current, prior)
        assert comparison["regressions"] == [
            {"cell": "c1", "reasons": ["errors +2", "completed -2"]}]

    def test_improvement_is_not_a_regression(self):
        prior = fake_report({"c1": fake_cell(completed=8, errors=2,
                                             survived=False)})
        current = fake_report({"c1": fake_cell(completed=10, errors=0,
                                               survived=True,
                                               sha="1" * 64)})
        comparison = compare_reports(current, prior)
        assert not comparison["regressed"]
        assert comparison["cells"]["c1"]["changed"]

    def test_added_and_removed_cells_are_listed_not_regressions(self):
        prior = fake_report({"c1": fake_cell(), "gone": fake_cell()})
        current = fake_report({"c1": fake_cell(), "new": fake_cell()})
        comparison = compare_reports(current, prior)
        assert comparison["added"] == ["new"]
        assert comparison["removed"] == ["gone"]
        assert not comparison["regressed"]

    def test_axes_breakdown_localises_the_regression(self):
        prior = fake_report({
            "c1": fake_cell(params={"seed": 1}, completed=5),
            "c2": fake_cell(params={"seed": 2}, completed=5)})
        current = fake_report({
            "c1": fake_cell(params={"seed": 1}, completed=5),
            "c2": fake_cell(params={"seed": 2}, completed=3,
                            sha="1" * 64)})
        comparison = compare_reports(current, prior)
        assert comparison["axes"]["seed"]["1"]["regressed"] == 0
        assert comparison["axes"]["seed"]["2"]["regressed"] == 1
        assert comparison["axes"]["seed"]["2"]["completed"] == -2
        assert comparison["by_target"]["recover"]["regressed"] == 1

    def test_render_names_the_verdict(self):
        report = fake_report({"c1": fake_cell(survived=True)})
        clean = compare_reports(report, copy.deepcopy(report))
        assert "no regressions" in render_compare(clean)
        bad = compare_reports(
            fake_report({"c1": fake_cell(survived=False, sha="1" * 64)}),
            report)
        assert "REGRESSED" in render_compare(bad)


RECOVER_SPEC = {
    "schema_version": 1,
    "name": "recover-mini",
    "blocks": [
        {
            "target": "recover",
            "base": {"n_objects": 60, "limit": 4},
            "axes": {"seed": [1], "offset": [0, 28]},
        },
    ],
}


class TestRecoverSweepTarget:
    @pytest.mark.recovery
    def test_recover_cells_survive_and_merge_deterministically(
            self, tmp_path):
        spec = spec_from_dict(copy.deepcopy(RECOVER_SPEC))
        SweepEngine(spec, tmp_path / "w1", workers=1).run()
        one = write_report(spec, tmp_path / "w1").read_bytes()
        SweepEngine(spec, tmp_path / "w2", workers=2).run()
        two = write_report(spec, tmp_path / "w2").read_bytes()
        assert one == two
        report = merge_sweep(spec, tmp_path / "w1")
        assert len(report["cells"]) == 2
        for cell in report["cells"].values():
            assert cell["result"]["survived"]
            assert cell["result"]["errors"] == 0
            assert cell["result"]["completed"] == 4

    @pytest.mark.recovery
    def test_self_compare_of_a_real_recover_sweep_is_clean(self, tmp_path):
        spec = spec_from_dict(copy.deepcopy(RECOVER_SPEC))
        SweepEngine(spec, tmp_path / "run", workers=1).run()
        path = write_report(spec, tmp_path / "run")
        report = json.loads(path.read_text())
        comparison = compare_reports(report, copy.deepcopy(report))
        assert not comparison["regressed"]
        assert all(not cell["changed"]
                   for cell in comparison["cells"].values())
