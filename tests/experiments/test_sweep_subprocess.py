"""Subprocess determinism: a full ``repro sweep`` -- CLI entry point,
worker pool, artifacts, and merged report -- is byte-identical across
``PYTHONHASHSEED`` values, mirroring the fast-path contract in
``test_fast_path_equivalence.py`` at sweep scale.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from .sweep_specs import TINY_SPEC_DICT

pytestmark = pytest.mark.sweep

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _run_sweep_cli(tmp_path, tag: str, hash_seed: str,
                   workers: int = 2) -> tuple[bytes, dict[str, bytes]]:
    spec_path = tmp_path / "tiny.json"
    if not spec_path.exists():
        spec_path.write_text(json.dumps(TINY_SPEC_DICT))
    out = tmp_path / tag
    env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "sweep", "--spec", str(spec_path),
         "--out", str(out), "--workers", str(workers)],
        capture_output=True, text=True, env=env, timeout=600)
    assert proc.returncode == 0, proc.stderr
    sweeps = list(out.iterdir())
    assert len(sweeps) == 1
    report = (sweeps[0] / "report.json").read_bytes()
    artifacts = {p.name: p.read_bytes()
                 for p in sorted((sweeps[0] / "runs").glob("*.json"))}
    return report, artifacts


class TestHashSeedIndependence:
    def test_sweep_identical_across_hash_seeds(self, tmp_path):
        report_h0, artifacts_h0 = _run_sweep_cli(tmp_path, "h0", "0")
        report_h1, artifacts_h1 = _run_sweep_cli(tmp_path, "h1", "1")
        assert report_h0 == report_h1
        assert artifacts_h0 == artifacts_h1

    def test_cli_parallel_matches_cli_serial(self, tmp_path):
        parallel, _ = _run_sweep_cli(tmp_path, "w2", "0", workers=2)
        serial, _ = _run_sweep_cli(tmp_path, "w1", "0", workers=1)
        assert parallel == serial
