"""Bench harness: per-stage kernel-stats probe, RSS/heap recording, and
profile attribution (DESIGN §15).

The wall-clock speedups themselves are excluded from tier-1 (host
noise); what is pinned here is the *shape* of the payload and the
probe's zero-perturbation digest check at a tiny scale.
"""

import cProfile

import pytest

from repro.experiments.bench import (SCALES, run_openloop_splice, run_stage)
from repro.obs import KernelStats, attribute_profile

pytestmark = pytest.mark.telemetry

#: A below-"quick" scale so the three runs per stage stay in tier-1
#: budget.
TINY = dict(SCALES["quick"], rate=100.0, openloop_duration=0.4,
            fig_clients=4, fig_duration=1.0, fig_warmup=0.5,
            ovl_duration=2.0, ovl_clients=4, ovl_objects=120,
            ovl_settle=1.0)


class TestStageEntry:
    @pytest.fixture(scope="class")
    def entry(self):
        return run_stage("fig2_workload_a", TINY, seed=42)

    def test_probe_run_keeps_identical_true(self, entry):
        assert entry["identical"] is True

    def test_stage_records_rss_and_heap_high_water(self, entry):
        assert entry["peak_rss_kb"] > 0
        assert entry["heap_high_water"] >= 1
        assert entry["heap_high_water"] == \
            entry["kernel_stats"]["heap_high_water"]

    def test_stage_attributes_event_classes_and_callsites(self, entry):
        stats = entry["kernel_stats"]
        classes = dict(stats["event_classes"])
        assert classes, "probe run must attribute event classes"
        assert stats["callsites"], "probe run must attribute callsites"
        top_site = stats["callsites"][0][0]
        assert ":" in top_site

    def test_fast_path_layer_counters_present(self, entry):
        # the request-level fast path is the grant/pooled-timeout path
        assert "cpu" in entry["kernel_stats"]["fast_path"]


class TestOpenloopProbe:
    def test_kernel_stats_probe_does_not_change_digest(self):
        plain = run_openloop_splice(rate=100.0, duration=0.4,
                                    fast_path=True)
        probed = run_openloop_splice(rate=100.0, duration=0.4,
                                     fast_path=True,
                                     kernel_stats=KernelStats(
                                         callsites=True))
        assert probed["digest"] == plain["digest"]
        assert probed["events"] == plain["events"]


class TestProfileAttribution:
    def test_bench_profile_section_shape(self):
        profiler = cProfile.Profile()
        profiler.enable()
        run_openloop_splice(rate=100.0, duration=0.3, fast_path=True)
        profiler.disable()
        out = attribute_profile(profiler)
        assert set(out) == {"total_s", "subsystems", "top_functions"}
        for bucket in out["subsystems"].values():
            assert set(bucket) == {"calls", "tottime_s", "share"}
