"""Tests for the generic sweep runner and CSV export."""

import csv

import pytest

from repro.experiments import grid, sweep_clients, write_csv
from repro.workload import WORKLOAD_A, WORKLOAD_B

FAST = dict(n_objects=300, duration=2.5, warmup=0.5, n_client_machines=4)


class TestSweepClients:
    def test_one_row_per_point(self):
        result = sweep_clients("partition-ca", WORKLOAD_A, (4, 8), **FAST)
        assert len(result.rows) == 2
        assert [r["n_clients"] for r in result.rows] == [4, 8]
        assert all(r["scheme"] == "partition-ca" for r in result.rows)

    def test_series_extraction(self):
        result = sweep_clients("partition-ca", WORKLOAD_A, (4, 8), **FAST)
        series = result.series()
        assert len(series) == 2
        assert all(v > 0 for v in series)

    def test_class_columns_present_for_workload_b(self):
        result = sweep_clients("partition-ca", WORKLOAD_B, (6,), **FAST)
        cols = result.columns()
        assert "class_cgi_rps" in cols
        assert "class_html_rps" in cols


class TestGrid:
    def test_cross_product(self):
        result = grid(("replication-l4", "partition-ca"),
                      (WORKLOAD_A,), (4, 8), **FAST)
        assert len(result.rows) == 4
        schemes = {r["scheme"] for r in result.rows}
        assert schemes == {"replication-l4", "partition-ca"}


class TestCsvExport:
    def test_csv_roundtrip(self, tmp_path):
        result = sweep_clients("partition-ca", WORKLOAD_A, (4, 8), **FAST)
        path = tmp_path / "sweep.csv"
        write_csv(result, path)
        with open(path) as f:
            rows = list(csv.reader(f))
        assert rows[0][:4] == ["scheme", "workload", "n_clients",
                               "throughput_rps"]
        assert len(rows) == 3  # header + 2 points
        assert rows[1][0] == "partition-ca"
        assert float(rows[1][3]) > 0

    def test_missing_class_cells_blank(self, tmp_path):
        result = grid(("partition-ca",), (WORKLOAD_A,), (4,), **FAST)
        path = tmp_path / "g.csv"
        write_csv(result, path)
        with open(path) as f:
            header = next(csv.reader(f))
        assert "class_cgi_rps" not in header  # A has no dynamic traffic
