"""Golden sweep report: the checked-in ``specs/sweep_smoke.json`` matrix
must merge to exactly the committed fixture, byte for byte.

The sweep is seeded and deterministic, so this is an equality check, not
a tolerance band.  If a change legitimately moves the numbers, regenerate
the fixture and review the diff like any other behavioural change:

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \\
        tests/experiments/test_sweep_golden.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.golden import diff_metrics
from repro.experiments.sweep import (SweepEngine, canonical_json, load_spec,
                                     merge_sweep)

pytestmark = pytest.mark.sweep

REPO = Path(__file__).resolve().parents[2]
SPEC = REPO / "specs" / "sweep_smoke.json"
FIXTURE = REPO / "tests" / "fixtures" / "sweep_smoke_report.json"


def test_smoke_sweep_matches_golden_report(tmp_path):
    spec = load_spec(SPEC)
    SweepEngine(spec, tmp_path, workers=2).run()
    report = merge_sweep(spec, tmp_path)
    actual = canonical_json(report)
    if os.environ.get("REPRO_UPDATE_GOLDEN") == "1":
        FIXTURE.parent.mkdir(parents=True, exist_ok=True)
        FIXTURE.write_text(actual, encoding="utf-8")
        return
    assert FIXTURE.exists(), (
        f"{FIXTURE} missing; regenerate with REPRO_UPDATE_GOLDEN=1")
    expected_bytes = FIXTURE.read_text(encoding="utf-8")
    if actual != expected_bytes:
        drift = diff_metrics(json.loads(expected_bytes), report)
        raise AssertionError(
            "sweep smoke report drifted (REPRO_UPDATE_GOLDEN=1 regenerates "
            "after review):\n  " + "\n  ".join(drift or
                                               ["<byte-level difference>"]))
