"""SLO surfacing through the sweep plane.

Cells that opt into telemetry carry ``slo``/``slo_ok``/``telemetry``
keys in their artifacts and the merged report grows an ``slo``
aggregate; cells that don't are byte-identical to before the telemetry
plane existed (``test_sweep_golden.py`` pins that side).
"""

import pytest

from repro.experiments.sweep.merge import _aggregates
from repro.experiments.sweep.targets import run_target

pytestmark = pytest.mark.telemetry

_OVL = {"seed": 11, "duration": 2.0, "clients": 4, "n_objects": 120,
        "settle": 1.0}


class TestTargets:
    def test_overload_without_telemetry_has_no_slo_keys(self):
        result = run_target("overload", dict(_OVL))
        assert "slo" not in result
        assert "telemetry" not in result

    def test_overload_with_telemetry_carries_slo(self):
        result = run_target("overload", dict(_OVL, telemetry=0.5))
        assert result["slo"], "telemetry cells must evaluate SLOs"
        names = {v["name"] for v in result["slo"]}
        assert "served_p99" in names
        assert isinstance(result["slo_ok"], bool)
        assert result["telemetry"]["windows"] >= 2

    def test_telemetry_leaves_survival_counters_unchanged(self):
        plain = run_target("overload", dict(_OVL))
        sampled = run_target("overload", dict(_OVL, telemetry=0.5))
        for key in ("completed", "errors", "shed", "survived"):
            assert sampled[key] == plain[key]
        # the rendered report differs only by the additive SLO lines
        stripped = [line for line in sampled["report"].splitlines()
                    if not line.lstrip().startswith("slo [")]
        assert stripped == plain["report"].splitlines()

    def test_chaos_with_telemetry_flattens_episode_slos(self):
        result = run_target("chaos", {
            "seed": 1, "episodes": 2, "duration": 2.0, "clients": 4,
            "n_objects": 120, "settle": 1.0, "telemetry": 0.5})
        # two episodes x two chaos SLOs, in episode order
        assert len(result["slo"]) == 4
        assert len(result["telemetry"]) == 2


class TestMergeAggregates:
    @staticmethod
    def _cell(cell_id, result):
        return {cell_id: {"run_id": cell_id, "target": "overload",
                          "params": {}, "result": result,
                          "result_sha256": "0" * 64}}

    def test_no_slo_section_without_telemetry_cells(self):
        cells = self._cell("a", {"completed": 1, "errors": 0,
                                 "survived": True})
        assert "slo" not in _aggregates(cells)

    def test_slo_section_counts_checks(self):
        cells = {}
        cells.update(self._cell("a", {
            "completed": 1, "errors": 0, "survived": True,
            "slo": [{"ok": True}, {"ok": True}], "slo_ok": True}))
        cells.update(self._cell("b", {
            "completed": 1, "errors": 0, "survived": True,
            "slo": [{"ok": True}, {"ok": False}], "slo_ok": False}))
        agg = _aggregates(cells)["slo"]
        assert agg == {"cells": 2, "checks": 4, "passed": 3,
                       "all_ok": False}
