"""Shared sweep specs for the tests/experiments/test_sweep*.py battery.

``TINY_SPEC_DICT`` is the small matrix every determinism/resume/
subprocess test reuses: two packet-level openloop cells (fast path
off/on) and two request-level experiment cells (two seeds) -- four runs,
a couple of seconds serial, touching both the packet stack and the full
testbed.
"""

import copy

from repro.experiments.sweep import spec_from_dict

TINY_SPEC_DICT = {
    "schema_version": 1,
    "name": "tiny",
    "blocks": [
        {
            "target": "openloop",
            "base": {"rate": 150.0, "duration": 0.4, "seed": 42},
            "axes": {"fast_path": [False, True]},
        },
        {
            "target": "cell",
            "base": {"scheme": "partition-ca", "workload": "A",
                     "duration": 1.5, "warmup": 0.5, "n_objects": 120,
                     "n_client_machines": 4, "clients": 4},
            "axes": {"seed": [1234, 1235]},
        },
    ],
}


def tiny_spec():
    return spec_from_dict(copy.deepcopy(TINY_SPEC_DICT))
