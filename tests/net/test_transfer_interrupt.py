"""Regression test for the LEAK001 finding in Lan.transfer.

The slow path acquires the sender's TX channel, then waits -- possibly
queued -- for the receiver's RX channel.  A transfer torn down during
that wait (client RST, chaos interrupt) must not keep holding TX and
head-of-line-block unrelated traffic.
"""

from repro.net import Lan, Nic
from repro.sim import Simulator


def test_tx_released_when_interrupted_waiting_for_rx():
    sim = Simulator()
    lan = Lan(sim)
    src = Nic(sim, 100, name="src")
    dst = Nic(sim, 100, name="dst")
    # receiver busy: the transfer takes the slow path and queues for RX
    hold = dst.rx.try_acquire()
    assert hold is not None
    proc = sim.process(lan.transfer(src, dst, 8192))

    def killer():
        yield sim.timeout(0.01)
        proc.interrupt("client gone")

    sim.process(killer())
    sim.run()
    assert src.tx.can_acquire  # TX lease returned on the interrupt path


def test_normal_transfer_still_pairs_both_channels():
    sim = Simulator()
    lan = Lan(sim)
    src = Nic(sim, 100, name="src")
    dst = Nic(sim, 100, name="dst")
    sim.process(lan.transfer(src, dst, 8192))
    sim.run()
    assert src.tx.can_acquire and dst.rx.can_acquire
    assert lan.total_transfers == 1
