"""Tests for the HTTP message model."""

import pytest

from repro.net import (HttpMethod, HttpRequest, HttpResponse, HttpVersion,
                       parent_dirs, split_path)
from repro.net.http import REQUEST_HEADER_BYTES, RESPONSE_HEADER_BYTES


class TestSplitPath:
    def test_simple(self):
        assert split_path("/a/b/c.html") == ("a", "b", "c.html")

    def test_root(self):
        assert split_path("/") == ()

    def test_query_string_stripped(self):
        assert split_path("/cgi-bin/search.cgi?q=x&y=2") == (
            "cgi-bin", "search.cgi")

    def test_fragment_stripped(self):
        assert split_path("/doc.html#sec2") == ("doc.html",)

    def test_relative_rejected(self):
        with pytest.raises(ValueError):
            split_path("doc.html")

    def test_double_slashes_collapsed(self):
        assert split_path("//a//b/") == ("a", "b")


class TestParentDirs:
    def test_nested(self):
        assert parent_dirs("/a/b/c.html") == ["/", "/a", "/a/b"]

    def test_top_level_file(self):
        assert parent_dirs("/index.html") == ["/"]


class TestHttpRequest:
    def test_defaults(self):
        r = HttpRequest("/index.html")
        assert r.method is HttpMethod.GET
        assert r.version is HttpVersion.HTTP_1_1
        assert r.persistent is True

    def test_http10_not_persistent_by_default(self):
        r = HttpRequest("/x.html", version=HttpVersion.HTTP_1_0)
        assert r.persistent is False

    def test_explicit_keep_alive_overrides_version(self):
        r = HttpRequest("/x.html", version=HttpVersion.HTTP_1_0,
                        keep_alive=True)
        assert r.persistent is True
        r = HttpRequest("/x.html", version=HttpVersion.HTTP_1_1,
                        keep_alive=False)
        assert r.persistent is False

    def test_malformed_url_rejected_at_creation(self):
        with pytest.raises(ValueError):
            HttpRequest("no-leading-slash")

    def test_request_ids_unique(self):
        a, b = HttpRequest("/a"), HttpRequest("/b")
        assert a.request_id != b.request_id

    def test_path_segments(self):
        assert HttpRequest("/d/e.gif").path_segments == ("d", "e.gif")

    def test_wire_bytes(self):
        r = HttpRequest("/p", method=HttpMethod.POST, body_bytes=500)
        assert r.wire_bytes == REQUEST_HEADER_BYTES + 500


class TestHttpResponse:
    def test_ok_range(self):
        req = HttpRequest("/a")
        assert HttpResponse(req, status=200).ok
        assert HttpResponse(req, status=204).ok
        assert not HttpResponse(req, status=404).ok
        assert not HttpResponse(req, status=500).ok

    def test_wire_bytes(self):
        req = HttpRequest("/a")
        resp = HttpResponse(req, content_length=1000)
        assert resp.wire_bytes == RESPONSE_HEADER_BYTES + 1000
