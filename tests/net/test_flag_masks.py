"""De-enum regression: plain-int flag masks must match the TcpFlags enum.

The packet/TCP/splicer hot paths use precomputed plain-int flag words
(``repro.net.packet.SYN_FLAG`` etc.) because ``IntFlag.__and__``/``__or__``
are Python-level calls that dominated profiles.  These tests pin the
contract of that change:

* every exported mask is the exact value of its enum member;
* flag properties and ``seq_space`` agree with an enum-reference
  evaluation across all 32 possible flag words, whether ``Segment.flags``
  holds a plain int or a ``TcpFlags`` value;
* the segment log of a full TCP exchange is byte-identical to the log the
  enum emit sites produced (flags compared against enum-built words).
"""

import pytest

from repro.net import Address, Host, Network
from repro.net.packet import (ACK_FLAG, FIN_FLAG, PSH_FLAG, RST_FLAG,
                              SYN_FLAG, Segment, TcpFlags)
from repro.sim import Simulator

_BITS = [(SYN_FLAG, TcpFlags.SYN), (ACK_FLAG, TcpFlags.ACK),
         (FIN_FLAG, TcpFlags.FIN), (RST_FLAG, TcpFlags.RST),
         (PSH_FLAG, TcpFlags.PSH)]


class TestMaskValues:
    def test_masks_equal_enum_members(self):
        for mask, member in _BITS:
            assert mask == member
            assert mask == int(member)

    def test_masks_are_plain_ints(self):
        # The whole point: C-speed int arithmetic, not IntFlag dispatch.
        for mask, _ in _BITS:
            assert type(mask) is int

    def test_masks_cover_distinct_bits(self):
        seen = 0
        for mask, _ in _BITS:
            assert mask and not (seen & mask)
            seen |= mask


def _segment(flags, payload_len=0):
    return Segment(src=Address("10.0.0.2", 1234),
                   dst=Address("10.0.0.1", 80),
                   seq=100, ack=200, flags=flags, payload_len=payload_len)


class TestPropertyEquivalence:
    # FIN=0x01 SYN=0x02 RST=0x04 PSH=0x08 ACK=0x10: range(32) enumerates
    # every combination of the five modelled flag bits.
    @pytest.mark.parametrize("word", range(32))
    def test_properties_match_enum_reference(self, word):
        ref = TcpFlags(word)
        for seg in (_segment(word), _segment(ref)):
            assert seg.is_syn == bool(ref & TcpFlags.SYN)
            assert seg.is_ack == bool(ref & TcpFlags.ACK)
            assert seg.is_fin == bool(ref & TcpFlags.FIN)
            assert seg.is_rst == bool(ref & TcpFlags.RST)

    @pytest.mark.parametrize("word", range(32))
    def test_seq_space_matches_enum_reference(self, word):
        ref = TcpFlags(word)
        expected = 7
        if TcpFlags.SYN & ref:
            expected += 1
        if TcpFlags.FIN & ref:
            expected += 1
        assert _segment(word, payload_len=7).seq_space() == expected
        assert _segment(ref, payload_len=7).seq_space() == expected

    @pytest.mark.parametrize("word", range(32))
    def test_int_and_enum_segments_compare_equal(self, word):
        # TcpFlags is an int, so a segment built from the enum must be
        # indistinguishable from one built from the plain word.
        assert _segment(word) == _segment(TcpFlags(word))


class TestSegmentLogByteIdentical:
    """Run a full exchange and pin the emitted flag words.

    The expected values are built from the *enum* -- exactly what the
    emit sites produced before they switched to precomputed ints.  If a
    de-enum'd emit site ever drifts (wrong combination, wrong bit), the
    wire log changes and this test fails.
    """

    def _exchange_log(self):
        sim = Simulator()
        net = Network(sim)
        log = []
        inner_send = net.send

        def recording_send(segment):
            log.append((segment.src.port, segment.dst.port, segment.flags,
                        segment.payload_len))
            inner_send(segment)

        net.send = recording_send
        client_host = Host(net, "10.0.0.2")
        server_host = Host(net, "10.0.0.1")
        accepted = []
        server_host.listen(80, accepted.append)
        sock = client_host.socket(port=5555)

        def client():
            yield sock.connect(Address("10.0.0.1", 80))
            sock.send("req", 40)
            yield sock.inbox.get()
            yield sock.close()

        def server():
            while not accepted:
                yield sim.timeout(1e-4)
            peer = accepted[0]
            yield peer.inbox.get()
            peer.send("resp", 90)
            yield peer.close()

        sim.process(client())
        sim.process(server())
        sim.run(until=5.0)
        return log

    def test_segment_log_matches_enum_reference(self):
        log = self._exchange_log()
        syn = TcpFlags.SYN
        syn_ack = TcpFlags.SYN | TcpFlags.ACK
        ack = TcpFlags.ACK
        ack_psh = TcpFlags.ACK | TcpFlags.PSH
        fin_ack = TcpFlags.FIN | TcpFlags.ACK
        expected = [
            (5555, 80, syn, 0),        # client SYN
            (80, 5555, syn_ack, 0),    # server SYN-ACK
            (5555, 80, ack, 0),        # handshake ACK
            (5555, 80, ack_psh, 40),   # request
            (80, 5555, ack, 0),        # server ACKs request
            (80, 5555, ack_psh, 90),   # response
            (80, 5555, fin_ack, 0),    # server FIN (close right after send)
            (5555, 80, ack, 0),        # client ACKs response
            (5555, 80, ack, 0),        # client ACKs FIN
            (5555, 80, fin_ack, 0),    # client FIN
            (80, 5555, ack, 0),        # server ACKs FIN
        ]
        assert [(s, d, int(f), n) for s, d, f, n in expected] == log
        # byte-identical including the flag word's *type*: the wire value
        # is the int, and enum-typed words compare equal to it
        for (_, _, got, _), (_, _, want, _) in zip(log, expected):
            assert got == want
