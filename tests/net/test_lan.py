"""Tests for the NIC/LAN bandwidth model."""

import pytest

from repro.net import Lan, Nic
from repro.net.lan import WIRE_OVERHEAD
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestNic:
    def test_rate_validation(self, sim):
        with pytest.raises(ValueError):
            Nic(sim, mbps=0)

    def test_serialization_time(self, sim):
        nic = Nic(sim, mbps=100.0)
        # 100 Mbps = 12.5 MB/s; 12500 bytes ~ 1 ms (plus framing overhead)
        assert nic.serialization_time(12500) == pytest.approx(
            1e-3 * WIRE_OVERHEAD)

    def test_byte_rate(self, sim):
        assert Nic(sim, mbps=8).bytes_per_second == 1e6


class TestLanTransfer:
    def test_transfer_duration(self, sim):
        lan = Lan(sim, latency=0.0)
        a, b = Nic(sim, 100), Nic(sim, 100)
        done = []

        def go():
            yield from lan.transfer(a, b, 125000)
            done.append(sim.now)

        sim.process(go())
        sim.run()
        assert done[0] == pytest.approx(0.01 * WIRE_OVERHEAD)

    def test_bottleneck_is_slower_nic(self, sim):
        lan = Lan(sim, latency=0.0)
        fast, slow = Nic(sim, 1000), Nic(sim, 10)
        assert lan.transfer_time(fast, slow, 1000) == pytest.approx(
            lan.transfer_time(slow, fast, 1000))
        assert lan.transfer_time(fast, slow, 1250) == pytest.approx(
            1250 * WIRE_OVERHEAD / (10e6 / 8))

    def test_transfers_serialize_on_shared_sender(self, sim):
        lan = Lan(sim, latency=0.0)
        src = Nic(sim, 100)
        d1, d2 = Nic(sim, 100), Nic(sim, 100)
        done = []

        def go(dst, name):
            yield from lan.transfer(src, dst, 125000)  # 10 ms each
            done.append((name, sim.now))

        sim.process(go(d1, "first"))
        sim.process(go(d2, "second"))
        sim.run()
        assert done[0][0] == "first"
        assert done[1][1] == pytest.approx(2 * 0.01 * WIRE_OVERHEAD)

    def test_transfers_to_distinct_hosts_share_nothing(self, sim):
        lan = Lan(sim, latency=0.0)
        s1, s2 = Nic(sim, 100), Nic(sim, 100)
        d1, d2 = Nic(sim, 100), Nic(sim, 100)
        done = []

        def go(src, dst):
            yield from lan.transfer(src, dst, 125000)
            done.append(sim.now)

        sim.process(go(s1, d1))
        sim.process(go(s2, d2))
        sim.run()
        assert done[0] == done[1] == pytest.approx(0.01 * WIRE_OVERHEAD)

    def test_opposite_direction_transfers_do_not_deadlock(self, sim):
        lan = Lan(sim, latency=0.0)
        a, b = Nic(sim, 100), Nic(sim, 100)
        done = []

        def go(src, dst):
            yield from lan.transfer(src, dst, 1250000)
            done.append(sim.now)

        sim.process(go(a, b))
        sim.process(go(b, a))
        sim.run()
        assert len(done) == 2  # both completed: full duplex, no deadlock

    def test_latency_added(self, sim):
        lan = Lan(sim, latency=5e-3)
        a, b = Nic(sim, 100), Nic(sim, 100)
        done = []

        def go():
            yield from lan.transfer(a, b, 0)
            done.append(sim.now)

        sim.process(go())
        sim.run()
        assert done[0] == pytest.approx(5e-3)

    def test_negative_bytes_rejected(self, sim):
        lan = Lan(sim)
        a, b = Nic(sim, 100), Nic(sim, 100)

        def go():
            yield from lan.transfer(a, b, -1)

        sim.process(go())
        with pytest.raises(ValueError):
            sim.run()

    def test_accounting(self, sim):
        lan = Lan(sim, latency=0.0)
        a, b = Nic(sim, 100), Nic(sim, 100)

        def go():
            yield from lan.transfer(a, b, 1000)

        sim.process(go())
        sim.run()
        assert lan.total_transfers == 1
        assert lan.total_bytes == 1000
        assert a.bytes_sent == 1000
        assert b.bytes_received == 1000
