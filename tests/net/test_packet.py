"""Tests for the packet model and header rewriting."""

from repro.net import Address, Segment, TcpFlags, rewrite


def seg(**kw):
    defaults = dict(src=Address("10.0.0.2", 5000),
                    dst=Address("10.0.0.1", 80),
                    seq=100, ack=200, flags=TcpFlags.ACK)
    defaults.update(kw)
    return Segment(**defaults)


class TestSegment:
    def test_flag_properties(self):
        s = seg(flags=TcpFlags.SYN)
        assert s.is_syn and not s.is_ack and not s.is_fin and not s.is_rst
        s = seg(flags=TcpFlags.FIN | TcpFlags.ACK)
        assert s.is_fin and s.is_ack
        assert seg(flags=TcpFlags.RST).is_rst

    def test_seq_space_plain_data(self):
        assert seg(payload_len=100).seq_space() == 100

    def test_seq_space_syn_and_fin_consume_one(self):
        assert seg(flags=TcpFlags.SYN).seq_space() == 1
        assert seg(flags=TcpFlags.FIN | TcpFlags.ACK).seq_space() == 1
        assert seg(flags=TcpFlags.SYN | TcpFlags.FIN,
                   payload_len=10).seq_space() == 12

    def test_flow_id(self):
        s = seg()
        assert s.flow_id() == (Address("10.0.0.2", 5000),
                               Address("10.0.0.1", 80))

    def test_address_str(self):
        assert str(Address("1.2.3.4", 80)) == "1.2.3.4:80"


class TestRewrite:
    def test_rewrite_addresses(self):
        s = seg()
        r = rewrite(s, src=Address("10.0.0.1", 9000),
                    dst=Address("10.0.0.5", 80))
        assert r.src == Address("10.0.0.1", 9000)
        assert r.dst == Address("10.0.0.5", 80)
        assert r.seq == s.seq and r.ack == s.ack

    def test_rewrite_sequence_deltas(self):
        s = seg(seq=1000, ack=2000)
        r = rewrite(s, seq_delta=50, ack_delta=-30)
        assert r.seq == 1050
        assert r.ack == 1970

    def test_rewrite_preserves_payload_identity(self):
        payload = {"request": "GET /"}
        s = seg(payload=payload, payload_len=64)
        r = rewrite(s, seq_delta=1)
        assert r.payload is payload
        assert r.payload_len == 64

    def test_rewrite_does_not_mutate_original(self):
        s = seg(seq=7)
        rewrite(s, seq_delta=100, src=Address("9.9.9.9", 1))
        assert s.seq == 7
        assert s.src == Address("10.0.0.2", 5000)

    def test_rewrite_preserves_flags(self):
        s = seg(flags=TcpFlags.FIN | TcpFlags.ACK | TcpFlags.PSH)
        assert rewrite(s, seq_delta=1).flags == s.flags
