"""Tests for the simplified TCP implementation."""

import pytest

from repro.net import Address, Host, Network, ProtocolError, TcpState
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def net(sim):
    return Network(sim)


def make_pair(sim, net):
    """Client host + server host with a listener collecting accepts."""
    client = Host(net, "10.0.0.2")
    server = Host(net, "10.0.0.1")
    accepted = []
    server.listen(80, accepted.append)
    return client, server, accepted


class TestHandshake:
    def test_three_way_handshake_establishes_both_ends(self, sim, net):
        client, server, accepted = make_pair(sim, net)
        sock = client.socket()
        results = []

        def go():
            yield sock.connect(Address("10.0.0.1", 80))
            results.append(sock.state)

        sim.process(go())
        sim.run()
        assert results == [TcpState.ESTABLISHED]
        assert len(accepted) == 1
        assert accepted[0].state is TcpState.ESTABLISHED
        assert accepted[0].remote == sock.local

    def test_connect_to_dark_port_gets_rst(self, sim, net):
        client, server, _ = make_pair(sim, net)
        sock = client.socket()

        def go():
            yield sock.connect(Address("10.0.0.1", 81))

        sim.process(go())
        sim.run(until=1.0)
        assert sock.reset
        assert sock.state is TcpState.CLOSED

    def test_connect_twice_raises(self, sim, net):
        client, server, _ = make_pair(sim, net)
        sock = client.socket()
        sock.connect(Address("10.0.0.1", 80))
        with pytest.raises(ProtocolError):
            sock.connect(Address("10.0.0.1", 80))
        sim.run()

    def test_distinct_isns(self, sim, net):
        client, _, _ = make_pair(sim, net)
        a, b = client.socket(), client.socket()
        assert a.isn != b.isn


class TestDataTransfer:
    def test_payload_delivered_in_order(self, sim, net):
        client, server, accepted = make_pair(sim, net)
        sock = client.socket()
        got = []

        def client_proc():
            yield sock.connect(Address("10.0.0.1", 80))
            sock.send("hello", 5)
            sock.send("world", 5)

        def server_proc():
            while len(accepted) == 0:
                yield sim.timeout(1e-4)
            srv = accepted[0]
            for _ in range(2):
                payload, nbytes = yield srv.recv()
                got.append((payload, nbytes))

        sim.process(client_proc())
        sim.process(server_proc())
        sim.run()
        assert got == [("hello", 5), ("world", 5)]

    def test_sequence_numbers_advance_with_payload(self, sim, net):
        client, server, accepted = make_pair(sim, net)
        sock = client.socket()

        def go():
            yield sock.connect(Address("10.0.0.1", 80))
            start = sock.snd_nxt
            sock.send("x" , 100)
            assert sock.snd_nxt == start + 100

        sim.process(go())
        sim.run()

    def test_send_before_connect_raises(self, sim, net):
        client, _, _ = make_pair(sim, net)
        sock = client.socket()
        with pytest.raises(ProtocolError):
            sock.send("x", 1)

    def test_send_zero_bytes_rejected(self, sim, net):
        client, server, accepted = make_pair(sim, net)
        sock = client.socket()

        def go():
            yield sock.connect(Address("10.0.0.1", 80))
            with pytest.raises(ValueError):
                sock.send("x", 0)

        sim.process(go())
        sim.run()

    def test_bidirectional_transfer(self, sim, net):
        client, server, accepted = make_pair(sim, net)
        sock = client.socket()
        got = []

        def client_proc():
            yield sock.connect(Address("10.0.0.1", 80))
            sock.send("ping", 4)
            payload, _ = yield sock.recv()
            got.append(payload)

        def server_proc():
            while len(accepted) == 0:
                yield sim.timeout(1e-4)
            srv = accepted[0]
            payload, _ = yield srv.recv()
            got.append(payload)
            srv.send("pong", 4)

        sim.process(client_proc())
        sim.process(server_proc())
        sim.run()
        assert got == ["ping", "pong"]


class TestClose:
    def test_orderly_close_four_way(self, sim, net):
        client, server, accepted = make_pair(sim, net)
        sock = client.socket()

        def client_proc():
            yield sock.connect(Address("10.0.0.1", 80))
            yield sock.close()

        def server_proc():
            while len(accepted) == 0:
                yield sim.timeout(1e-4)
            srv = accepted[0]
            # wait until we see the client's FIN
            while srv.state is not TcpState.CLOSE_WAIT:
                yield sim.timeout(1e-4)
            yield srv.close()

        sim.process(client_proc())
        sim.process(server_proc())
        sim.run()
        assert sock.state is TcpState.CLOSED
        assert accepted[0].state is TcpState.CLOSED

    def test_close_closed_socket_is_noop(self, sim, net):
        client, _, _ = make_pair(sim, net)
        sock = client.socket()
        ev = sock.close()
        sim.run()
        assert ev.triggered

    def test_abort_sends_rst(self, sim, net):
        client, server, accepted = make_pair(sim, net)
        sock = client.socket()

        def go():
            yield sock.connect(Address("10.0.0.1", 80))
            sock.abort()

        sim.process(go())
        sim.run()
        assert sock.state is TcpState.CLOSED
        assert accepted[0].state is TcpState.CLOSED
        assert accepted[0].reset

    def test_half_close_peer_can_still_send(self, sim, net):
        client, server, accepted = make_pair(sim, net)
        sock = client.socket()
        got = []

        def client_proc():
            yield sock.connect(Address("10.0.0.1", 80))
            sock.close()  # half close: FIN_WAIT
            payload, _ = yield sock.recv()
            got.append(payload)

        def server_proc():
            while len(accepted) == 0:
                yield sim.timeout(1e-4)
            srv = accepted[0]
            while srv.state is not TcpState.CLOSE_WAIT:
                yield sim.timeout(1e-4)
            srv.send("late-data", 9)
            yield srv.close()

        sim.process(client_proc())
        sim.process(server_proc())
        sim.run()
        assert got == ["late-data"]
        assert sock.state is TcpState.CLOSED


class TestNetwork:
    def test_duplicate_ip_registration_rejected(self, sim, net):
        Host(net, "10.0.0.9")
        with pytest.raises(ValueError):
            Host(net, "10.0.0.9")

    def test_segment_counter(self, sim, net):
        client, server, _ = make_pair(sim, net)
        sock = client.socket()

        def go():
            yield sock.connect(Address("10.0.0.1", 80))

        sim.process(go())
        sim.run()
        assert net.segments_sent == 3  # SYN, SYN-ACK, ACK

    def test_latency_applied(self, sim, net):
        client, server, _ = make_pair(sim, net)
        sock = client.socket()
        done = []

        def go():
            yield sock.connect(Address("10.0.0.1", 80))
            done.append(sim.now)

        sim.process(go())
        sim.run()
        # handshake = 1.5 RTT = 3 one-way latencies... client sees 2
        assert done[0] == pytest.approx(2 * net.latency)
