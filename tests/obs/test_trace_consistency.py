"""Trace <-> metrics consistency.

The tracer and the MetricSet observe the same decisions through
independent channels: every shed/retry/breaker event increments a counter
*and* (when tracing is on) appends a point event.  These tests pin the two
views to each other -- a drift means one channel lies -- and pin the
zero-perturbation contract: tracing must not change a single counter.
"""

import pytest

from repro.experiments import ExperimentConfig, build_deployment
from repro.experiments.chaos import run_overload_episode
from repro.workload import WORKLOAD_A

pytestmark = pytest.mark.trace

#: Mirrors GOLDEN_OVERLOAD_SCALE so the episode exercised here is the
#: same one the golden fixture pins.
SCALE = {"seed": 11, "duration": 5.0, "clients": 10, "n_objects": 200,
         "settle": 2.0}


@pytest.fixture(scope="module")
def episode():
    return run_overload_episode(**SCALE, trace=True)


class TestOverloadCounters:
    def test_shed_points_match_counters(self, episode):
        tracer = episode.tracer
        assert len(tracer.find_events(kind="shed", name="shed")) == \
            episode.shed
        assert len(tracer.find_events(kind="shed", name="degraded")) == \
            episode.degraded
        assert episode.shed >= 1  # the flash crowd must overrun admission

    def test_retry_points_match_counter(self, episode):
        tracer = episode.tracer
        retries = tracer.find_events(kind="retry", name="replica-retry")
        assert len(retries) == episode.replica_retries

    def test_breaker_transitions_match_board(self, episode):
        tracer = episode.tracer
        transitions = tracer.find_events(kind="breaker")
        opened = [e for e in transitions if e.name.endswith("->open")]
        reclosed = [e for e in transitions
                    if e.name == "half-open->closed"]
        assert len(opened) == episode.breaker_opened
        assert len(reclosed) == episode.breaker_reclosed
        assert episode.breaker_opened >= 1  # the slow disk must trip one

    def test_decision_points_carry_machine_readable_reasons(self, episode):
        tracer = episode.tracer
        for kind in ("shed", "breaker"):
            events = tracer.find_events(kind=kind)
            assert events, f"no {kind} events in the overload episode"
            for event in events:
                assert event.attrs.get("reason"), \
                    f"{kind}/{event.name} missing reason"

    def test_request_spans_all_closed(self, episode):
        open_spans = [s for s in episode.tracer.spans if s.open]
        assert open_spans == []


class TestStatusCounters:
    def test_request_span_statuses_match_status_counters(self):
        exp = ExperimentConfig(scheme="partition-ca", workload=WORKLOAD_A,
                               seed=5, n_objects=150, duration=2.0,
                               warmup=0.5, n_client_machines=4, trace=True)
        deployment = build_deployment(exp)
        deployment.rig.start_clients(6)
        deployment.sim.run(until=2.0)
        deployment.rig.stop_clients()
        deployment.sim.run(until=2.5)

        from_spans: dict = {}
        for span in deployment.tracer.find_spans(kind="request"):
            if span.status and span.status.isdigit():
                from_spans[span.status] = from_spans.get(span.status, 0) + 1
        counters = deployment.frontend.metrics.snapshot()["counters"]
        from_counters = {name.split("/", 1)[1]: count
                        for name, count in counters.items()
                        if name.startswith("status/")}
        assert from_spans == from_counters
        assert from_spans.get("200", 0) > 0


class TestZeroPerturbation:
    def test_traced_run_matches_untraced_counters_exactly(self):
        kw = {"seed": 3, "duration": 2.5, "clients": 6, "n_objects": 100,
              "settle": 1.0}
        traced = run_overload_episode(**kw, trace=True)
        plain = run_overload_episode(**kw, trace=False)
        for field in ("completed", "errors", "error_statuses", "shed",
                      "degraded", "timeouts", "replica_retries",
                      "budget_denied", "admission_peak_inflight",
                      "admission_peak_queue", "raw_peak_inflight",
                      "pool_peak_waiting", "breaker_opened",
                      "breaker_reclosed", "breakers_all_closed",
                      "open_nodes", "stuck_clients"):
            assert getattr(traced, field) == getattr(plain, field), field
        assert plain.tracer is None
        assert traced.tracer is not None and traced.tracer.events
