"""Telemetry <-> metrics <-> trace consistency on the golden episode.

The sampler, the MetricSet, and the tracer observe the same run through
independent channels; these tests pin the three views to each other and
pin the plane's two determinism contracts: sampling must not change a
single counter (zero perturbation), and the exported series must be
byte-identical across processes and hash seeds.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.experiments import ExperimentConfig, build_deployment
from repro.experiments.chaos import run_overload_episode
from repro.obs import telemetry_to_jsonl
from repro.workload import WORKLOAD_A

pytestmark = pytest.mark.telemetry

#: Mirrors GOLDEN_OVERLOAD_SCALE so the episode exercised here is the
#: same one the golden fixture pins.
SCALE = {"seed": 11, "duration": 5.0, "clients": 10, "n_objects": 200,
         "settle": 2.0}


@pytest.fixture(scope="module")
def episode():
    return run_overload_episode(**SCALE, trace=True, telemetry=0.5,
                                kernel_stats=True)


class TestReconciliation:
    def test_totals_match_episode_counters(self, episode):
        totals = episode.telemetry.summary()["totals"]
        assert totals["requests"] == episode.completed
        assert totals["client_errors"] == episode.errors
        assert totals["sheds"] == episode.shed
        assert totals["timeouts"] == episode.timeouts
        assert totals["breakers_opened"] == episode.breaker_opened

    def test_window_deltas_sum_to_totals(self, episode):
        sampler = episode.telemetry
        assert sampler.dropped == 0, "ring must retain the whole episode"
        totals = sampler.summary()["totals"]
        for name in ("requests", "sheds", "client_errors"):
            assert sum(w.deltas[name] for w in sampler.windows) == \
                totals[name]

    def test_window_events_sum_to_kernel_fired(self, episode):
        sampler = episode.telemetry
        fired = episode.kernel_stats["fired_total"]
        assert sum(w.events for w in sampler.windows) == \
            sampler.events_total == fired

    def test_totals_match_trace_point_counts(self, episode):
        tracer = episode.tracer
        totals = episode.telemetry.summary()["totals"]
        assert totals["sheds"] == \
            len(tracer.find_events(kind="shed", name="shed"))
        opened = [e for e in tracer.find_events(kind="breaker")
                  if e.name.endswith("->open")]
        assert totals["breakers_opened"] == len(opened)

    def test_slo_verdicts_on_golden_episode(self, episode):
        assert episode.slo_results, "telemetry run must evaluate SLOs"
        assert episode.slo_ok
        by_name = {r["name"]: r for r in episode.slo_results}
        assert by_name["served_p99"]["evaluated"]
        assert by_name["shed_budget"]["value"] > 0.0

    def test_kernel_stats_schedule_conservation(self, episode):
        stats = episode.kernel_stats
        assert stats["scheduled_total"] >= stats["fired_total"]
        assert stats["heap_high_water"] >= 1
        classes = dict(stats["event_classes"])
        assert classes.get("Timeout", 0) > 0


class TestDeploymentReconciliation:
    def test_totals_match_metric_set_snapshot(self):
        config = ExperimentConfig(scheme="partition-ca",
                                  workload=WORKLOAD_A, duration=2.0,
                                  warmup=0.5, seed=7, n_objects=150,
                                  telemetry=0.5, kernel_stats=True)
        deployment = build_deployment(config)
        summary = deployment.run(6)
        counters = \
            deployment.frontend.metrics.snapshot()["counters"]
        totals = summary["telemetry"]["totals"]
        assert totals["sheds"] == counters.get("overload/shed", 0)
        assert totals["timeouts"] == counters.get("overload/timeout", 0)
        assert totals["requests"] == deployment.rig.meter.completions
        assert summary["kernel_stats"]["fired_total"] > 0


class TestZeroPerturbation:
    def test_sampled_run_counters_identical(self):
        scale = dict(SCALE, duration=3.0, n_objects=150, clients=6)
        base = run_overload_episode(**scale)
        sampled = run_overload_episode(**scale, telemetry=0.5,
                                       kernel_stats=True)
        assert sampled.events == base.events
        assert sampled.completed == base.completed
        assert sampled.errors == base.errors
        assert sampled.shed == base.shed
        assert sampled.breaker_opened == base.breaker_opened
        assert sampled.error_statuses == base.error_statuses


_SUBPROCESS_SNIPPET = """
import sys
from repro.experiments.chaos import run_overload_episode
from repro.obs import telemetry_to_jsonl, telemetry_to_prometheus
result = run_overload_episode(seed=11, duration=3.0, clients=6,
                              n_objects=150, settle=1.5, telemetry=0.5)
sys.stdout.write(telemetry_to_jsonl(result.telemetry))
sys.stdout.write(telemetry_to_prometheus(result.telemetry))
"""


class TestByteDeterminism:
    def test_jsonl_identical_across_hash_seeds(self):
        outputs = []
        for seed in ("0", "1"):
            env = dict(os.environ, PYTHONHASHSEED=seed,
                       PYTHONPATH="src")
            proc = subprocess.run(
                [sys.executable, "-c", _SUBPROCESS_SNIPPET],
                capture_output=True, text=True, env=env, check=True)
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert '"rec": "summary"' in outputs[0]

    def test_jsonl_matches_in_process_run(self, episode):
        # windows are sim-domain floats; re-serialising is stable
        text = telemetry_to_jsonl(episode.telemetry)
        reparsed = [json.loads(line)
                    for line in text.strip().split("\n")]
        assert json.dumps(reparsed[-1], sort_keys=True) in text
