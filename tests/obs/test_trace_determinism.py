"""Trace determinism: byte-identical JSONL across runs and hash seeds.

The trace is part of the reproducibility surface -- two runs of the same
seeded episode must export the *same bytes*, regardless of process or
``PYTHONHASHSEED``.  Fresh subprocesses are mandatory here: module-level
id counters (mapping entries, dispatch ids) advance across in-process
runs, so only a clean interpreter observes the canonical byte stream.

The obs package itself must also pass the determinism lints (no wall
clock, no global RNG, no unsorted set iteration) -- the tracer cannot be
allowed to perturb what it observes.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.determinism import DEFAULT_ROOT, lint_tree

pytestmark = pytest.mark.trace

SRC = str(Path(__file__).resolve().parents[2] / "src")

EXPORT_SCRIPT = """\
import sys
from repro.experiments.chaos import run_overload_episode
from repro.obs import to_jsonl

result = run_overload_episode(seed=3, duration=2.5, clients=6,
                              n_objects=100, settle=1.0, trace=True)
sys.stdout.write(to_jsonl(result.tracer))
"""


def export_jsonl(hashseed: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-c", EXPORT_SCRIPT],
        capture_output=True, text=True, check=True,
        env={"PYTHONPATH": SRC, "PYTHONHASHSEED": hashseed})
    return proc.stdout


class TestByteIdenticalExport:
    def test_repeated_runs_and_hash_seeds_export_same_bytes(self):
        first = export_jsonl("0")
        again = export_jsonl("0")
        reseeded = export_jsonl("1")
        assert first, "traced episode exported no records"
        assert first == again
        assert first == reseeded


class TestObsPackageLints:
    def test_obs_tree_is_lint_clean(self):
        assert lint_tree(DEFAULT_ROOT / "obs") == []
