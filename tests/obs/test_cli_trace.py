"""The ``repro trace`` CLI subcommand end-to-end (at reduced scale)."""

import json

import pytest

from repro.__main__ import main

pytestmark = pytest.mark.trace

#: Small enough for tier-1, large enough that the flash crowd sheds and
#: the slow disk trips a breaker -- the decisions the waterfall must show.
ARGS = ["trace", "--seed", "11", "--duration", "5.0", "--clients", "10",
        "--objects", "200", "--settle", "2.0"]


class TestTraceCli:
    def test_summary_and_waterfall(self, capsys):
        main(ARGS)
        out = capsys.readouterr().out
        assert "trace summary:" in out
        assert "request statuses:" in out
        assert "decision reasons:" in out
        # the episode's signature decisions surface with their reasons
        assert "shed/shed" in out
        assert "admission-queue-full" in out
        assert "breaker/closed->open" in out
        # a per-request waterfall is rendered for the busiest trace
        assert "trace #" in out
        assert "off ms" in out

    def test_filtered_event_listing(self, capsys):
        main(ARGS + ["--kind", "breaker"])
        out = capsys.readouterr().out
        assert "closed->open" in out
        assert "reason=" in out
        assert "events matched" in out
        assert "trace summary:" not in out

    def test_exporter_files(self, tmp_path, capsys):
        jsonl = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace.json"
        main(ARGS + ["--jsonl", str(jsonl), "--chrome", str(chrome)])
        lines = jsonl.read_text(encoding="utf-8").splitlines()
        assert lines
        recs = {json.loads(line)["rec"] for line in lines}
        assert recs == {"event", "span"}
        doc = json.loads(chrome.read_text(encoding="utf-8"))
        assert doc["traceEvents"]
        out = capsys.readouterr().out
        assert "wrote" in out
