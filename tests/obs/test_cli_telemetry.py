"""The ``repro telemetry`` and ``repro top`` CLI subcommands end-to-end
(at reduced scale)."""

import json

import pytest

from repro.__main__ import main

pytestmark = pytest.mark.telemetry

#: Small enough for tier-1, large enough that the flash crowd sheds and
#: the windows carry real traffic.
ARGS = ["--seed", "11", "--duration", "3.0", "--clients", "6",
        "--objects", "150", "--settle", "1.5"]


class TestTelemetryCli:
    def test_per_window_dump(self, capsys):
        rc = main(["telemetry"] + ARGS)
        out = capsys.readouterr().out
        assert rc == 0
        assert "ev/s=" in out
        assert "requests=" in out
        assert "windows x" in out

    def test_jsonl_export(self, tmp_path, capsys):
        path = tmp_path / "tel.jsonl"
        rc = main(["telemetry"] + ARGS + ["--jsonl", str(path)])
        assert rc == 0
        lines = path.read_text().strip().split("\n")
        records = [json.loads(line) for line in lines]
        assert records[-1]["rec"] == "summary"
        window = records[0]
        assert window["rec"] == "window"
        assert "heap_depth" in window["gauges"]
        assert "rss_kb" not in window, "host readings are opt-in"

    def test_prometheus_export(self, tmp_path, capsys):
        path = tmp_path / "tel.prom"
        rc = main(["telemetry"] + ARGS + ["--prom", str(path)])
        assert rc == 0
        text = path.read_text()
        assert "# TYPE repro_events_total counter" in text
        assert "repro_requests_total" in text

    def test_exports_identical_across_invocations(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        main(["telemetry"] + ARGS + ["--jsonl", str(a)])
        main(["telemetry"] + ARGS + ["--jsonl", str(b)])
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()


class TestTopCli:
    def test_dashboard(self, capsys):
        rc = main(["top"] + ARGS)
        out = capsys.readouterr().out
        assert rc == 0
        assert "== overload episode seed=11 ==" in out
        assert "-- totals --" in out
        assert "-- gauges (last window) --" in out
        assert "-- scheduler --" in out
        assert "heap high-water" in out
        assert "event Timeout" in out
        assert "site  " in out  # callsite attribution lines
        assert "-- slo --" in out
        assert "[PASS] served_p99" in out
        assert "peak rss" in out

    def test_watch_prepends_window_timeline(self, capsys):
        main(["top"] + ARGS + ["--watch"])
        out = capsys.readouterr().out
        assert out.index("ev/s=") < out.index("== overload episode")
