"""Flight-recorder auto-dump: an invariant violation carries the timeline.

When a traced deployment trips one of the INV001-INV010 coherence checks,
the raised :class:`InvariantError` must include the flight recorder's
rendering of the last events -- the black box that explains *how* the
system reached the incoherent state.  Without a tracer the error must
still raise, just without a timeline.
"""

import pytest

from repro.analysis import InvariantError
from repro.experiments import ExperimentConfig, build_deployment
from repro.workload import WORKLOAD_A

pytestmark = pytest.mark.trace


def tiny_config(**kw):
    defaults = dict(scheme="partition-ca", workload=WORKLOAD_A, seed=7,
                    n_objects=60, duration=2.0, warmup=0.25,
                    n_client_machines=2, debug_invariants=True)
    defaults.update(kw)
    return ExperimentConfig(**defaults)


def corrupt_and_run(deployment):
    """Point one URL record at a nonexistent server (INV001) mid-run."""
    sim = deployment.sim

    def corrupt():
        yield sim.timeout(0.5)
        record = next(iter(deployment.url_table.records()))
        record.locations.add("bogus-node")

    sim.process(corrupt())
    deployment.rig.start_clients(3)
    sim.run(until=2.0)


class TestFlightRecorderDump:
    def test_invariant_violation_dumps_timeline(self):
        deployment = build_deployment(tiny_config(trace=True))
        with pytest.raises(InvariantError) as excinfo:
            corrupt_and_run(deployment)
        err = excinfo.value
        assert any(v.rule == "INV001" for v in err.violations)
        assert "flight recorder:" in err.timeline
        # the timeline rides along in the message operators actually see
        assert "flight recorder:" in str(err)
        # the recorder captured real data-plane traffic leading up to it
        assert "request/" in err.timeline

    def test_untraced_deployment_raises_without_timeline(self):
        deployment = build_deployment(tiny_config(trace=False))
        assert deployment.tracer is None
        with pytest.raises(InvariantError) as excinfo:
            corrupt_and_run(deployment)
        assert excinfo.value.timeline == ""
        assert "flight recorder:" not in str(excinfo.value)
