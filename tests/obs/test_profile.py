"""Profile attribution: cProfile time bucketed into repo subsystems."""

import cProfile

import pytest

from repro.obs import attribute_profile, classify_path, peak_rss_kb

pytestmark = pytest.mark.telemetry


class TestClassifyPath:
    def test_subsystem_buckets(self):
        assert classify_path("/x/src/repro/sim/engine.py") == "sim"
        assert classify_path("/x/src/repro/net/tcp.py") == "net"
        assert classify_path("/x/src/repro/cluster/cpu.py") == "cluster"
        assert classify_path("/x/src/repro/obs/telemetry.py") == "obs"

    def test_splicer_carved_out_of_core(self):
        assert classify_path("/x/src/repro/core/splicer.py") == "splicer"
        assert classify_path("/x/src/repro/core/frontend.py") == "core"

    def test_stdlib_and_other(self):
        assert classify_path("~") == "stdlib"
        assert classify_path("<built-in>") == "stdlib"
        assert classify_path("/usr/lib/python3.11/json/encoder.py") == \
            "stdlib"
        assert classify_path("/somewhere/else.py") == "other"

    def test_tests_bucket(self):
        assert classify_path("/x/tests/obs/test_profile.py") == "tests"


class TestAttributeProfile:
    def test_buckets_sum_and_sort(self):
        from repro.experiments.bench import run_openloop_splice
        profiler = cProfile.Profile()
        profiler.enable()
        run_openloop_splice(rate=100.0, duration=0.3, fast_path=True)
        profiler.disable()
        out = attribute_profile(profiler, top=5)
        assert out["total_s"] > 0.0
        # shares are rounded to 4 decimals, so the sum is 1 within
        # half an ulp per bucket
        shares = [b["share"] for b in out["subsystems"].values()]
        assert abs(sum(shares) - 1.0) <= 5e-5 * len(shares) + 1e-9
        # the workload runs through the sim kernel and the net stack
        assert "sim" in out["subsystems"]
        assert "net" in out["subsystems"]
        assert len(out["top_functions"]) <= 5
        tots = [f["tottime_s"] for f in out["top_functions"]]
        assert tots == sorted(tots, reverse=True)

    def test_top_function_names_carry_bucket(self):
        profiler = cProfile.Profile()
        profiler.enable()
        sum(range(1000))
        profiler.disable()
        out = attribute_profile(profiler)
        for func in out["top_functions"]:
            assert func["func"].count(":") >= 2  # bucket:leaf:line:name


def test_peak_rss_is_plausible():
    kb = peak_rss_kb()
    # a running CPython interpreter needs >4 MB and <64 GB
    assert 4 * 1024 < kb < 64 * 1024 * 1024
