"""Unit tests for the tracer, flight recorder, exporters, and summaries."""

import json

import pytest

from repro.obs import (FlightRecorder, Span, TraceEvent, Tracer,
                       TraceSummary, format_event, pick_waterfall_trace,
                       render_waterfall, to_chrome_trace, to_jsonl)
from repro.sim import Simulator


def traced_request(tracer, sim, url="/a.html", status="200", delay=0.5):
    """One request span with a stage span and a point inside it."""
    tid = tracer.new_trace()
    span = tracer.begin("request", url, trace_id=tid, node="dist")
    stage = tracer.begin("stage", "route", trace_id=tid, node="dist")
    yield sim.timeout(delay / 2)
    tracer.end(stage)
    tracer.point("lookup", "cache-hit", trace_id=tid, node="dist")
    yield sim.timeout(delay / 2)
    tracer.end(span, status=status)


class TestTracer:
    def test_ids_are_instance_scoped_and_start_at_one(self):
        sim = Simulator()
        a, b = Tracer(sim), Tracer(sim)
        assert a.new_trace() == 1
        assert a.new_trace() == 2
        assert b.new_trace() == 1

    def test_events_carry_sim_time_and_monotone_seq(self):
        sim = Simulator()
        tracer = Tracer(sim)

        def proc():
            tracer.point("k", "early")
            yield sim.timeout(1.5)
            tracer.point("k", "late", weight=3)

        sim.process(proc())
        sim.run(until=5.0)
        early, late = tracer.events
        assert (early.t, late.t) == (0.0, 1.5)
        assert early.seq < late.seq
        assert late.attrs == {"weight": 3}

    def test_span_records_interval_and_status(self):
        sim = Simulator()
        tracer = Tracer(sim)
        sim.process(traced_request(tracer, sim, status="503"))
        sim.run(until=5.0)
        span = tracer.find_spans(kind="request")[0]
        assert span.duration == pytest.approx(0.5)
        assert span.status == "503"
        assert not span.open

    def test_begin_end_leave_phase_marks_on_the_timeline(self):
        sim = Simulator()
        tracer = Tracer(sim)
        sim.process(traced_request(tracer, sim))
        sim.run(until=5.0)
        phases = [e.phase for e in tracer.events]
        assert phases == ["B", "B", "E", "", "E"]

    def test_double_end_raises(self):
        sim = Simulator()
        tracer = Tracer(sim)
        span = tracer.begin("request", "/x")
        tracer.end(span)
        with pytest.raises(ValueError):
            tracer.end(span)

    def test_find_filters(self):
        sim = Simulator()
        tracer = Tracer(sim)
        sim.process(traced_request(tracer, sim))
        sim.process(traced_request(tracer, sim, url="/b.html"))
        sim.run(until=5.0)
        assert len(tracer.find_events(kind="lookup")) == 2
        assert len(tracer.find_events(trace_id=1, points_only=True)) == 1
        assert len(tracer.find_spans(kind="stage", name="route")) == 2
        assert tracer.find_spans(name="/b.html")[0].trace_id == 2
        assert tracer.trace_ids() == [1, 2]

    def test_tracer_is_passive(self):
        """Recording must never create simulation events."""
        sim = Simulator()
        tracer = Tracer(sim)
        before = len(sim._queue) if hasattr(sim, "_queue") else None
        tracer.point("k", "n")
        tracer.end(tracer.begin("request", "/x"))
        if before is not None:
            assert len(sim._queue) == before


class TestFlightRecorder:
    def test_ring_keeps_the_last_n(self):
        rec = FlightRecorder(capacity=3)
        for i in range(5):
            rec.record(TraceEvent(seq=i + 1, t=float(i), kind="k", name=f"e{i}"))
        assert rec.recorded == 5
        assert len(rec) == 3
        assert rec.dropped == 2
        assert [e.name for e in rec.events()] == ["e2", "e3", "e4"]

    def test_render_header_and_rows(self):
        rec = FlightRecorder(capacity=2)
        rec.record(TraceEvent(seq=1, t=0.5, kind="shed", name="shed",
                              trace_id=7, node="dist",
                              attrs={"reason": "admission-queue-full"}))
        text = rec.render()
        assert "flight recorder: 1 of 1 events" in text
        assert "shed/shed" in text
        assert "reason=admission-queue-full" in text
        assert "#7" in text

    def test_format_event_marks_span_phases(self):
        begin = format_event(TraceEvent(seq=1, t=0.0, kind="request",
                                        name="/x", phase="B"))
        end = format_event(TraceEvent(seq=2, t=1.0, kind="request",
                                      name="/x", phase="E"))
        point = format_event(TraceEvent(seq=3, t=1.0, kind="k", name="n"))
        assert "[" in begin and "]" in end and "*" in point


def small_trace():
    sim = Simulator()
    tracer = Tracer(sim)
    sim.process(traced_request(tracer, sim, status="200"))
    sim.process(traced_request(tracer, sim, url="/b.html", status="503"))
    sim.run(until=5.0)
    return tracer


class TestExporters:
    def test_jsonl_round_trips_and_is_stable(self):
        text = to_jsonl(small_trace())
        assert text == to_jsonl(small_trace())
        records = [json.loads(line) for line in text.splitlines()]
        kinds = {r["rec"] for r in records}
        assert kinds == {"event", "span"}
        # events first (in seq order), then spans
        recs = [r["rec"] for r in records]
        assert recs == sorted(recs, key=lambda r: r == "span")
        for line in text.splitlines():
            assert line == json.dumps(json.loads(line), sort_keys=True)

    def test_chrome_trace_shape(self):
        doc = json.loads(to_chrome_trace(small_trace()))
        phases = {r["ph"] for r in doc["traceEvents"]}
        assert phases == {"X", "i"}
        complete = [r for r in doc["traceEvents"] if r["ph"] == "X"]
        assert all(r["dur"] >= 0 for r in complete)
        # one tid per node, assigned over sorted node names
        assert {r["tid"] for r in doc["traceEvents"]} == {1}


class TestSummary:
    def test_aggregation(self):
        summary = TraceSummary.from_tracer(small_trace())
        assert summary.spans["request"]["count"] == 2
        assert summary.spans["stage/route"]["count"] == 2
        assert summary.statuses == {"200": 1, "503": 1}
        assert summary.events == {"lookup/cache-hit": 2}
        assert summary.open_spans == 0
        counts = summary.counts()
        assert counts["spans"] == {"request": 2, "stage/route": 2}
        assert list(counts["events"]) == sorted(counts["events"])

    def test_open_spans_counted(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.begin("request", "/never-ends")
        summary = TraceSummary.from_tracer(tracer)
        assert summary.open_spans == 1
        assert "request" not in summary.spans

    def test_reason_attrs_counted(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.point("shed", "shed", reason="admission-queue-full")
        tracer.point("breaker", "closed->open", reason="error-rate")
        summary = TraceSummary.from_tracer(tracer)
        assert summary.reasons == {"shed/admission-queue-full": 1,
                                   "breaker/error-rate": 1}

    def test_render_is_readable(self):
        text = TraceSummary.from_tracer(small_trace()).render()
        assert "trace summary:" in text
        assert "stage/route" in text
        assert "request statuses: 200=1 503=1" in text


class TestWaterfall:
    def test_picks_busiest_trace(self):
        tracer = small_trace()
        # both traces have the same event count; ties break to lowest id
        assert pick_waterfall_trace(tracer) == 1

    def test_renders_bars_and_ticks(self):
        tracer = small_trace()
        text = render_waterfall(tracer, 2)
        assert text.startswith("trace #2:")
        assert "request" in text and "/b.html" in text
        assert "#" in text          # span bar
        assert "|" in text          # point tick
        assert "503" in text

    def test_empty_trace_id(self):
        sim = Simulator()
        tracer = Tracer(sim)
        assert pick_waterfall_trace(tracer) is None
