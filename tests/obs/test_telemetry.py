"""Unit tests for the kernel telemetry plane (DESIGN §15).

KernelStats and TelemetrySampler on toy simulations: counting semantics,
window-edge placement, ring eviction, exporters, SLO evaluation.  The
full-episode consistency battery lives in
``test_telemetry_consistency.py``.
"""

import json

import pytest

from repro.obs import (DEFAULT_CHAOS_SLOS, DEFAULT_OVERLOAD_SLOS,
                       KernelStats, SloSpec, TelemetrySampler, evaluate_slos,
                       render_top, render_windows, telemetry_to_jsonl,
                       telemetry_to_prometheus)
from repro.sim import Simulator

pytestmark = pytest.mark.telemetry


def _ticker(sim, period, count):
    def proc():
        for _ in range(count):
            yield sim.timeout(period)
    sim.process(proc())


class TestKernelStats:
    def test_counts_scheduled_and_fired(self):
        stats = KernelStats()
        sim = Simulator(kernel_stats=stats)
        _ticker(sim, 0.1, 5)
        sim.run()
        report = stats.report()
        assert report["scheduled_total"] == report["fired_total"]
        assert report["scheduled_total"] >= 6  # init + 5 timeouts
        classes = dict(report["event_classes"])
        assert classes.get("Timeout", 0) == 5

    def test_cancellation_counted(self):
        stats = KernelStats()
        sim = Simulator(kernel_stats=stats)

        def sleeper():
            yield sim.timeout(10.0)

        proc = sim.process(sleeper())

        def killer():
            yield sim.timeout(0.1)
            proc.interrupt("stop")

        sim.process(killer())
        sim.run()
        assert stats.report()["cancelled_total"] >= 1

    def test_heap_high_water_tracks_depth(self):
        stats = KernelStats()
        sim = Simulator(kernel_stats=stats)
        for _ in range(8):
            _ticker(sim, 0.5, 1)
        sim.run()
        assert stats.report()["heap_high_water"] >= 8

    def test_callsite_attribution_optional(self):
        on = KernelStats(callsites=True)
        sim = Simulator(kernel_stats=on)
        _ticker(sim, 0.1, 3)
        sim.run()
        report = on.report()
        assert report["callsites"], "callsites=True must attribute sites"
        # every key is subsystem:module.function
        for name, _count in report["callsites"]:
            assert ":" in name and "." in name
        off = KernelStats()
        sim2 = Simulator(kernel_stats=off)
        _ticker(sim2, 0.1, 3)
        sim2.run()
        assert "callsites" not in off.report()

    def test_fast_path_layer_counters(self):
        stats = KernelStats()
        stats.on_fast_path("cpu", True)
        stats.on_fast_path("cpu", True)
        stats.on_fast_path("cpu", False)
        report = stats.report()
        assert report["fast_path"]["cpu"] == {"hits": 2, "fallbacks": 1}


class TestTelemetrySampler:
    def test_windows_close_on_sim_clock(self):
        sampler = TelemetrySampler(window=1.0)
        sim = Simulator()
        sampler.attach(sim)
        _ticker(sim, 0.25, 12)  # runs to t=3.0
        sim.run()
        sampler.finalize(sim.now)
        # three full windows plus the zero-width finalize tail holding
        # the events fired at exactly t=3.0 (kept so totals reconcile)
        assert [w.start for w in sampler.windows] == [0.0, 1.0, 2.0, 3.0]
        assert sum(w.events for w in sampler.windows) == \
            sampler.events_total

    def test_gauges_and_cumulative_deltas(self):
        sampler = TelemetrySampler(window=1.0)
        sim = Simulator()
        sampler.attach(sim)
        seen = {"n": 0}

        def proc():
            for _ in range(4):
                yield sim.timeout(0.9)
                seen["n"] += 10

        sampler.add_gauge("n_now", lambda: float(seen["n"]))
        sampler.add_cumulative("n_cum", lambda: seen["n"])
        sim.process(proc())
        sim.run()
        sampler.finalize(sim.now)
        total = sampler.summary()["totals"]["n_cum"]
        assert total == 40
        assert sum(w.deltas["n_cum"] for w in sampler.windows) == 40

    def test_duplicate_source_rejected(self):
        sampler = TelemetrySampler()
        sampler.add_gauge("x", lambda: 0.0)
        with pytest.raises(ValueError):
            sampler.add_gauge("x", lambda: 1.0)

    def test_ring_bounds_retention(self):
        sampler = TelemetrySampler(window=0.1, ring=4)
        sim = Simulator()
        sampler.attach(sim)
        _ticker(sim, 0.1, 20)
        sim.run()
        sampler.finalize(sim.now)
        assert len(sampler.windows) == 4
        assert sampler.dropped > 0
        assert sampler.summary()["retained"] == 4

    def test_zero_width_tail_has_zero_rate(self):
        # finalize at an exact window edge must not divide by ~0
        sampler = TelemetrySampler(window=1.0)
        sim = Simulator()
        sampler.attach(sim)
        _ticker(sim, 1.0, 2)
        sim.run()
        sampler.finalize(sim.now)
        assert all(w.events_per_sec >= 0.0 for w in sampler.windows)
        peak = sampler.summary()["peak_events_per_sec"]
        assert peak < 1e6

    def test_series_by_name(self):
        sampler = TelemetrySampler(window=1.0)
        sim = Simulator()
        sampler.attach(sim)
        sampler.add_gauge("g", lambda: 7.0)
        _ticker(sim, 0.5, 4)
        sim.run()
        sampler.finalize(sim.now)
        n = len(sampler.windows)
        assert sampler.series("g") == [7.0] * n
        assert len(sampler.series("events_per_sec")) == n
        with pytest.raises(KeyError):
            sampler.series("nope")


class TestExporters:
    @pytest.fixture()
    def sampler(self):
        sampler = TelemetrySampler(window=1.0)
        sim = Simulator()
        sampler.attach(sim)
        sampler.add_gauge("depth", lambda: float(sim.heap_depth))
        _ticker(sim, 0.4, 5)
        sim.run()
        sampler.finalize(sim.now)
        return sampler

    def test_jsonl_schema(self, sampler):
        lines = telemetry_to_jsonl(sampler).strip().split("\n")
        records = [json.loads(line) for line in lines]
        assert [r["rec"] for r in records[:-1]] == \
            ["window"] * (len(records) - 1)
        assert records[-1]["rec"] == "summary"
        for rec in records[:-1]:
            assert "rss_kb" not in rec, "host readings are opt-in"

    def test_jsonl_host_rss_opt_in(self, sampler):
        line = telemetry_to_jsonl(sampler, include_host=True).split("\n")[0]
        assert "rss_kb" in json.loads(line)

    def test_prometheus_text_format(self, sampler):
        text = telemetry_to_prometheus(sampler)
        assert "# TYPE repro_events_total counter" in text
        assert "# TYPE repro_depth gauge" in text
        for line in text.strip().split("\n"):
            assert line.startswith("#") or " " in line

    def test_renderers(self, sampler):
        dump = render_windows(sampler)
        assert "ev/s=" in dump
        top = render_top(sampler, title="toy")
        assert "== toy ==" in top
        assert "peak" in top


class TestSlo:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SloSpec("bad", "m", 1.0, op="!=")
        with pytest.raises(ValueError):
            SloSpec("bad", "m", 1.0, scope="everywhere")

    def test_episode_scope(self):
        specs = (SloSpec("lat", "p99", 1.0),
                 SloSpec("err", "error_rate", 0.1, op="<"))
        results = evaluate_slos(specs, {"p99": 0.5, "error_rate": 0.2})
        assert [r["ok"] for r in results] == [True, False]
        assert all(r["evaluated"] for r in results)

    def test_window_scope_reads_series(self):
        sampler = TelemetrySampler(window=1.0)
        sim = Simulator()
        sampler.attach(sim)
        values = iter([1.0, 5.0, 2.0, 0.0])
        sampler.add_gauge("load", lambda: next(values))
        _ticker(sim, 1.0, 3)
        sim.run()
        sampler.finalize(sim.now)
        spec = SloSpec("burst", "load", 4.0, scope="window_max")
        (res,) = evaluate_slos((spec,), {}, sampler)
        assert res["evaluated"] and not res["ok"]
        assert res["value"] == 5.0

    def test_missing_metric_is_vacuous(self):
        (res,) = evaluate_slos((SloSpec("x", "absent", 1.0),), {})
        assert res["ok"] and not res["evaluated"]
        assert res["value"] is None

    def test_default_spec_tuples(self):
        for specs in (DEFAULT_OVERLOAD_SLOS, DEFAULT_CHAOS_SLOS):
            names = [s.name for s in specs]
            assert len(names) == len(set(names))
            assert all(s.scope == "episode" for s in specs)
