"""Tests for placement schemes and plan application."""

import pytest

from repro.cluster import (BackendServer, NfsServer, NodeSpec,
                           paper_testbed_specs, distributor_spec)
from repro.content import (ContentItem, ContentType, DYNAMIC_MIX, Priority,
                           SiteCatalog, generate_catalog)
from repro.core import (apply_plan, full_replication, partial_replication,
                        partition_by_type, shared_nfs)
from repro.net import Lan
from repro.sim import RngStream, Simulator


@pytest.fixture
def specs():
    return paper_testbed_specs()


@pytest.fixture
def catalog():
    return generate_catalog(400, rng=RngStream(1), mix=DYNAMIC_MIX)


@pytest.fixture
def names(specs):
    return [s.name for s in specs]


class TestFullReplication:
    def test_every_item_everywhere(self, catalog, names):
        plan = full_replication(catalog, names)
        for item in catalog:
            assert plan.nodes_for(item.path) == set(names)
        plan.validate(catalog, names)

    def test_empty_nodes_rejected(self, catalog):
        with pytest.raises(ValueError):
            full_replication(catalog, [])


class TestSharedNfs:
    def test_routable_everywhere_but_uses_nfs(self, catalog, names):
        plan = shared_nfs(catalog, names)
        assert plan.uses_nfs
        for item in catalog:
            assert plan.nodes_for(item.path) == set(names)


class TestPartitionByType:
    def test_dynamic_content_on_fastest_nodes(self, catalog, specs):
        plan = partition_by_type(catalog, specs)
        fast = {s.name for s in specs if s.cpu_mhz == 350}
        for item in catalog.dynamic_items():
            assert plan.nodes_for(item.path) <= fast

    def test_multimedia_on_fast_disk_nodes(self, catalog, specs):
        plan = partition_by_type(catalog, specs)
        fast_disk = {s.name for s in specs
                     if s.disk.transfer_mbps >= 14.0}
        for item in catalog:
            if item.ctype.is_multimedia:
                assert plan.nodes_for(item.path) <= fast_disk

    def test_plain_static_on_slower_nodes_when_dynamic_present(
            self, catalog, specs):
        plan = partition_by_type(catalog, specs)
        slow = {s.name for s in specs if s.cpu_mhz < 350}
        for item in catalog.static_items():
            if not item.ctype.is_multimedia and not item.is_large \
                    and item.priority is not Priority.CRITICAL:
                assert plan.nodes_for(item.path) <= slow

    def test_static_only_catalog_uses_all_nodes(self, specs):
        catalog = generate_catalog(300, rng=RngStream(2))  # STATIC_MIX
        plan = partition_by_type(catalog, specs)
        used = set()
        for item in catalog:
            used |= plan.nodes_for(item.path)
        assert used == {s.name for s in specs}

    def test_critical_content_replicated(self, catalog, specs):
        plan = partition_by_type(catalog, specs, replicate_critical=True)
        criticals = [i for i in catalog if i.priority is Priority.CRITICAL]
        assert criticals
        for item in criticals:
            assert plan.replica_count(item.path) >= 2

    def test_no_replication_when_disabled(self, catalog, specs):
        plan = partition_by_type(catalog, specs, replicate_critical=False)
        for item in catalog:
            assert plan.replica_count(item.path) == 1

    def test_partition_spreads_by_weight(self, specs):
        catalog = generate_catalog(900, rng=RngStream(3))
        plan = partition_by_type(catalog, specs, replicate_critical=False)
        counts = {s.name: len(plan.paths_on(s.name)) for s in specs}
        # every node hosts something, and the heavy nodes host more
        assert all(c > 0 for c in counts.values())
        assert counts["s350-0"] > counts["s150-0"]

    def test_plan_covers_catalog(self, catalog, specs):
        plan = partition_by_type(catalog, specs)
        plan.validate(catalog, [s.name for s in specs])


class TestPartialReplication:
    def test_adds_replicas(self, catalog, specs):
        plan = partition_by_type(catalog, specs, replicate_critical=False)
        target = catalog.paths()[0]
        partial_replication(plan, [target], ["s350-0", "s350-1"])
        assert {"s350-0", "s350-1"} <= plan.nodes_for(target)

    def test_unknown_path_rejected(self, catalog, specs):
        plan = partition_by_type(catalog, specs)
        with pytest.raises(KeyError):
            partial_replication(plan, ["/ghost"], ["s350-0"])


class TestApplyPlan:
    def make_cluster(self, specs):
        sim = Simulator()
        lan = Lan(sim)
        servers = {s.name: BackendServer(sim, lan, s) for s in specs}
        return sim, lan, servers

    def test_apply_full_replication(self, catalog, specs, names):
        sim, lan, servers = self.make_cluster(specs)
        plan = full_replication(catalog, names)
        url_table, doctree = apply_plan(plan, catalog, servers)
        assert len(url_table) == len(catalog)
        assert len(doctree.files()) == len(catalog)
        for server in servers.values():
            assert len(server.store) == len(catalog)

    def test_apply_partition_places_subsets(self, catalog, specs):
        sim, lan, servers = self.make_cluster(specs)
        plan = partition_by_type(catalog, specs)
        url_table, _ = apply_plan(plan, catalog, servers)
        total_copies = sum(len(s.store) for s in servers.values())
        assert total_copies < len(catalog) * len(servers)  # not replicated
        # URL table locations agree with the stores
        for record in url_table.records():
            for node in record.locations:
                assert servers[node].holds(record.path)

    def test_apply_nfs_exports_and_leaves_stores_empty(
            self, catalog, specs, names):
        sim, lan, servers = self.make_cluster(specs)
        nfs = NfsServer(sim, lan, distributor_spec())
        plan = shared_nfs(catalog, names)
        apply_plan(plan, catalog, servers, nfs=nfs)
        assert len(nfs.store) == len(catalog)
        for server in servers.values():
            assert len(server.store) == 0

    def test_nfs_plan_without_server_rejected(self, catalog, specs, names):
        sim, lan, servers = self.make_cluster(specs)
        plan = shared_nfs(catalog, names)
        with pytest.raises(ValueError):
            apply_plan(plan, catalog, servers)

    def test_invalid_plan_rejected(self, catalog, specs):
        sim, lan, servers = self.make_cluster(specs)
        plan = full_replication(catalog, ["ghost-node"])
        with pytest.raises(ValueError):
            apply_plan(plan, catalog, servers)
