"""Tests for the multi-level URL table and its lookup cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.content import ContentItem, ContentType, generate_catalog
from repro.core import UrlTable, UrlTableError
from repro.sim import RngStream


def item(path, size=1000, ctype=ContentType.HTML):
    return ContentItem(path, size, ctype)


@pytest.fixture
def table():
    t = UrlTable()
    t.insert(item("/index.html"), {"n1"})
    t.insert(item("/docs/guide/ch1.html"), {"n1", "n2"})
    t.insert(item("/docs/guide/ch2.html"), {"n2"})
    t.insert(item("/cgi-bin/search.cgi", ctype=ContentType.CGI), {"n3"})
    return t


class TestInsertRemove:
    def test_insert_and_len(self, table):
        assert len(table) == 4

    def test_duplicate_rejected(self, table):
        with pytest.raises(UrlTableError):
            table.insert(item("/index.html"), {"n9"})

    def test_empty_locations_rejected(self):
        with pytest.raises(UrlTableError):
            UrlTable().insert(item("/a.html"), set())

    def test_document_as_directory_rejected(self, table):
        with pytest.raises(UrlTableError):
            table.insert(item("/index.html/sub.html"), {"n1"})

    def test_remove(self, table):
        table.remove("/docs/guide/ch1.html")
        assert len(table) == 3
        assert "/docs/guide/ch1.html" not in table
        assert "/docs/guide/ch2.html" in table

    def test_remove_prunes_empty_levels(self, table):
        table.remove("/docs/guide/ch1.html")
        table.remove("/docs/guide/ch2.html")
        # the /docs/guide and /docs levels must be gone
        assert "docs" not in table._root.children

    def test_remove_missing_raises(self, table):
        with pytest.raises(UrlTableError):
            table.remove("/ghost.html")
        with pytest.raises(UrlTableError):
            table.remove("/docs/ghost/x.html")

    def test_contains(self, table):
        assert "/index.html" in table
        assert "/docs" not in table       # directories are not documents
        assert "/nope" not in table

    def test_version_bumps_on_mutation(self, table):
        v0 = table.version
        table.insert(item("/new.html"), {"n1"})
        assert table.version == v0 + 1
        table.add_location("/new.html", "n2")
        table.remove_location("/new.html", "n1")
        table.remove("/new.html")
        assert table.version == v0 + 4


class TestLookup:
    def test_lookup_finds_record(self, table):
        rec = table.lookup("/docs/guide/ch1.html")
        assert rec.locations == {"n1", "n2"}
        assert rec.size_bytes == 1000

    def test_lookup_counts_hits(self, table):
        for _ in range(3):
            table.lookup("/index.html")
        assert table.lookup("/index.html").hits == 4

    def test_lookup_unknown_raises(self, table):
        with pytest.raises(UrlTableError):
            table.lookup("/no/such/doc.html")

    def test_lookup_directory_raises(self, table):
        with pytest.raises(UrlTableError):
            table.lookup("/docs/guide")

    def test_query_string_ignored(self, table):
        rec = table.lookup("/cgi-bin/search.cgi?q=hello")
        assert rec.item.ctype is ContentType.CGI

    def test_lookup_cost_levels(self, table):
        assert table.lookup_cost_levels("/docs/guide/ch1.html") == 3
        assert table.lookup_cost_levels("/index.html") == 1


class TestLookupCache:
    def test_repeat_lookup_hits_cache(self, table):
        table.lookup("/index.html")
        assert table.cache_hits == 0
        table.lookup("/index.html")
        assert table.cache_hits == 1
        assert table.cache_hit_rate == 0.5

    def test_cache_capacity_evicts_lru(self):
        t = UrlTable(cache_entries=2)
        for p in ("/a.html", "/b.html", "/c.html"):
            t.insert(item(p), {"n"})
        t.lookup("/a.html")
        t.lookup("/b.html")
        t.lookup("/c.html")     # evicts /a.html from the entry cache
        t.lookup("/a.html")     # must walk the levels again
        assert t.cache_hits == 0

    def test_cache_disabled(self):
        t = UrlTable(cache_entries=0)
        t.insert(item("/a.html"), {"n"})
        t.lookup("/a.html")
        t.lookup("/a.html")
        assert t.cache_hits == 0

    def test_remove_invalidates_cache(self, table):
        table.lookup("/index.html")
        table.remove("/index.html")
        with pytest.raises(UrlTableError):
            table.lookup("/index.html")

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            UrlTable(cache_entries=-1)

    def test_cached_lookup_skips_level_walk(self, table):
        table.lookup("/docs/guide/ch1.html")
        levels_before = table.levels_touched
        table.lookup("/docs/guide/ch1.html")
        assert table.levels_touched == levels_before


class TestLocations:
    def test_add_location(self, table):
        table.add_location("/index.html", "n5")
        assert table.locations("/index.html") == {"n1", "n5"}

    def test_remove_location(self, table):
        table.remove_location("/docs/guide/ch1.html", "n2")
        assert table.locations("/docs/guide/ch1.html") == {"n1"}

    def test_remove_last_location_refused(self, table):
        with pytest.raises(UrlTableError):
            table.remove_location("/index.html", "n1")

    def test_remove_absent_location_raises(self, table):
        with pytest.raises(UrlTableError):
            table.remove_location("/index.html", "n9")


class TestReporting:
    def test_records_iterates_all(self, table):
        assert len(list(table.records())) == 4

    def test_top_by_hits(self, table):
        for _ in range(5):
            table.lookup("/docs/guide/ch2.html")
        for _ in range(2):
            table.lookup("/index.html")
        top = table.top_by_hits(2)
        assert top[0].path == "/docs/guide/ch2.html"
        assert top[1].path == "/index.html"

    def test_memory_footprint_at_paper_scale(self):
        """§5.2: ~8700 objects -> ~260 KB.  Our estimator should land in
        the same range (within 2x either way)."""
        catalog = generate_catalog(8700, rng=RngStream(1))
        t = UrlTable()
        for it in catalog:
            t.insert(it, {"n1"})
        kb = t.memory_footprint_bytes() / 1024
        assert 130 <= kb <= 520

    def test_footprint_grows_with_replicas(self, table):
        before = table.memory_footprint_bytes()
        table.add_location("/index.html", "n7")
        assert table.memory_footprint_bytes() > before


class TestSyncFrom:
    def test_sync_copies_records(self, table):
        backup = UrlTable()
        assert backup.sync_from(table)
        assert len(backup) == len(table)
        assert backup.locations("/index.html") == {"n1"}
        assert backup.version == table.version

    def test_sync_noop_when_versions_match(self, table):
        backup = UrlTable()
        backup.sync_from(table)
        assert not backup.sync_from(table)

    def test_sync_picks_up_changes(self, table):
        backup = UrlTable()
        backup.sync_from(table)
        table.insert(item("/late.html"), {"n4"})
        assert backup.sync_from(table)
        assert "/late.html" in backup


class TestPropertyBased:
    @given(paths=st.lists(
        st.tuples(st.sampled_from("abcd"), st.sampled_from("wxyz"))
        .map(lambda t: f"/{t[0]}/{t[1]}.html"),
        min_size=1, max_size=16, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_insert_lookup_remove_roundtrip(self, paths):
        t = UrlTable()
        for p in paths:
            t.insert(item(p), {"n1"})
        for p in paths:
            assert t.lookup(p).path == p
        for p in paths:
            t.remove(p)
        assert len(t) == 0
        assert not t._root.children  # fully pruned

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_count_matches_records(self, data):
        t = UrlTable()
        n = data.draw(st.integers(1, 30))
        catalog = generate_catalog(n, rng=RngStream(7))
        for it in catalog:
            t.insert(it, {"n1"})
        assert len(t) == n == len(list(t.records()))
