"""Exhaustive failover-timing sweeps (§2.3 chaos satellite).

Two sweeps pin down the primary-failure window:

* a sub-millisecond sweep of the crash instant across one request's splice
  lifecycle (mapping-entry states ESTABLISHED -> BOUND -> teardown), and
* a heartbeat-phase sweep of the crash instant across two full heartbeat
  periods.

Every point of both sweeps must satisfy the same survival properties: the
detection delay is bounded by the heartbeat arithmetic, ``outage_duration``
equals ``misses_to_fail * heartbeat_interval`` exactly, each request is
answered exactly once (no double-answer across primary and backup), and no
mapping entry leaks.
"""

import pytest

from repro.net import HttpRequest

from .test_failover import build_pair

HB = 0.2
MISSES = 2


def run_one_crash(crash_at, request_at, heartbeat=HB, misses=MISSES):
    """One experiment point: crash the primary at ``crash_at`` with a single
    request submitted at ``request_at``.  Returns everything the sweep
    asserts on."""
    sim, pair, primary, backup, servers, item, nic = build_pair(
        heartbeat=heartbeat, misses=misses)
    out = {"outcomes": [], "errors": [], "state_at_crash": None}

    def snapshot_and_crash():
        states = [e.state.name for e in primary.mapping.entries()]
        out["state_at_crash"] = states[0] if states else "IDLE"
        primary.crash()

    def client():
        yield sim.timeout(request_at)
        try:
            outcome = yield sim.process(
                pair.submit(HttpRequest(item.path), nic))
            out["outcomes"].append(outcome)
        except Exception as exc:  # noqa: BLE001 - the sweep records failures
            out["errors"].append(exc)

    sim.schedule(crash_at, snapshot_and_crash)
    sim.process(client())
    sim.run(until=crash_at + (misses + 2) * heartbeat + 3.0)
    pair.stop()
    return sim, pair, primary, backup, out


def assert_survival(pair, primary, backup, out, crash_at):
    # answered exactly once: one outcome, no errors, and the two meters
    # agree that exactly one distributor completed it (no double-answer)
    assert not out["errors"]
    assert len(out["outcomes"]) == 1
    outcome = out["outcomes"][0]
    assert outcome.response is not None and outcome.response.ok
    assert primary.meter.completions + backup.meter.completions == 1
    # the backup promoted itself within the heartbeat arithmetic's bounds
    assert pair.failed_over
    detection = pair.failover_at - crash_at
    assert (MISSES - 1) * HB - 1e-9 <= detection <= (MISSES + 1) * HB + 1e-9
    assert pair.outage_duration == pytest.approx(MISSES * HB)
    # no leaked mapping entries on either distributor
    assert len(primary.mapping) == 0
    assert len(backup.mapping) == 0


class TestSpliceLifecycleSweep:
    """Crash offset swept at 0.2 ms steps across one request's lifetime."""

    # a 2 KB request completes in ~2 ms; 14 steps of 0.2 ms cover its whole
    # splice lifecycle and run well past it (request submitted at t=1.0)
    OFFSETS = [k * 0.0002 for k in range(14)]

    def test_every_crash_offset_survives(self):
        states_seen = set()
        for offset in self.OFFSETS:
            sim, pair, primary, backup, out = run_one_crash(
                crash_at=1.0 + offset, request_at=1.0)
            states_seen.add(out["state_at_crash"])
            assert_survival(pair, primary, backup, out, 1.0 + offset)
            # a request in flight at the crash completes on the primary
            # (its splice survives at this granularity); only its teardown
            # state varies with the offset
            if out["state_at_crash"] != "IDLE":
                assert primary.meter.completions == 1
                assert backup.meter.completions == 0
        # the sweep actually caught the request in >=2 distinct in-flight
        # states of the mapping lifecycle (plus after-completion points)
        in_flight = states_seen - {"IDLE"}
        assert len(in_flight) >= 2, states_seen
        assert "ESTABLISHED" in in_flight

    def test_request_just_after_crash_rides_to_backup(self):
        for offset in (0.0001, 0.001, 0.01):
            sim, pair, primary, backup, out = run_one_crash(
                crash_at=1.0, request_at=1.0 + offset)
            assert out["state_at_crash"] == "IDLE"
            assert_survival(pair, primary, backup, out, 1.0)
            # the primary was already dead: the retry budget must carry the
            # request across the takeover to the backup
            assert backup.meter.completions == 1
            assert primary.meter.completions == 0
            assert pair.retries >= 1


class TestHeartbeatPhaseSweep:
    """Crash instant swept at hb/8 steps across two heartbeat periods."""

    PHASES = [k * HB / 8 for k in range(17)]  # 0 .. 2*HB inclusive

    def test_every_phase_bounds_detection_and_outage(self):
        detections = []
        for phase in self.PHASES:
            crash_at = 1.0 + phase
            sim, pair, primary, backup, out = run_one_crash(
                crash_at=crash_at, request_at=crash_at)
            assert_survival(pair, primary, backup, out, crash_at)
            detections.append(pair.failover_at - crash_at)
        # the phase sweep explored genuinely different alignments: the
        # detection delay varies across the sweep by almost a full interval
        assert max(detections) - min(detections) > HB * 0.5

    def test_crash_exactly_on_heartbeat_tick(self):
        # the degenerate alignment: crash scheduled at the same instant as
        # a monitor tick; ordering is deterministic either way
        crash_at = 1.0 + HB * 5  # tick times are multiples of HB
        sim, pair, primary, backup, out = run_one_crash(
            crash_at=crash_at, request_at=crash_at)
        assert_survival(pair, primary, backup, out, crash_at)
