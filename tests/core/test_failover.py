"""Tests for primary/backup distributor fault tolerance (§2.3)."""

import pytest

from repro.cluster import BackendServer, distributor_spec, paper_testbed_specs
from repro.content import ContentItem, ContentType
from repro.core import (ContentAwareDistributor, FrontendDown,
                        HaDistributorPair, UrlTable)
from repro.net import HttpRequest, Lan, Nic
from repro.sim import Simulator


def build_pair(heartbeat=0.25, misses=3, **pair_kwargs):
    sim = Simulator()
    lan = Lan(sim)
    specs = paper_testbed_specs()[:2]
    servers = {s.name: BackendServer(sim, lan, s) for s in specs}
    item = ContentItem("/site/page.html", 2048, ContentType.HTML)
    for s in servers.values():
        s.place(item)
    primary_table = UrlTable()
    primary_table.insert(item, set(servers))
    backup_table = UrlTable()
    primary = ContentAwareDistributor(sim, lan, distributor_spec(), servers,
                                      primary_table, name="dist-primary")
    backup = ContentAwareDistributor(sim, lan, distributor_spec(), servers,
                                     backup_table, name="dist-backup")
    pair = HaDistributorPair(sim, primary, backup,
                             heartbeat_interval=heartbeat,
                             misses_to_fail=misses, **pair_kwargs)
    client_nic = Nic(sim, 100, name="client")
    return sim, pair, primary, backup, servers, item, client_nic


def fetch(sim, pair, url, client_nic):
    out = {}

    def go():
        outcome = yield sim.process(pair.submit(HttpRequest(url),
                                                client_nic))
        out["outcome"] = outcome

    sim.process(go())
    # bounded run: the HA heartbeat loop never drains the event heap
    sim.run(until=sim.now + 30.0)
    return out.get("outcome")


class TestValidation:
    def test_bad_parameters(self):
        sim, pair, primary, backup, servers, item, nic = build_pair()
        with pytest.raises(ValueError):
            HaDistributorPair(sim, primary, backup, heartbeat_interval=0)
        with pytest.raises(ValueError):
            HaDistributorPair(sim, primary, backup, misses_to_fail=0)


class TestNormalOperation:
    def test_requests_go_through_primary(self):
        sim, pair, primary, backup, servers, item, nic = build_pair()
        outcome = fetch(sim, pair, item.path, nic)
        assert outcome.response.ok
        assert pair.active is primary
        assert primary.meter.completions == 1
        assert backup.meter.completions == 0

    def test_state_replicated_on_heartbeat(self):
        sim, pair, primary, backup, servers, item, nic = build_pair()
        sim.run(until=1.0)
        assert len(backup.url_table) == len(primary.url_table)
        assert pair.state_syncs >= 1
        # later mutations also flow
        new_item = ContentItem("/site/late.html", 100, ContentType.HTML)
        primary.register_content(new_item, {sorted(servers)[0]})
        sim.run(until=2.0)
        assert "/site/late.html" in backup.url_table

    def test_no_failover_while_primary_healthy(self):
        sim, pair, primary, backup, servers, item, nic = build_pair()
        sim.run(until=5.0)
        assert not pair.failed_over
        assert pair.failover_at is None
        assert pair.heartbeats >= 19


class TestFailover:
    def test_backup_takes_over_after_detection_window(self):
        sim, pair, primary, backup, servers, item, nic = build_pair(
            heartbeat=0.25, misses=3)
        sim.run(until=1.0)
        primary.crash()
        sim.run(until=3.0)
        assert pair.failed_over
        assert pair.active is backup
        # detection took between misses*hb and misses*hb + one interval
        detection = pair.failover_at - 1.0
        assert 0.5 <= detection <= 1.1
        assert pair.outage_duration == pytest.approx(0.75)

    def test_requests_fail_during_outage_window(self):
        # retry_attempts=0 restores the raw fail-fast behaviour: without a
        # retry budget the outage window is immediately visible
        sim, pair, primary, backup, servers, item, nic = build_pair(
            retry_attempts=0)
        sim.run(until=1.0)
        primary.crash()
        errors = []

        def go():
            try:
                yield sim.process(pair.submit(HttpRequest(item.path), nic))
            except FrontendDown as exc:
                errors.append(exc)

        sim.process(go())
        sim.run(until=1.5)  # still inside the 0.75 s detection window
        assert len(errors) == 1

    def test_requests_succeed_after_takeover(self):
        sim, pair, primary, backup, servers, item, nic = build_pair()
        sim.run(until=1.0)
        primary.crash()
        sim.run(until=3.0)
        outcome = fetch(sim, pair, item.path, nic)
        assert outcome.response.ok
        assert backup.meter.completions == 1

    def test_backup_serves_content_registered_before_crash(self):
        sim, pair, primary, backup, servers, item, nic = build_pair()
        late = ContentItem("/site/critical.html", 512, ContentType.HTML)
        holder = sorted(servers)[0]
        servers[holder].place(late)
        primary.register_content(late, {holder})
        sim.run(until=1.0)       # heartbeat replicates the state
        primary.crash()
        sim.run(until=3.0)
        outcome = fetch(sim, pair, late.path, nic)
        assert outcome.response.ok
        assert outcome.backend == holder

    def test_submit_retries_across_takeover_window(self):
        # regression: submit used to raise bare FrontendDown the instant
        # the primary died; with the default retry budget the request must
        # ride out the takeover and be answered by the backup
        sim, pair, primary, backup, servers, item, nic = build_pair()
        sim.run(until=1.0)
        primary.crash()
        outcome = fetch(sim, pair, item.path, nic)
        assert outcome is not None and outcome.response.ok
        assert backup.meter.completions == 1
        assert primary.meter.completions == 0
        assert pair.retries >= 1

    def test_retry_budget_exhausts_if_no_takeover(self):
        # both distributors dead: the bounded backoff must give up with
        # FrontendDown, not loop forever
        sim, pair, primary, backup, servers, item, nic = build_pair(
            retry_attempts=3, retry_backoff=0.05)
        sim.run(until=1.0)
        primary.crash()
        backup.crash()
        pair.stop()  # no takeover is coming
        errors = []

        def go():
            try:
                yield sim.process(pair.submit(HttpRequest(item.path), nic))
            except FrontendDown as exc:
                errors.append((sim.now, exc))

        sim.process(go())
        sim.run(until=5.0)
        assert len(errors) == 1
        # gave up after 0.05 + 0.1 + 0.2 seconds of backoff
        assert errors[0][0] == pytest.approx(1.35)
        assert pair.retries == 3

    def test_monitor_stops_after_failover(self):
        sim, pair, primary, backup, servers, item, nic = build_pair()
        sim.run(until=1.0)
        primary.crash()
        sim.run(until=3.0)
        beats_at_failover = pair.heartbeats
        sim.run(until=10.0)
        assert pair.heartbeats == beats_at_failover  # loop exited
