"""Integration tests for the request-level front ends."""

import pytest

from repro.cluster import (BackendServer, NfsServer, NodeSpec, SCSI_DISK_8GB,
                           distributor_spec, paper_testbed_specs)
from repro.content import ContentItem, ContentType, generate_catalog
from repro.core import (ContentAwareDistributor, FrontendDown, L4Router,
                        MappingState, UrlTable, apply_plan, full_replication,
                        partition_by_type, shared_nfs)
from repro.net import HttpRequest, Lan, Nic
from repro.sim import RngStream, Simulator


def build_cluster(n_specs=3):
    sim = Simulator()
    lan = Lan(sim)
    specs = paper_testbed_specs()[:n_specs] if n_specs else \
        paper_testbed_specs()
    servers = {s.name: BackendServer(sim, lan, s) for s in specs}
    client_nic = Nic(sim, 100, name="client")
    return sim, lan, specs, servers, client_nic


def drive(sim, frontend, requests, client_nic):
    """Submit requests sequentially; return outcomes."""
    outcomes = []

    def go():
        for req in requests:
            outcome = yield sim.process(frontend.submit(req, client_nic))
            outcomes.append(outcome)

    sim.process(go())
    sim.run()
    return outcomes


def drive_concurrent(sim, frontend, requests, client_nic):
    """Submit all requests at once (concurrent clients); return outcomes."""
    outcomes = []

    def one(req):
        outcome = yield sim.process(frontend.submit(req, client_nic))
        outcomes.append(outcome)

    for req in requests:
        sim.process(one(req))
    sim.run()
    return outcomes


class TestContentAwareDistributor:
    def make(self, n_specs=3):
        sim, lan, specs, servers, client_nic = build_cluster(n_specs)
        table = UrlTable()
        dist = ContentAwareDistributor(sim, lan, distributor_spec(),
                                       servers, table)
        return sim, lan, specs, servers, client_nic, table, dist

    def test_routes_to_the_holding_node(self):
        sim, lan, specs, servers, client_nic, table, dist = self.make()
        item = ContentItem("/only/here.html", 4096, ContentType.HTML)
        holder = specs[1].name
        servers[holder].place(item)
        table.insert(item, {holder})
        [outcome] = drive(sim, dist, [HttpRequest(item.path)], client_nic)
        assert outcome.response.ok
        assert outcome.backend == holder

    def test_unknown_url_is_503(self):
        sim, lan, specs, servers, client_nic, table, dist = self.make()
        [outcome] = drive(sim, dist, [HttpRequest("/ghost.html")],
                          client_nic)
        assert outcome.response.status == 503
        assert dist.metrics.counter("route/unknown-url").count == 1

    def test_replica_choice_balances(self):
        sim, lan, specs, servers, client_nic, table, dist = self.make()
        item = ContentItem("/rep.html", 2048, ContentType.HTML)
        for s in specs:
            servers[s.name].place(item)
        table.insert(item, {s.name for s in specs})
        outcomes = drive_concurrent(
            sim, dist, [HttpRequest(item.path) for _ in range(12)],
            client_nic)
        used = {o.backend for o in outcomes}
        assert len(used) >= 2  # load spread over replicas

    def test_pool_connection_reused_and_released(self):
        sim, lan, specs, servers, client_nic, table, dist = self.make(1)
        item = ContentItem("/x.html", 1024, ContentType.HTML)
        servers[specs[0].name].place(item)
        table.insert(item, {specs[0].name})
        drive(sim, dist, [HttpRequest(item.path) for _ in range(5)],
              client_nic)
        pool = dist.pools.pool(specs[0].name)
        assert pool.acquired == 5
        assert pool.released == 5
        assert pool.idle_count == pool.total

    def test_mapping_table_drains(self):
        sim, lan, specs, servers, client_nic, table, dist = self.make(1)
        item = ContentItem("/x.html", 1024, ContentType.HTML)
        servers[specs[0].name].place(item)
        table.insert(item, {specs[0].name})
        drive(sim, dist, [HttpRequest(item.path) for _ in range(4)],
              client_nic)
        assert len(dist.mapping) == 0
        assert dist.mapping.created == 4
        assert dist.mapping.deleted == 4

    def test_dead_replica_skipped(self):
        sim, lan, specs, servers, client_nic, table, dist = self.make()
        item = ContentItem("/ha.html", 2048, ContentType.HTML)
        a, b = specs[0].name, specs[1].name
        servers[a].place(item)
        servers[b].place(item)
        table.insert(item, {a, b})
        servers[a].crash()
        dist.view.mark_down(a)
        outcomes = drive(sim, dist,
                         [HttpRequest(item.path) for _ in range(3)],
                         client_nic)
        assert all(o.backend == b for o in outcomes)

    def test_no_replica_alive_is_503(self):
        sim, lan, specs, servers, client_nic, table, dist = self.make()
        item = ContentItem("/down.html", 2048, ContentType.HTML)
        a = specs[0].name
        servers[a].place(item)
        table.insert(item, {a})
        dist.view.mark_down(a)
        [outcome] = drive(sim, dist, [HttpRequest(item.path)], client_nic)
        assert outcome.response.status == 503

    def test_latency_includes_transfer_and_service(self):
        sim, lan, specs, servers, client_nic, table, dist = self.make(1)
        item = ContentItem("/big.html", 512 * 1024, ContentType.HTML)
        servers[specs[0].name].place(item)
        table.insert(item, {specs[0].name})
        [outcome] = drive(sim, dist, [HttpRequest(item.path)], client_nic)
        # 512 KB over two 100 Mbps hops: > 2 x 41 ms of wire time
        assert outcome.latency > 0.08

    def test_crashed_frontend_rejects(self):
        sim, lan, specs, servers, client_nic, table, dist = self.make(1)
        dist.crash()
        with pytest.raises(RuntimeError):
            next(iter(dist.submit(HttpRequest("/x.html"), client_nic)))

    def test_management_api_updates_table(self):
        sim, lan, specs, servers, client_nic, table, dist = self.make()
        item = ContentItem("/m.html", 100, ContentType.HTML)
        dist.register_content(item, {specs[0].name})
        assert "/m.html" in table
        dist.add_replica("/m.html", specs[1].name)
        assert table.locations("/m.html") == {specs[0].name, specs[1].name}
        dist.remove_replica("/m.html", specs[0].name)
        dist.unregister_content("/m.html")
        assert "/m.html" not in table

    def test_on_response_hook_fires(self):
        sim, lan, specs, servers, client_nic, table, dist = self.make(1)
        item = ContentItem("/x.html", 1024, ContentType.HTML)
        servers[specs[0].name].place(item)
        table.insert(item, {specs[0].name})
        seen = []
        dist.on_response = lambda it, resp: seen.append((it, resp.status))
        drive(sim, dist, [HttpRequest(item.path)], client_nic)
        assert seen == [(item, 200)]


class TestL4Router:
    def make(self, catalog=None):
        sim, lan, specs, servers, client_nic = build_cluster(3)
        catalog = catalog or generate_catalog(50, rng=RngStream(5))
        plan = full_replication(catalog, [s.name for s in specs])
        apply_plan(plan, catalog, servers)

        def resolver(url):
            path = url.split("?")[0]
            return catalog.get(path) if path in catalog else None

        router = L4Router(sim, lan, distributor_spec(), servers, resolver)
        return sim, specs, servers, client_nic, catalog, router

    def test_serves_from_any_node(self):
        sim, specs, servers, client_nic, catalog, router = self.make()
        paths = catalog.paths()[:9]
        outcomes = drive(sim, router,
                         [HttpRequest(p) for p in paths], client_nic)
        assert all(o.response.ok for o in outcomes)

    def test_content_blind_spread(self):
        """The router spreads one URL across many nodes -- the content-blind
        behaviour that shrinks per-node cache effectiveness."""
        sim, specs, servers, client_nic, catalog, router = self.make()
        path = catalog.paths()[0]
        outcomes = drive_concurrent(
            sim, router, [HttpRequest(path) for _ in range(12)], client_nic)
        assert len({o.backend for o in outcomes}) >= 2

    def test_unknown_url_404(self):
        sim, specs, servers, client_nic, catalog, router = self.make()
        [outcome] = drive(sim, router, [HttpRequest("/ghost.xyz")],
                          client_nic)
        assert outcome.response.status == 404

    def test_weighted_least_connection_prefers_big_nodes_under_load(self):
        sim, lan, specs, servers, client_nic = build_cluster(0)  # all 9
        catalog = generate_catalog(60, rng=RngStream(6))
        plan = full_replication(catalog, [s.name for s in specs])
        apply_plan(plan, catalog, servers)
        router = L4Router(sim, lan, distributor_spec(), servers,
                          lambda url: catalog.get(url.split("?")[0]))
        paths = catalog.paths()
        outcomes = drive(sim, router,
                         [HttpRequest(paths[i % len(paths)])
                          for i in range(45)], client_nic)
        by_node = {}
        for o in outcomes:
            by_node[o.backend] = by_node.get(o.backend, 0) + 1
        # the 350 MHz nodes carry more than the 150 MHz ones in aggregate
        fast = sum(v for k, v in by_node.items() if k.startswith("s350"))
        slow = sum(v for k, v in by_node.items() if k.startswith("s150"))
        assert fast > slow
