"""End-to-end tests of the packet-level splicing distributor (§2.2).

Real TCP client sockets talk to the VIP; real backend listener sockets sit
behind pre-forked persistent connections; the distributor relays by header
rewriting.  These tests check the mechanism itself: handshake interception,
binding, relaying, FIN handling, connection reuse.
"""

import pytest

from repro.content import ContentItem, ContentType
from repro.core import (MappingState, SplicingDistributor, UrlTable)
from repro.net import (Address, Host, HttpRequest, HttpResponse, HttpVersion,
                       Network, TcpState)
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def net(sim):
    return Network(sim)


def start_backend(sim, net, ip, name):
    """A persistent-connection HTTP backend echoing sized responses."""
    host = Host(net, ip)
    served = []

    def app(sock):
        def loop():
            while sock.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
                payload, nbytes = yield sock.recv()
                request: HttpRequest = payload
                served.append((name, request.url))
                response = HttpResponse(request=request,
                                        content_length=1000,
                                        served_by=name)
                sock.send(response, response.wire_bytes)

        sim.process(loop(), name=f"app:{name}")

    host.listen(80, app)
    return host, served


def build(sim, net, backends=("s1",), prefork=2):
    table = UrlTable()
    addrs = {}
    served_logs = {}
    for i, name in enumerate(backends):
        ip = f"10.0.1.{i + 1}"
        _host, served = start_backend(sim, net, ip, name)
        addrs[name] = Address(ip, 80)
        served_logs[name] = served
    dist = SplicingDistributor(sim, net, table, addrs, prefork=prefork)
    done = []
    dist.prefork_all().add_callback(lambda ev: done.append(True))
    sim.run(until=0.01)
    assert done, "prefork did not complete"
    return dist, table, served_logs


def client_fetch(sim, net, url, version=HttpVersion.HTTP_1_1,
                 client_ip="10.0.2.1", close_after=True):
    """One client connection fetching one URL through the VIP."""
    host = Host(net, client_ip)
    result = {}

    def go():
        sock = host.socket()
        yield sock.connect(Address("10.0.0.100", 80))
        request = HttpRequest(url, version=version)
        sock.send(request, request.wire_bytes)
        payload, nbytes = yield sock.recv()
        result["response"] = payload
        result["nbytes"] = nbytes
        if version is HttpVersion.HTTP_1_0:
            # the distributor FINs first; wait for CLOSE_WAIT then close
            while sock.state is not TcpState.CLOSE_WAIT:
                yield sim.timeout(1e-4)
            yield sock.close()
        elif close_after:
            yield sock.close()
        result["sock"] = sock

    proc = sim.process(go())
    return proc, result


class TestBasicSplice:
    def test_request_routed_and_response_relayed(self, sim, net):
        dist, table, served = build(sim, net, backends=("s1",))
        item = ContentItem("/a.html", 1000, ContentType.HTML)
        table.insert(item, {"s1"})
        proc, result = client_fetch(sim, net, "/a.html")
        sim.run()
        assert result["response"].served_by == "s1"
        assert served["s1"] == [("s1", "/a.html")]
        assert dist.relayed_to_server == 1
        assert dist.relayed_to_client == 1

    def test_mapping_entry_reaches_closed_and_is_deleted(self, sim, net):
        dist, table, served = build(sim, net)
        table.insert(ContentItem("/a.html", 1000, ContentType.HTML), {"s1"})
        proc, result = client_fetch(sim, net, "/a.html")
        sim.run()
        assert len(dist.mapping) == 0
        assert dist.mapping.created == 1
        assert dist.mapping.deleted == 1

    def test_client_socket_closes_cleanly(self, sim, net):
        dist, table, served = build(sim, net)
        table.insert(ContentItem("/a.html", 1000, ContentType.HTML), {"s1"})
        proc, result = client_fetch(sim, net, "/a.html")
        sim.run()
        assert result["sock"].state is TcpState.CLOSED
        assert not result["sock"].reset

    def test_pooled_connection_returned_to_available_list(self, sim, net):
        dist, table, served = build(sim, net, prefork=2)
        table.insert(ContentItem("/a.html", 1000, ContentType.HTML), {"s1"})
        proc, result = client_fetch(sim, net, "/a.html")
        sim.run()
        assert dist.idle_legs("s1") == 2

    def test_unknown_url_resets_connection(self, sim, net):
        dist, table, served = build(sim, net)
        host = Host(net, "10.0.2.9")
        state = {}

        def go():
            sock = host.socket()
            state["sock"] = sock
            yield sock.connect(Address("10.0.0.100", 80))
            request = HttpRequest("/ghost.html")
            sock.send(request, request.wire_bytes)

        sim.process(go())
        sim.run(until=1.0)
        # the distributor found no record and reset the connection
        assert state["sock"].reset
        assert state["sock"].state is TcpState.CLOSED
        assert len(dist.mapping) == 0


class TestConnectionReuse:
    def test_sequential_clients_reuse_same_leg(self, sim, net):
        dist, table, served = build(sim, net, prefork=1)
        table.insert(ContentItem("/a.html", 1000, ContentType.HTML), {"s1"})
        for i in range(3):
            proc, result = client_fetch(sim, net, "/a.html",
                                        client_ip=f"10.0.2.{i + 1}")
            sim.run()
            assert result["response"].served_by == "s1"
        leg = dist._legs[list(dist._legs)[0]]
        assert leg.uses == 3
        # sequence numbers accumulated across spliced requests
        assert leg.snd_nxt > leg.isn + 1

    def test_concurrent_clients_on_separate_legs(self, sim, net):
        dist, table, served = build(sim, net, prefork=2)
        table.insert(ContentItem("/a.html", 1000, ContentType.HTML), {"s1"})
        p1, r1 = client_fetch(sim, net, "/a.html", client_ip="10.0.2.1")
        p2, r2 = client_fetch(sim, net, "/a.html", client_ip="10.0.2.2")
        sim.run()
        assert r1["response"].served_by == "s1"
        assert r2["response"].served_by == "s1"
        assert dist.idle_legs("s1") == 2

    def test_client_waits_when_all_legs_busy(self, sim, net):
        dist, table, served = build(sim, net, prefork=1)
        table.insert(ContentItem("/a.html", 1000, ContentType.HTML), {"s1"})
        p1, r1 = client_fetch(sim, net, "/a.html", client_ip="10.0.2.1")
        p2, r2 = client_fetch(sim, net, "/a.html", client_ip="10.0.2.2")
        sim.run()
        # both eventually served through the single pre-forked connection
        assert r1["response"].served_by == "s1"
        assert r2["response"].served_by == "s1"


class TestContentAwareRouting:
    def test_requests_follow_content_location(self, sim, net):
        dist, table, served = build(sim, net, backends=("s1", "s2"))
        table.insert(ContentItem("/on1.html", 1000, ContentType.HTML),
                     {"s1"})
        table.insert(ContentItem("/on2.html", 1000, ContentType.HTML),
                     {"s2"})
        p1, r1 = client_fetch(sim, net, "/on1.html", client_ip="10.0.2.1")
        sim.run()
        p2, r2 = client_fetch(sim, net, "/on2.html", client_ip="10.0.2.2")
        sim.run()
        assert r1["response"].served_by == "s1"
        assert r2["response"].served_by == "s2"
        assert served["s1"] == [("s1", "/on1.html")]
        assert served["s2"] == [("s2", "/on2.html")]


class TestHttp10Teardown:
    def test_distributor_sets_fin_on_last_relayed_packet(self, sim, net):
        """§2.2: 'If the client use HTTP 1.0 protocol, the distributor will
        set the FIN flag instead of server when it relay the last packet.'"""
        dist, table, served = build(sim, net)
        table.insert(ContentItem("/a.html", 1000, ContentType.HTML), {"s1"})
        proc, result = client_fetch(sim, net, "/a.html",
                                    version=HttpVersion.HTTP_1_0)
        sim.run()
        assert result["response"].served_by == "s1"
        assert result["sock"].state is TcpState.CLOSED
        assert len(dist.mapping) == 0
        assert dist.idle_legs("s1") == 1 * 2  # leg released
