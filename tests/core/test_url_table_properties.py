"""Property-based tests for the URL table (stdlib-only, no hypothesis).

A seeded ``random.Random`` drives long random interleavings of the table's
mutation and lookup operations; after every step the table must agree with
a trivially-correct reference model (a dict of path -> set-of-locations).
The reference never sees the multi-level hash structure or the LRU entry
cache, so any divergence -- in particular a stale cache entry surviving a
mutation -- shows up as a model mismatch.

Path universe: leaf names always end in ``.html`` and directory names never
do, so no generated path is a prefix of another (the table rejects
document/directory collisions by design; that behaviour has its own test).
"""

import random

import pytest

from repro.content import ContentItem, ContentType
from repro.core import UrlTable
from repro.core.url_table import UrlTableError

NODES = ["n1", "n2", "n3", "n4"]

# ~48 distinct paths over a 3-deep directory tree: small enough that the
# generator frequently re-picks a path (duplicate inserts, re-inserts after
# removal, lookups of removed documents), which is where cache bugs live.
PATHS = tuple(
    f"/{top}/{mid}/f{i}.html"
    for top in ("a", "b")
    for mid in ("x", "y", "z")
    for i in range(8)
)


def item(path):
    return ContentItem(path, 1024, ContentType.HTML)


class Model:
    """Dict-of-sets reference: the obviously-correct URL table."""

    def __init__(self):
        self.docs: dict[str, set[str]] = {}

    def insert(self, path, locations):
        if path in self.docs:
            raise KeyError(path)
        self.docs[path] = set(locations)

    def remove(self, path):
        if path not in self.docs:
            raise KeyError(path)
        del self.docs[path]

    def add_location(self, path, node):
        if path not in self.docs:
            raise KeyError(path)
        self.docs[path].add(node)

    def remove_location(self, path, node):
        if path not in self.docs or node not in self.docs[path]:
            raise KeyError(path)
        if len(self.docs[path]) == 1:
            raise KeyError(path)  # table refuses to drop the last copy
        self.docs[path].discard(node)

    def lookup(self, path):
        if path not in self.docs:
            raise KeyError(path)
        return self.docs[path]


def check_agreement(table, model):
    assert len(table) == len(model.docs)
    by_path = {r.path: set(r.locations) for r in table.records()}
    assert by_path == model.docs
    for path, locations in model.docs.items():
        assert path in table
        assert table.locations(path) == locations


def run_random_ops(seed, n_ops, cache_entries):
    rng = random.Random(seed)
    table = UrlTable(cache_entries=cache_entries)
    model = Model()
    counts = {"insert": 0, "remove": 0, "add_location": 0,
              "remove_location": 0, "lookup": 0, "errors": 0}
    for _ in range(n_ops):
        # lookup-heavy mix, mirroring real traffic against the distributor
        op = rng.choice(["insert", "insert", "remove", "add_location",
                         "remove_location", "lookup", "lookup", "lookup"])
        path = rng.choice(PATHS)
        counts[op] += 1
        if op == "insert":
            locations = set(rng.sample(NODES, rng.randint(1, len(NODES))))
            try:
                model.insert(path, locations)
            except KeyError:
                counts["errors"] += 1
                with pytest.raises(UrlTableError):
                    table.insert(item(path), locations)
            else:
                record = table.insert(item(path), locations)
                assert set(record.locations) == locations
        elif op == "remove":
            try:
                model.remove(path)
            except KeyError:
                counts["errors"] += 1
                with pytest.raises(UrlTableError):
                    table.remove(path)
            else:
                record = table.remove(path)
                assert record.path == path
        elif op == "add_location":
            node = rng.choice(NODES)
            try:
                model.add_location(path, node)
            except KeyError:
                counts["errors"] += 1
                with pytest.raises(UrlTableError):
                    table.add_location(path, node)
            else:
                record = table.add_location(path, node)
                assert node in record.locations
        elif op == "remove_location":
            node = rng.choice(NODES)
            try:
                model.remove_location(path, node)
            except KeyError:
                counts["errors"] += 1
                with pytest.raises(UrlTableError):
                    table.remove_location(path, node)
            else:
                record = table.remove_location(path, node)
                assert node not in record.locations
        else:  # lookup
            try:
                expected = model.lookup(path)
            except KeyError:
                counts["errors"] += 1
                with pytest.raises(UrlTableError):
                    table.lookup(path)
            else:
                record = table.lookup(path)
                assert record.path == path
                # the cache must never serve a record whose locations have
                # drifted from the model (i.e. a stale pre-mutation entry)
                assert set(record.locations) == expected
        check_agreement(table, model)
    return table, model, counts


class TestRandomInterleavings:
    @pytest.mark.parametrize("seed", range(6))
    def test_table_agrees_with_reference_model(self, seed):
        table, model, counts = run_random_ops(seed, n_ops=400,
                                              cache_entries=512)
        # the run exercised both the success and the error path of every op
        assert all(counts[op] > 0 for op in counts)
        assert counts["errors"] > 0

    @pytest.mark.parametrize("seed", range(3))
    def test_tiny_cache_forces_evictions_and_still_agrees(self, seed):
        # capacity 4 over ~48 hot paths: constant evictions + reinsertion
        table, _, _ = run_random_ops(seed + 100, n_ops=400, cache_entries=4)
        assert table.cache_hits < table.lookups

    def test_cache_disabled_still_agrees(self):
        table, _, _ = run_random_ops(7, n_ops=300, cache_entries=0)
        assert table.cache_hits == 0

    @pytest.mark.parametrize("seed", [11, 12])
    def test_sync_from_reproduces_final_state(self, seed):
        table, model, _ = run_random_ops(seed, n_ops=300, cache_entries=64)
        replica = UrlTable()
        assert replica.sync_from(table)
        check_agreement(replica, model)
        assert replica.version == table.version
        assert not replica.sync_from(table)  # versions match: no-op


class TestCacheInvalidation:
    """Directed regressions for the LRU entry cache vs. mutations."""

    def test_lookup_after_remove_raises_despite_cache(self):
        table = UrlTable()
        table.insert(item("/a/x/f0.html"), {"n1"})
        table.lookup("/a/x/f0.html")  # now cached
        table.remove("/a/x/f0.html")
        with pytest.raises(UrlTableError):
            table.lookup("/a/x/f0.html")

    def test_reinsert_after_remove_serves_fresh_record(self):
        table = UrlTable()
        old = table.insert(item("/a/x/f0.html"), {"n1"})
        table.lookup("/a/x/f0.html")  # caches the old record
        table.remove("/a/x/f0.html")
        table.insert(item("/a/x/f0.html"), {"n2", "n3"})
        record = table.lookup("/a/x/f0.html")
        assert record is not old
        assert set(record.locations) == {"n2", "n3"}

    def test_cached_record_reflects_location_mutations(self):
        # add/remove_location mutate the record in place, so a cache hit
        # after them must observe the new location set
        table = UrlTable()
        table.insert(item("/a/x/f0.html"), {"n1"})
        table.lookup("/a/x/f0.html")
        table.add_location("/a/x/f0.html", "n2")
        assert set(table.lookup("/a/x/f0.html").locations) == {"n1", "n2"}
        table.remove_location("/a/x/f0.html", "n1")
        assert set(table.lookup("/a/x/f0.html").locations) == {"n2"}

    def test_eviction_then_relookup_walks_the_tree_again(self):
        table = UrlTable(cache_entries=1)
        table.insert(item("/a/x/f0.html"), {"n1"})
        table.insert(item("/a/x/f1.html"), {"n1"})
        table.lookup("/a/x/f0.html")
        table.lookup("/a/x/f1.html")  # evicts f0
        levels_before = table.levels_touched
        table.lookup("/a/x/f0.html")  # miss: full 3-level walk again
        assert table.levels_touched == levels_before + 3
        assert table.cache_hits == 0


class TestStructuralRejections:
    """The prefix-collision cases the random universe deliberately avoids."""

    def test_document_where_directory_exists_is_duplicate(self):
        table = UrlTable()
        table.insert(item("/a/x/f0.html"), {"n1"})
        with pytest.raises(UrlTableError):
            table.insert(item("/a/x"), {"n1"})

    def test_directory_through_document_rejected(self):
        table = UrlTable()
        table.insert(item("/a/x"), {"n1"})
        with pytest.raises(UrlTableError):
            table.insert(item("/a/x/f0.html"), {"n1"})

    def test_empty_location_set_rejected(self):
        table = UrlTable()
        with pytest.raises(UrlTableError):
            table.insert(item("/a/x/f0.html"), set())
