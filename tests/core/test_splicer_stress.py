"""Stress/property tests for the packet-level splicing distributor.

Random fleets of clients fetch random documents through the VIP; whatever
the interleaving, the §2.2 invariants must hold: every request served by a
node that owns the document, every mapping entry torn down, every
pre-forked connection back on the available list with its sequence numbers
advanced consistently.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.content import ContentItem, ContentType
from repro.core import SplicingDistributor, UrlTable
from repro.net import Address, Host, HttpRequest, HttpResponse, Network, TcpState
from repro.net.http import HttpVersion
from repro.sim import Simulator


def start_backend(sim, net, ip, name):
    host = Host(net, ip)

    def app(sock):
        def loop():
            while sock.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
                payload, nbytes = yield sock.recv()
                response = HttpResponse(request=payload,
                                        content_length=512, served_by=name)
                sock.send(response, response.wire_bytes)

        sim.process(loop())

    host.listen(80, app)
    return host


def build_world(n_backends, prefork):
    sim = Simulator()
    net = Network(sim)
    table = UrlTable()
    addrs = {}
    for i in range(n_backends):
        name = f"s{i}"
        start_backend(sim, net, f"10.0.1.{i + 1}", name)
        addrs[name] = Address(f"10.0.1.{i + 1}", 80)
    dist = SplicingDistributor(sim, net, table, addrs, prefork=prefork)
    done = []
    dist.prefork_all().add_callback(lambda ev: done.append(True))
    sim.run(until=0.05)
    assert done
    return sim, net, table, dist


def spawn_client(sim, net, ip, urls, results, versions):
    host = Host(net, ip)

    def go():
        for url, version in zip(urls, versions):
            sock = host.socket()
            yield sock.connect(Address("10.0.0.100", 80))
            request = HttpRequest(url, version=version)
            sock.send(request, request.wire_bytes)
            payload, _ = yield sock.recv()
            results.append((url, payload.served_by))
            if version is HttpVersion.HTTP_1_0:
                while sock.state is not TcpState.CLOSE_WAIT:
                    yield sim.timeout(1e-4)
                yield sock.close()
            else:
                yield sock.close()

    return sim.process(go())


class TestSplicerStress:
    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_random_fleets_preserve_invariants(self, data):
        n_backends = data.draw(st.integers(1, 3), label="backends")
        n_docs = data.draw(st.integers(1, 5), label="docs")
        n_clients = data.draw(st.integers(1, 5), label="clients")
        prefork = data.draw(st.integers(1, 3), label="prefork")
        sim, net, table, dist = build_world(n_backends, prefork)

        docs = []
        for d in range(n_docs):
            item = ContentItem(f"/d{d}.html", 512, ContentType.HTML)
            owner = f"s{d % n_backends}"
            table.insert(item, {owner})
            docs.append((item.path, owner))

        results = []
        for c in range(n_clients):
            picks = data.draw(st.lists(st.integers(0, n_docs - 1),
                                       min_size=1, max_size=3),
                              label=f"picks{c}")
            urls = [docs[p][0] for p in picks]
            versions = [data.draw(st.sampled_from(
                [HttpVersion.HTTP_1_0, HttpVersion.HTTP_1_1]),
                label=f"v{c}") for _ in picks]
            spawn_client(sim, net, f"10.0.2.{c + 1}", urls, results,
                         versions)
        sim.run(until=30.0)

        expected = {path: owner for path, owner in docs}
        # every request served by the document's owner
        for url, served_by in results:
            assert served_by == expected[url]
        total_requests = len(results)
        assert dist.relayed_to_server == total_requests
        assert dist.relayed_to_client == total_requests
        # every connection torn down, every leg back on the free list
        assert len(dist.mapping) == 0
        for backend in expected.values():
            assert dist.idle_legs(backend) == prefork
        # sequence numbers on every leg advanced past the ISN exactly by
        # the bytes spliced through it
        for leg in dist._legs.values():
            assert leg.snd_nxt >= leg.isn + 1
            assert leg.bound_entry is None
