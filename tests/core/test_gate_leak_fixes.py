"""Regression tests for real findings fixed by `repro check --deep`.

Each test pins one data-plane bug the whole-program analyzer surfaced:
an ungated overload read in the shed path (GATE002), an admission slot
leaked when instrumentation raises (LEAK003), and a mapping entry
stranded by a raising transition hook (LEAK002).
"""

import pytest

from repro.cluster import (BackendServer, distributor_spec,
                           paper_testbed_specs)
from repro.core import ContentAwareDistributor, OverloadConfig, UrlTable
from repro.net import HttpRequest, Lan, Nic
from repro.sim import Simulator


def make_dist(overload=None):
    sim = Simulator()
    lan = Lan(sim)
    specs = paper_testbed_specs()[:2]
    servers = {s.name: BackendServer(sim, lan, s) for s in specs}
    dist = ContentAwareDistributor(sim, lan, distributor_spec(), servers,
                                   UrlTable(), overload=overload)
    return sim, dist, Nic(sim, 100, name="client")


class _Span:
    def __init__(self):
        self.trace_id = 1
        self.end = None


class BoomOnAdmissionTracer:
    """A tracer whose admission point raises -- instrumentation must
    never be able to leak an admission slot."""

    def new_trace(self):
        return 1

    def begin(self, *args, **kwargs):
        return _Span()

    def end(self, span, **kwargs):
        span.end = 0.0

    def point(self, kind, name, **kwargs):
        if kind == "admission":
            raise RuntimeError("tracer exploded")


def test_shed_without_overload_control_returns_default_retry_after():
    # GATE002 fix: _shed must not dereference self.overload unguarded
    sim, dist, client_nic = make_dist(overload=None)
    outcome = dist._shed(HttpRequest("/x.html"), 0.0, "overload/shed")
    assert outcome.shed
    assert outcome.response.status == 503
    assert outcome.retry_after == 0.0


def test_admission_slot_released_when_tracer_raises():
    # LEAK003 fix: the slot is released even when the "admitted" trace
    # point raises before the serve begins
    sim, dist, client_nic = make_dist(overload=OverloadConfig())
    dist.tracer = BoomOnAdmissionTracer()
    errors = []

    def go():
        try:
            yield sim.process(dist.submit(HttpRequest("/x.html"),
                                          client_nic))
        except RuntimeError as exc:
            errors.append(str(exc))

    sim.process(go())
    sim.run()
    assert errors == ["tracer exploded"]
    assert dist.overload.admission.inflight == 0
    assert dist.inflight == 0


def test_raising_transition_hook_does_not_strand_mapping_entry():
    # LEAK002 fix: the ESTABLISHED transition runs under the RST
    # handler, so a raising lifecycle hook leaves the table clean
    sim, dist, client_nic = make_dist(overload=None)

    def hook(entry, old, new):
        if new.name == "ESTABLISHED":
            raise RuntimeError("hook rejected transition")

    dist.mapping.on_transition = hook
    errors = []

    def go():
        try:
            yield sim.process(dist.submit(HttpRequest("/x.html"),
                                          client_nic))
        except RuntimeError as exc:
            errors.append(str(exc))

    sim.process(go())
    sim.run()
    assert errors == ["hook rejected transition"]
    assert len(dist.mapping) == 0
