"""Tests for the §3.3 load metrics and auto-replication."""

import pytest

from repro.content import ContentItem, ContentType
from repro.core import (AutoReplicator, LoadAccountant, UrlTable)
from repro.net import HttpRequest, HttpResponse
from repro.sim import Simulator


def response(path, server, service_time, status=200):
    req = HttpRequest(path)
    return HttpResponse(request=req, status=status, content_length=1000,
                        served_by=server, service_time=service_time)


def static_item(path, size=1000):
    return ContentItem(path, size, ContentType.HTML)


def cgi_item(path):
    return ContentItem(path, 1000, ContentType.CGI, cpu_work=0.05)


class TestLoadAccountant:
    def test_validation(self):
        with pytest.raises(ValueError):
            LoadAccountant({})
        with pytest.raises(ValueError):
            LoadAccountant({"a": 0.0})

    def test_li_formula_static(self):
        """l_i = (1 + 9) x processing_time for static content (§3.3)."""
        acc = LoadAccountant({"s1": 1.0})
        acc.record(static_item("/a.html"), response("/a.html", "s1", 0.02))
        assert acc.interval_loads()["s1"] == pytest.approx(10 * 0.02)

    def test_li_formula_dynamic(self):
        """l_i = (10 + 5) x processing_time for dynamic content (§3.3)."""
        acc = LoadAccountant({"s1": 1.0})
        acc.record(cgi_item("/c.cgi"), response("/c.cgi", "s1", 0.1))
        assert acc.interval_loads()["s1"] == pytest.approx(15 * 0.1)

    def test_weight_divides_load(self):
        """L_j = sum(l_i x freq) / Weight."""
        acc = LoadAccountant({"big": 2.0, "small": 0.5})
        acc.record(static_item("/a"), response("/a", "big", 0.02))
        acc.record(static_item("/a"), response("/a", "small", 0.02))
        loads = acc.interval_loads()
        assert loads["small"] == pytest.approx(4 * loads["big"])

    def test_frequency_accumulates(self):
        acc = LoadAccountant({"s1": 1.0})
        for _ in range(5):
            acc.record(static_item("/a"), response("/a", "s1", 0.01))
        assert acc.interval_loads()["s1"] == pytest.approx(5 * 10 * 0.01)
        assert acc.requests_seen == 5

    def test_failures_and_unknown_servers_ignored(self):
        acc = LoadAccountant({"s1": 1.0})
        acc.record(static_item("/a"), response("/a", "s1", 0.01, status=404))
        acc.record(static_item("/a"), response("/a", "ghost", 0.01))
        acc.record(None, response("/a", "s1", 0.01))
        assert acc.interval_loads()["s1"] == 0.0
        assert acc.requests_seen == 0

    def test_reset(self):
        acc = LoadAccountant({"s1": 1.0})
        acc.record(static_item("/a"), response("/a", "s1", 0.01))
        acc.reset()
        assert acc.interval_loads()["s1"] == 0.0
        assert acc.requests_seen == 0


class RecordingActuator:
    """Test double satisfying the ReplicationActuator protocol."""

    def __init__(self, url_table):
        self.url_table = url_table
        self.calls = []

    def replicate(self, path, node):
        self.calls.append(("replicate", path, node))
        self.url_table.add_location(path, node)
        return
        yield

    def offload(self, path, node):
        self.calls.append(("offload", path, node))
        self.url_table.remove_location(path, node)
        return
        yield


def build_balancer(threshold=0.3, min_requests=1, max_actions=4):
    sim = Simulator()
    table = UrlTable()
    hot = static_item("/hot.html")
    cold = static_item("/cold.html")
    table.insert(hot, {"s1"})
    table.insert(cold, {"s2"})
    acc = LoadAccountant({"s1": 1.0, "s2": 1.0, "s3": 1.0})
    actuator = RecordingActuator(table)
    balancer = AutoReplicator(sim, acc, table, actuator,
                              interval=1.0, threshold=threshold,
                              min_requests=min_requests,
                              max_actions_per_interval=max_actions)
    return sim, table, acc, actuator, balancer, hot, cold


class TestClassification:
    def test_overloaded_and_underutilized_detected(self):
        sim, table, acc, actuator, balancer, hot, cold = build_balancer()
        # s1 very hot, s2 mild, s3 idle
        for _ in range(10):
            acc.record(hot, response(hot.path, "s1", 0.05))
        acc.record(cold, response(cold.path, "s2", 0.02))
        over, under, loads = balancer.classify()
        assert over == ["s1"]
        assert "s3" in under

    def test_balanced_cluster_has_no_actions(self):
        sim, table, acc, actuator, balancer, hot, cold = build_balancer()
        for server in ("s1", "s2", "s3"):
            acc.record(hot, response(hot.path, server, 0.02))
        over, under, _ = balancer.classify()
        assert over == [] and under == []

    def test_idle_cluster_classifies_nothing(self):
        sim, table, acc, actuator, balancer, hot, cold = build_balancer()
        over, under, _ = balancer.classify()
        assert over == [] and under == []


class TestRebalanceOnce:
    def run_once(self, balancer, sim):
        proc = sim.process(balancer.rebalance_once())
        sim.run()
        return proc

    def test_replicates_hot_content_to_underutilized_node(self):
        sim, table, acc, actuator, balancer, hot, cold = build_balancer()
        table.lookup(hot.path)  # give it a hit so it ranks as popular
        for _ in range(10):
            acc.record(hot, response(hot.path, "s1", 0.05))
        self.run_once(balancer, sim)
        kinds = [c[0] for c in actuator.calls]
        assert "replicate" in kinds
        replicated = [c for c in actuator.calls if c[0] == "replicate"]
        # hot content got copied to an idle node
        assert replicated[0][1] == hot.path
        assert replicated[0][2] in ("s2", "s3")
        assert balancer.history

    def test_offloads_from_overloaded_when_replicated(self):
        sim, table, acc, actuator, balancer, hot, cold = build_balancer()
        table.add_location(hot.path, "s2")   # hot already has 2 copies
        table.lookup(hot.path)
        for _ in range(10):
            acc.record(hot, response(hot.path, "s1", 0.05))
        acc.record(cold, response(cold.path, "s2", 0.02))
        self.run_once(balancer, sim)
        offloads = [c for c in actuator.calls if c[0] == "offload"]
        assert ("offload", hot.path, "s1") in offloads

    def test_every_document_keeps_at_least_one_copy(self):
        """Offloading may follow a replicate (a migration), but no document
        may ever end up with zero locations."""
        sim, table, acc, actuator, balancer, hot, cold = build_balancer()
        table.lookup(cold.path)
        for _ in range(10):
            acc.record(cold, response(cold.path, "s2", 0.05))
        acc.record(hot, response(hot.path, "s1", 0.001))
        self.run_once(balancer, sim)
        for record in table.records():
            assert len(record.locations) >= 1

    def test_min_requests_gates_rebalancing(self):
        sim, table, acc, actuator, balancer, hot, cold = build_balancer(
            min_requests=100)
        for _ in range(10):
            acc.record(hot, response(hot.path, "s1", 0.05))
        self.run_once(balancer, sim)
        assert actuator.calls == []
        assert acc.requests_seen == 0  # interval still resets

    def test_max_actions_cap(self):
        sim, table, acc, actuator, balancer, hot, cold = build_balancer(
            max_actions=1)
        table.lookup(hot.path)
        table.lookup(cold.path)
        for _ in range(10):
            acc.record(hot, response(hot.path, "s1", 0.05))
            acc.record(cold, response(cold.path, "s2", 0.04))
        self.run_once(balancer, sim)
        assert len(actuator.calls) <= 1

    def test_interval_resets_after_rebalance(self):
        sim, table, acc, actuator, balancer, hot, cold = build_balancer()
        for _ in range(10):
            acc.record(hot, response(hot.path, "s1", 0.05))
        self.run_once(balancer, sim)
        assert acc.requests_seen == 0


class TestPeriodicLoop:
    def test_start_runs_intervals(self):
        sim, table, acc, actuator, balancer, hot, cold = build_balancer()
        balancer.start()
        sim.run(until=3.5)
        assert balancer.intervals_run == 3

    def test_stop_halts_loop(self):
        sim, table, acc, actuator, balancer, hot, cold = build_balancer()
        balancer.start()
        sim.run(until=1.5)
        balancer.stop()
        sim.run(until=10.0)
        assert balancer.intervals_run == 1

    def test_validation(self):
        sim, table, acc, actuator, balancer, hot, cold = build_balancer()
        with pytest.raises(ValueError):
            AutoReplicator(sim, acc, table, actuator, interval=0)
        with pytest.raises(ValueError):
            AutoReplicator(sim, acc, table, actuator, threshold=0)
