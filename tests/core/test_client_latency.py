"""Tests for the WAN client-latency knob on the front ends."""

import pytest

from repro.cluster import BackendServer, distributor_spec, paper_testbed_specs
from repro.content import ContentItem, ContentType
from repro.core import ContentAwareDistributor, UrlTable
from repro.net import HttpRequest, Lan, Nic
from repro.sim import Simulator


def build(client_latency):
    sim = Simulator()
    lan = Lan(sim)
    spec = paper_testbed_specs()[5]
    server = BackendServer(sim, lan, spec)
    table = UrlTable()
    item = ContentItem("/x.html", 2048, ContentType.HTML)
    server.place(item)
    table.insert(item, {spec.name})
    dist = ContentAwareDistributor(sim, lan, distributor_spec(),
                                   {spec.name: server}, table,
                                   client_latency=client_latency)
    nic = Nic(sim, 100, name="client")
    return sim, dist, item, nic


def fetch(sim, dist, url, nic):
    out = []

    def go():
        out.append((yield sim.process(dist.submit(HttpRequest(url), nic))))

    sim.process(go())
    sim.run()
    return out[0]


class TestClientLatency:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            build(-0.01)

    def test_lan_default_is_zero(self):
        sim, dist, item, nic = build(0.0)
        assert dist.client_latency == 0.0

    def test_wan_latency_adds_exactly_four_one_way_delays(self):
        """Handshake (3 one-way legs: SYN, SYN-ACK, ACK+request piggyback
        counted as 3) plus the response leg = 4 one-way delays."""
        rtt = 0.050
        sim0, dist0, item0, nic0 = build(0.0)
        base = fetch(sim0, dist0, item0.path, nic0).latency
        sim1, dist1, item1, nic1 = build(rtt)
        wan = fetch(sim1, dist1, item1.path, nic1).latency
        assert wan - base == pytest.approx(4 * rtt, rel=0.01)

    def test_response_still_correct_over_wan(self):
        sim, dist, item, nic = build(0.030)
        outcome = fetch(sim, dist, item.path, nic)
        assert outcome.response.ok
        assert outcome.response.content_length == 2048
