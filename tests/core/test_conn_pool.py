"""Tests for the pre-forked persistent connection pools."""

import pytest

from repro.core import ConnectionPool, PoolManager
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestConnectionPool:
    def test_validation(self, sim):
        with pytest.raises(ValueError):
            ConnectionPool(sim, "b", prefork=0)
        with pytest.raises(ValueError):
            ConnectionPool(sim, "b", prefork=4, max_size=2)

    def test_prefork_creates_idle_connections(self, sim):
        pool = ConnectionPool(sim, "b", prefork=3)
        assert pool.idle_count == 3
        assert pool.total == 3
        assert pool.busy_count == 0

    def test_acquire_release_cycle(self, sim):
        pool = ConnectionPool(sim, "b", prefork=2)
        got = []

        def go():
            conn = yield pool.acquire()
            got.append(conn)
            assert conn.in_use
            assert pool.busy_count == 1
            pool.release(conn)
            assert pool.idle_count == 2

        sim.process(go())
        sim.run()
        assert got[0].uses == 1

    def test_connections_are_reused(self, sim):
        pool = ConnectionPool(sim, "b", prefork=1)
        ids = []

        def go():
            for _ in range(3):
                conn = yield pool.acquire()
                ids.append(conn.conn_id)
                pool.release(conn)

        sim.process(go())
        sim.run()
        assert len(set(ids)) == 1   # same pre-forked connection every time

    def test_growth_up_to_max(self, sim):
        pool = ConnectionPool(sim, "b", prefork=1, max_size=2)
        held = []

        def go():
            a = yield pool.acquire()
            b = yield pool.acquire()   # grows to 2
            held.extend([a, b])

        sim.process(go())
        sim.run()
        assert pool.total == 2
        assert pool.grown == 1

    def test_blocks_at_max_until_release(self, sim):
        pool = ConnectionPool(sim, "b", prefork=1, max_size=1)
        order = []

        def holder():
            conn = yield pool.acquire()
            order.append(("held", sim.now))
            yield sim.timeout(5.0)
            pool.release(conn)

        def waiter():
            yield sim.timeout(1.0)
            conn = yield pool.acquire()
            order.append(("waited", sim.now))
            pool.release(conn)

        sim.process(holder())
        sim.process(waiter())
        sim.run()
        assert order == [("held", 0.0), ("waited", 5.0)]
        assert pool.waits == 1

    def test_release_wrong_pool_rejected(self, sim):
        pool_a = ConnectionPool(sim, "a", prefork=1)
        pool_b = ConnectionPool(sim, "b", prefork=1)
        got = []

        def go():
            conn = yield pool_a.acquire()
            got.append(conn)

        sim.process(go())
        sim.run()
        with pytest.raises(ValueError):
            pool_b.release(got[0])

    def test_release_idle_connection_rejected(self, sim):
        pool = ConnectionPool(sim, "b", prefork=1)
        conn = pool._idle.items[0]
        with pytest.raises(ValueError):
            pool.release(conn)

    def test_counters(self, sim):
        pool = ConnectionPool(sim, "b", prefork=2)

        def go():
            for _ in range(4):
                conn = yield pool.acquire()
                pool.release(conn)

        sim.process(go())
        sim.run()
        assert pool.acquired == 4
        assert pool.released == 4


class TestPoolManager:
    def test_lazy_pool_creation(self, sim):
        mgr = PoolManager(sim, prefork=2)
        pool = mgr.pool("backend-1")
        assert pool is mgr.pool("backend-1")
        assert pool.prefork == 2
        assert mgr.total_connections() == 2

    def test_pools_listing(self, sim):
        mgr = PoolManager(sim, prefork=1)
        mgr.pool("a")
        mgr.pool("b")
        assert set(mgr.pools()) == {"a", "b"}
        assert mgr.total_connections() == 2
