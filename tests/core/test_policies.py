"""Tests for the backend-selection policies."""

import pytest

from repro.core import (LeastConnections, LeastLoadedReplica, RandomChoice,
                        RoundRobin, RoutingView, WeightedLeastConnection)
from repro.sim import RngStream


@pytest.fixture
def view():
    return RoutingView({"slow": 0.5, "mid": 1.0, "fast": 2.0})


class TestRoutingView:
    def test_validation(self):
        with pytest.raises(ValueError):
            RoutingView({})
        with pytest.raises(ValueError):
            RoutingView({"a": 0.0})

    def test_connection_accounting(self, view):
        view.connection_started("fast")
        view.connection_started("fast")
        assert view.active["fast"] == 2
        assert view.dispatched["fast"] == 2
        view.connection_finished("fast")
        assert view.active["fast"] == 1

    def test_finish_without_start_rejected(self, view):
        with pytest.raises(ValueError):
            view.connection_finished("fast")

    def test_liveness(self, view):
        view.mark_down("mid")
        assert view.alive_nodes() == ["slow", "fast"]
        view.mark_up("mid")
        assert set(view.alive_nodes()) == {"slow", "mid", "fast"}


class TestWeightedLeastConnection:
    def test_prefers_higher_weight_when_idle(self, view):
        # (0+1)/2.0 = 0.5 beats (0+1)/1.0 and (0+1)/0.5
        assert WeightedLeastConnection().select(
            ["slow", "mid", "fast"], view) == "fast"

    def test_accounts_for_active_connections(self, view):
        p = WeightedLeastConnection()
        view.connection_started("fast")
        view.connection_started("fast")
        view.connection_started("fast")
        # fast: 4/2=2.0; mid: 1/1=1.0; slow: 1/0.5=2.0 -> mid
        assert p.select(["slow", "mid", "fast"], view) == "mid"

    def test_skips_dead_nodes(self, view):
        view.mark_down("fast")
        assert WeightedLeastConnection().select(["fast", "mid"],
                                                view) == "mid"

    def test_all_dead_returns_none(self, view):
        for n in ("slow", "mid", "fast"):
            view.mark_down(n)
        assert WeightedLeastConnection().select(["slow", "mid", "fast"],
                                                view) is None

    def test_candidates_restrict_choice(self, view):
        assert WeightedLeastConnection().select(["slow"], view) == "slow"

    def test_deterministic_tiebreak(self):
        view = RoutingView({"a": 1.0, "b": 1.0})
        assert WeightedLeastConnection().select(["b", "a"], view) == "a"


class TestLeastConnections:
    def test_ignores_weights(self, view):
        p = LeastConnections()
        view.connection_started("fast")
        # slow and mid both at 0 active; tie -> lexicographic 'mid' vs 'slow'
        assert p.select(["slow", "mid", "fast"], view) == "mid"


class TestRoundRobin:
    def test_cycles(self, view):
        p = RoundRobin()
        picks = [p.select(["slow", "mid", "fast"], view) for _ in range(6)]
        assert picks == ["slow", "mid", "fast", "slow", "mid", "fast"]

    def test_skips_dead(self, view):
        p = RoundRobin()
        view.mark_down("mid")
        picks = {p.select(["slow", "mid", "fast"], view) for _ in range(4)}
        assert "mid" not in picks


class TestRandomChoice:
    def test_uniform_ish(self, view):
        p = RandomChoice(rng=RngStream(1, "t"))
        picks = [p.select(["slow", "mid", "fast"], view) for _ in range(300)]
        for node in ("slow", "mid", "fast"):
            assert picks.count(node) > 50

    def test_empty_returns_none(self, view):
        for n in ("slow", "mid", "fast"):
            view.mark_down(n)
        assert RandomChoice().select(["slow"], view) is None


class TestLeastLoadedReplica:
    def test_is_weighted_least_connection_over_replicas(self, view):
        p = LeastLoadedReplica()
        view.connection_started("fast")
        view.connection_started("fast")
        view.connection_started("fast")
        # restricted to replicas {slow, fast}: fast 4/2=2.0, slow 1/0.5=2.0
        # -> lexicographic tiebreak picks 'fast'
        assert p.select(["slow", "fast"], view) == "fast"
