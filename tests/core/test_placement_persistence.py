"""Tests for placement-plan persistence and diffing (ops tooling)."""

import pytest

from repro.cluster import paper_testbed_specs
from repro.content import generate_catalog, DYNAMIC_MIX
from repro.core import (PlacementPlan, full_replication, partition_by_type,
                        shared_nfs)
from repro.sim import RngStream


@pytest.fixture
def catalog():
    return generate_catalog(150, rng=RngStream(1), mix=DYNAMIC_MIX)


@pytest.fixture
def specs():
    return paper_testbed_specs()


class TestSerialization:
    def test_roundtrip_partition(self, catalog, specs, tmp_path):
        plan = partition_by_type(catalog, specs)
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = PlacementPlan.load(path)
        assert loaded.locations == plan.locations
        assert loaded.uses_nfs == plan.uses_nfs

    def test_roundtrip_nfs_flag(self, catalog, specs, tmp_path):
        plan = shared_nfs(catalog, [s.name for s in specs])
        path = tmp_path / "plan.json"
        plan.save(path)
        assert PlacementPlan.load(path).uses_nfs

    def test_json_dict_is_sorted_and_plain(self, catalog, specs):
        plan = partition_by_type(catalog, specs)
        data = plan.to_json_dict()
        paths = list(data["locations"])
        assert paths == sorted(paths)
        for nodes in data["locations"].values():
            assert nodes == sorted(nodes)
            assert isinstance(nodes, list)

    def test_loaded_plan_validates(self, catalog, specs, tmp_path):
        plan = partition_by_type(catalog, specs)
        path = tmp_path / "plan.json"
        plan.save(path)
        PlacementPlan.load(path).validate(catalog,
                                          [s.name for s in specs])


class TestDiff:
    def test_identical_plans_have_empty_diff(self, catalog, specs):
        plan = partition_by_type(catalog, specs)
        assert plan.diff(plan) == {}

    def test_diff_reports_added_and_removed(self, catalog, specs):
        before = partition_by_type(catalog, specs, replicate_critical=False)
        after = PlacementPlan.from_json_dict(before.to_json_dict())
        target = catalog.paths()[0]
        old_node = next(iter(before.locations[target]))
        after.locations[target] = {"s350-0", "s350-1"}
        changes = before.diff(after)
        assert target in changes
        added, removed = changes[target]
        assert added == {"s350-0", "s350-1"} - before.locations[target]
        assert removed == before.locations[target] - {"s350-0", "s350-1"}

    def test_diff_between_schemes_is_total(self, catalog, specs):
        partition = partition_by_type(catalog, specs,
                                      replicate_critical=False)
        replication = full_replication(catalog, [s.name for s in specs])
        changes = partition.diff(replication)
        # moving to full replication adds copies for every document
        assert len(changes) == len(catalog)
        for added, removed in changes.values():
            assert added and not removed
