"""Property-based tests for the placement planners."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import paper_testbed_specs
from repro.content import DYNAMIC_MIX, STATIC_MIX, generate_catalog
from repro.core import (full_replication, partition_by_priority,
                        partition_by_type, shared_nfs)
from repro.sim import RngStream


SPECS = paper_testbed_specs()
NAMES = [s.name for s in SPECS]


@st.composite
def catalogs(draw):
    n = draw(st.integers(10, 120))
    seed = draw(st.integers(0, 50))
    mix = draw(st.sampled_from([STATIC_MIX, DYNAMIC_MIX]))
    return generate_catalog(n, rng=RngStream(seed), mix=mix)


class TestPlannerProperties:
    @given(catalog=catalogs())
    @settings(max_examples=25, deadline=None)
    def test_every_planner_produces_valid_total_plans(self, catalog):
        for plan in (full_replication(catalog, NAMES),
                     shared_nfs(catalog, NAMES),
                     partition_by_type(catalog, SPECS),
                     partition_by_priority(catalog, SPECS)):
            plan.validate(catalog, NAMES)
            for item in catalog:
                assert plan.replica_count(item.path) >= 1

    @given(catalog=catalogs())
    @settings(max_examples=25, deadline=None)
    def test_partition_dynamic_constraint_always_holds(self, catalog):
        fast = {s.name for s in SPECS if s.cpu_mhz == 350}
        for plan in (partition_by_type(catalog, SPECS),
                     partition_by_priority(catalog, SPECS)):
            for item in catalog.dynamic_items():
                assert plan.nodes_for(item.path) <= fast

    @given(catalog=catalogs())
    @settings(max_examples=25, deadline=None)
    def test_partition_uses_fewer_copies_than_replication(self, catalog):
        partition = partition_by_type(catalog, SPECS,
                                      replicate_critical=False)
        total_copies = sum(partition.replica_count(i.path) for i in catalog)
        assert total_copies == len(catalog)  # exactly one copy each
        replication = full_replication(catalog, NAMES)
        assert sum(replication.replica_count(i.path) for i in catalog) == \
            len(catalog) * len(NAMES)

    @given(catalog=catalogs())
    @settings(max_examples=25, deadline=None)
    def test_plan_serialization_roundtrip_property(self, catalog):
        from repro.core import PlacementPlan
        plan = partition_by_type(catalog, SPECS)
        clone = PlacementPlan.from_json_dict(plan.to_json_dict())
        assert clone.locations == plan.locations
        assert plan.diff(clone) == {}

    @given(catalog=catalogs(), seed=st.integers(0, 10))
    @settings(max_examples=15, deadline=None)
    def test_bytes_accounting_consistent(self, catalog, seed):
        plan = partition_by_type(catalog, SPECS, replicate_critical=False)
        per_node = sum(plan.bytes_on(name, catalog) for name in NAMES)
        assert per_node == catalog.total_bytes  # single-copy partition
