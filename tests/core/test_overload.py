"""Unit and integration tests for the overload-control subsystem."""

import pytest

from repro.cluster import (BackendServer, distributor_spec,
                           paper_testbed_specs)
from repro.content import ContentItem, ContentType
from repro.core import (ContentAwareDistributor, FrontendDown,
                        HaDistributorPair, OverloadConfig, RetryBudget,
                        RoutingView, UrlTable, WeightedLeastConnection)
from repro.core.overload import (AdmissionController, BREAKER_TRANSITIONS,
                                 CircuitBreaker)
from repro.mgmt import Broker, Controller, StatusAgent
from repro.net import HttpRequest, Lan, Nic
from repro.sim import Simulator


def make_breaker(**overrides):
    """A breaker on a manually advanced clock."""
    config = OverloadConfig(**overrides)
    tnow = [0.0]
    breaker = CircuitBreaker("node-a", config, clock=lambda: tnow[0])
    return breaker, tnow, config


class TestBreakerStateMachine:
    def test_transition_table_shape(self):
        # first key is the initial state; "disabled" is terminal absorbing
        assert next(iter(BREAKER_TRANSITIONS)) == "closed"
        assert BREAKER_TRANSITIONS["disabled"] == ()
        for origin, targets in BREAKER_TRANSITIONS.items():
            for to in targets:
                assert to in BREAKER_TRANSITIONS

    def test_consecutive_failures_trip(self):
        breaker, tnow, config = make_breaker(breaker_failures=3)
        assert breaker.state == "closed"
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opened_count == 1
        assert not breaker.routable()

    def test_success_resets_consecutive_count(self):
        breaker, tnow, config = make_breaker(breaker_failures=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_error_rate_trips_with_min_samples(self):
        breaker, tnow, config = make_breaker(
            breaker_failures=100, breaker_window=8, breaker_min_samples=4,
            breaker_error_rate=0.5)
        # alternate so the consecutive count never trips
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # 3 samples < min_samples
        breaker.record_success()
        assert breaker.state == "closed"  # 2/4 bad but last was a success
        breaker.record_failure()
        assert breaker.state == "open"    # 3/5 bad >= 0.5

    def test_open_blocks_until_cooldown_then_probes(self):
        breaker, tnow, config = make_breaker(
            breaker_failures=1, breaker_open_duration=2.0,
            breaker_probes=2, breaker_probe_inflight=1)
        breaker.record_failure()
        assert breaker.state == "open"
        tnow[0] = 1.99
        assert not breaker.routable()
        assert breaker.state == "open"
        tnow[0] = 2.0
        assert breaker.routable()           # lazily shifts to half-open
        assert breaker.state == "half-open"
        breaker.on_dispatch()
        assert not breaker.routable()       # probe_inflight cap reached
        breaker.record_success()
        assert breaker.state == "half-open"  # 1/2 probe successes
        assert breaker.routable()
        breaker.on_dispatch()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.reclosed_count == 1

    def test_probe_failure_reopens(self):
        breaker, tnow, config = make_breaker(
            breaker_failures=1, breaker_open_duration=1.0)
        breaker.record_failure()
        tnow[0] = 1.0
        assert breaker.routable()
        breaker.on_dispatch()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opened_count == 2
        tnow[0] = 1.5
        assert not breaker.routable()       # new cooldown from reopen

    def test_disable_is_terminal_and_routable(self):
        breaker, tnow, config = make_breaker(breaker_failures=1)
        breaker.record_failure()
        breaker.disable()
        assert breaker.state == "disabled"
        assert breaker.routable()
        for _ in range(5):
            breaker.record_failure()
        assert breaker.state == "disabled"

    def test_illegal_transition_rejected(self):
        breaker, tnow, config = make_breaker()
        with pytest.raises(ValueError, match="illegal transition"):
            breaker._shift("half-open")     # closed -> half-open


class TestAdmissionController:
    def run_admit(self, sim, adm, results):
        def one():
            admitted = yield from adm.admit()
            results.append(admitted)
            if admitted:
                # hold the slot until explicitly released by the test body
                yield sim.timeout(1.0)
                adm.release()
        return sim.process(one())

    def test_grant_queue_shed(self):
        sim = Simulator()
        adm = AdmissionController(
            sim, OverloadConfig(max_inflight=2, max_queue=1))
        results = []
        for _ in range(4):
            self.run_admit(sim, adm, results)
        sim.run()
        # 2 granted immediately, 1 queued (granted later), 1 shed
        assert results.count(True) == 3
        assert results.count(False) == 1
        assert adm.submitted == 4
        assert adm.admitted == 3
        assert adm.shed == 1
        assert adm.peak_inflight == 2
        assert adm.peak_queue == 1
        assert adm.inflight == 0 and adm.queued == 0

    def test_waiters_granted_fifo(self):
        sim = Simulator()
        adm = AdmissionController(
            sim, OverloadConfig(max_inflight=1, max_queue=3))
        order = []

        def one(tag, hold):
            admitted = yield from adm.admit()
            assert admitted
            order.append(tag)
            yield sim.timeout(hold)
            adm.release()

        for i, tag in enumerate(["a", "b", "c", "d"]):
            sim.process(one(tag, 0.5))
        sim.run()
        assert order == ["a", "b", "c", "d"]

    def test_release_without_admit_raises(self):
        sim = Simulator()
        adm = AdmissionController(sim, OverloadConfig())
        with pytest.raises(ValueError, match="release without"):
            adm.release()


class TestRetryBudget:
    def test_deposit_and_spend(self):
        budget = RetryBudget(ratio=0.5, initial=1.0, cap=2.0)
        assert budget.try_spend()
        assert not budget.try_spend()       # empty
        for _ in range(4):
            budget.on_request()
        assert budget.tokens == pytest.approx(2.0)  # capped
        assert budget.try_spend() and budget.try_spend()
        assert not budget.try_spend()
        assert budget.granted == 3 and budget.denied == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(ratio=-0.1)
        with pytest.raises(ValueError):
            RetryBudget(initial=4.0, cap=2.0)


class TestSlowStart:
    def test_ramp_boundaries(self):
        view = RoutingView({"a": 4.0, "b": 4.0})
        tnow = [10.0]
        view.configure_slow_start(2.0, 0.25, clock=lambda: tnow[0])
        view.begin_slow_start("a")
        assert view.effective_weight("a") == pytest.approx(1.0)   # floor
        assert view.effective_weight("b") == pytest.approx(4.0)   # unramped
        tnow[0] = 11.0
        assert view.effective_weight("a") == pytest.approx(2.5)   # midway
        tnow[0] = 12.0
        assert view.effective_weight("a") == pytest.approx(4.0)   # done
        # the expired ramp is dropped entirely
        tnow[0] = 13.0
        assert view.effective_weight("a") == pytest.approx(4.0)

    def test_mark_up_restarts_ramp(self):
        view = RoutingView({"a": 2.0})
        tnow = [0.0]
        view.configure_slow_start(1.0, 0.5, clock=lambda: tnow[0])
        view.mark_down("a")
        tnow[0] = 5.0
        view.mark_up("a")
        assert view.effective_weight("a") == pytest.approx(1.0)

    def test_wlc_prefers_full_weight_node_during_ramp(self):
        view = RoutingView({"a": 4.0, "b": 4.0})
        tnow = [0.0]
        view.configure_slow_start(2.0, 0.1, clock=lambda: tnow[0])
        view.begin_slow_start("a")
        policy = WeightedLeastConnection()
        # equal active counts: the ramping node looks 10x smaller
        assert policy.select(["a", "b"], view) == "b"
        tnow[0] = 2.0
        assert policy.select(["a", "b"], view) == "a"  # tie -> name order

    def test_gate_filters_candidates(self):
        view = RoutingView({"a": 1.0, "b": 1.0})
        view.gate = lambda node: node != "a"
        policy = WeightedLeastConnection()
        assert policy.select(["a", "b"], view) == "b"
        assert policy.select(["a"], view) is None
        view.gate = None
        assert policy.select(["a"], view) == "a"


def build_distributor(overload, n_specs=3, **dist_kwargs):
    sim = Simulator()
    lan = Lan(sim)
    specs = paper_testbed_specs()[:n_specs]
    servers = {s.name: BackendServer(sim, lan, s) for s in specs}
    table = UrlTable()
    dist = ContentAwareDistributor(sim, lan, distributor_spec(), servers,
                                   table, overload=overload, **dist_kwargs)
    client_nic = Nic(sim, 100, name="client")
    return sim, specs, servers, table, dist, client_nic


def place_everywhere(specs, servers, table, item):
    for s in specs:
        servers[s.name].place(item)
    table.insert(item, {s.name for s in specs})


class TestFrontendOverload:
    def test_shed_path_leaks_nothing(self):
        config = OverloadConfig(max_inflight=1, max_queue=0)
        sim, specs, servers, table, dist, client_nic = \
            build_distributor(config)
        item = ContentItem("/hot.html", 65536, ContentType.HTML)
        place_everywhere(specs, servers, table, item)
        outcomes = []

        def one():
            outcome = yield sim.process(
                dist.submit(HttpRequest(item.path), client_nic))
            outcomes.append(outcome)

        for _ in range(3):
            sim.process(one())
        sim.run()
        shed = [o for o in outcomes if o.shed]
        served = [o for o in outcomes if not o.shed]
        assert len(shed) == 2 and len(served) == 1
        for o in shed:
            assert o.response.status == 503
            assert o.retry_after == config.retry_after
            assert o.backend is None
        # nothing leaked: no mapping entries, no leases, slot drained
        assert len(dist.mapping) == 0
        for backend in dist.pools.pools().values():
            assert backend.leased_count == 0
        assert dist.overload.admission.inflight == 0
        assert dist.overload.admission.shed == 2
        assert dist.metrics.counter("overload/shed").count == 2
        from repro.analysis.invariants import check_invariants
        assert check_invariants(table, servers=servers, frontend=dist) == []

    def test_timeout_trips_breaker_and_degrades_cleanly(self):
        config = OverloadConfig(request_timeout=1e-4, breaker_failures=1,
                                max_replica_retries=0)
        sim, specs, servers, table, dist, client_nic = \
            build_distributor(config, n_specs=1)
        item = ContentItem("/slow.html", 1 << 20, ContentType.HTML)
        place_everywhere(specs, servers, table, item)
        outcomes = []

        def one():
            outcome = yield sim.process(
                dist.submit(HttpRequest(item.path), client_nic))
            outcomes.append(outcome)

        sim.process(one())
        sim.run()
        [outcome] = outcomes
        assert outcome.shed and outcome.response.status == 503
        assert dist.metrics.counter("overload/timeout").count == 1
        assert dist.metrics.counter("overload/degraded").count == 1
        breaker = dist.overload.breakers.breaker(specs[0].name)
        assert breaker.state == "open"
        assert len(dist.mapping) == 0
        assert dist.overload.admission.inflight == 0

    def test_legacy_path_untouched_without_overload(self):
        sim, specs, servers, table, dist, client_nic = \
            build_distributor(None)
        assert dist.overload is None
        item = ContentItem("/plain.html", 4096, ContentType.HTML)
        place_everywhere(specs, servers, table, item)
        outcomes = []

        def one():
            outcome = yield sim.process(
                dist.submit(HttpRequest(item.path), client_nic))
            outcomes.append(outcome)

        sim.process(one())
        sim.run()
        [outcome] = outcomes
        assert outcome.response.ok
        assert not outcome.shed and outcome.retry_after == 0.0


class TestHaRetryBudget:
    def test_outage_retries_denied_when_budget_empty(self):
        sim = Simulator()
        lan = Lan(sim)
        specs = paper_testbed_specs()[:2]
        servers = {s.name: BackendServer(sim, lan, s) for s in specs}
        primary = ContentAwareDistributor(sim, lan, distributor_spec(),
                                          servers, UrlTable())
        backup = ContentAwareDistributor(sim, lan, distributor_spec(),
                                         servers, UrlTable(),
                                         name="dist-backup")
        budget = RetryBudget(ratio=0.0, initial=0.0, cap=0.0)
        pair = HaDistributorPair(sim, primary, backup,
                                 heartbeat_interval=10.0, misses_to_fail=3,
                                 retry_budget=budget)
        primary.crash()
        failures = []

        def one():
            try:
                yield sim.process(
                    pair.submit(HttpRequest("/x.html"),
                                Nic(sim, 100, name="client")))
            except FrontendDown as exc:
                failures.append(str(exc))

        sim.process(one())
        sim.run(until=1.0)
        pair.stop()
        [message] = failures
        assert "retry budget exhausted" in message
        assert pair.budget_denied == 1
        assert budget.denied == 1


class TestMgmtHealthSignal:
    def test_dispatch_timeout_feeds_breaker_board(self):
        sim = Simulator()
        lan = Lan(sim)
        spec = paper_testbed_specs()[0]
        server = BackendServer(sim, lan, spec)
        dist = ContentAwareDistributor(
            sim, lan, distributor_spec(), {spec.name: server}, UrlTable(),
            overload=OverloadConfig(breaker_failures=2))
        controller = Controller(sim, dist.nic, dist.url_table,
                                None)
        controller.default_timeout = 0.2
        controller.health_sink = dist.overload.breakers
        broker = Broker(sim, lan, server, controller.nic)
        controller.register_broker(broker)
        broker.drop_filter = lambda dispatch: True  # every agent lost

        def go():
            for _ in range(2):
                yield from controller.execute(StatusAgent(), spec.name)

        sim.process(go())
        sim.run()
        broker.stop()
        assert controller.timeouts == 2
        board = dist.overload.breakers
        assert board.mgmt_timeouts == {spec.name: 2}
        assert board.breaker(spec.name).state == "open"
        assert not dist.view.routable(spec.name)
