"""Tests for the LARD extension router and the load-aware replica policy."""

import pytest

from repro.cluster import BackendServer, distributor_spec, paper_testbed_specs
from repro.content import ContentItem, ContentType, generate_catalog
from repro.core import (LardRouter, LoadAccountant, LoadAwareReplica,
                        RoutingView, apply_plan, full_replication)
from repro.net import HttpRequest, HttpResponse, Lan, Nic
from repro.sim import RngStream, Simulator


def build_lard(n_specs=3, **kw):
    sim = Simulator()
    lan = Lan(sim)
    specs = paper_testbed_specs()[:n_specs]
    servers = {s.name: BackendServer(sim, lan, s) for s in specs}
    catalog = generate_catalog(40, rng=RngStream(5))
    plan = full_replication(catalog, [s.name for s in specs])
    apply_plan(plan, catalog, servers)

    def resolver(url):
        path = url.split("?")[0]
        return catalog.get(path) if path in catalog else None

    router = LardRouter(sim, lan, distributor_spec(), servers, resolver,
                        **kw)
    client_nic = Nic(sim, 100, name="client")
    return sim, specs, servers, catalog, router, client_nic


def fetch(sim, router, url, client_nic):
    out = []

    def go():
        out.append((yield sim.process(router.submit(HttpRequest(url),
                                                    client_nic))))

    sim.process(go())
    sim.run()
    return out[0]


class TestLardRouting:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            build_lard(t_low=5, t_high=5)

    def test_first_request_assigns_document(self):
        sim, specs, servers, catalog, router, nic = build_lard()
        url = catalog.paths()[0]
        outcome = fetch(sim, router, url, nic)
        assert outcome.response.ok
        assert router.assignment[url] == outcome.backend
        assert router.first_assignments == 1

    def test_repeat_requests_stick_to_assigned_node(self):
        """The locality property: same document -> same server."""
        sim, specs, servers, catalog, router, nic = build_lard()
        url = catalog.paths()[0]
        backends = {fetch(sim, router, url, nic).backend for _ in range(6)}
        assert len(backends) == 1
        assert router.reassignments == 0

    def test_different_documents_spread_under_concurrency(self):
        sim, specs, servers, catalog, router, nic = build_lard()
        outcomes = []

        def one(url):
            outcomes.append((yield sim.process(
                router.submit(HttpRequest(url), nic))))

        for url in catalog.paths()[:12]:
            sim.process(one(url))
        sim.run()
        assert len({o.backend for o in outcomes}) >= 2

    def test_locality_produces_cache_hits(self):
        sim, specs, servers, catalog, router, nic = build_lard()
        url = catalog.paths()[0]
        first = fetch(sim, router, url, nic)
        second = fetch(sim, router, url, nic)
        assert not first.response.cache_hit
        assert second.response.cache_hit

    def test_overload_triggers_reassignment(self):
        sim, specs, servers, catalog, router, nic = build_lard(
            t_low=1, t_high=2, weighted=False)
        url = catalog.paths()[0]
        fetch(sim, router, url, nic)  # assign
        home = router.assignment[url]
        # fabricate overload on the assigned node
        for _ in range(5):
            router.view.connection_started(home)
        outcome = fetch(sim, router, url, nic)
        assert router.reassignments == 1
        assert outcome.backend != home
        assert router.assignment[url] == outcome.backend

    def test_dead_assigned_node_reassigned(self):
        sim, specs, servers, catalog, router, nic = build_lard()
        url = catalog.paths()[0]
        fetch(sim, router, url, nic)
        home = router.assignment[url]
        servers[home].crash()
        router.view.mark_down(home)
        outcome = fetch(sim, router, url, nic)
        assert outcome.response.ok
        assert outcome.backend != home

    def test_all_dead_is_503(self):
        sim, specs, servers, catalog, router, nic = build_lard()
        for s in specs:
            router.view.mark_down(s.name)
        outcome = fetch(sim, router, catalog.paths()[0], nic)
        assert outcome.response.status == 503

    def test_unknown_url_is_404(self):
        sim, specs, servers, catalog, router, nic = build_lard()
        outcome = fetch(sim, router, "/no/such/doc.html", nic)
        assert outcome.response.status == 404

    def test_weighted_assignment_prefers_capable_nodes(self):
        sim, specs, servers, catalog, router, nic = build_lard(
            n_specs=9, weighted=True)
        for url in catalog.paths():
            fetch(sim, router, url, nic)
        from collections import Counter
        per_node = Counter(router.assignment.values())
        fast = sum(v for k, v in per_node.items() if k.startswith("s350"))
        slow = sum(v for k, v in per_node.items() if k.startswith("s150"))
        assert fast > slow


class TestLoadAwareReplica:
    def make_view(self):
        return RoutingView({"a": 1.0, "b": 1.0})

    def test_picks_lowest_interval_load(self):
        acc = LoadAccountant({"a": 1.0, "b": 1.0})
        item = ContentItem("/x.html", 100, ContentType.HTML)
        resp = HttpResponse(request=HttpRequest("/x.html"), served_by="a",
                            service_time=0.1)
        acc.record(item, resp)
        policy = LoadAwareReplica(acc)
        assert policy.select(["a", "b"], self.make_view()) == "b"

    def test_falls_back_to_connections_when_no_load(self):
        acc = LoadAccountant({"a": 1.0, "b": 1.0})
        view = self.make_view()
        view.connection_started("a")
        policy = LoadAwareReplica(acc)
        assert policy.select(["a", "b"], view) == "b"

    def test_skips_dead_nodes(self):
        acc = LoadAccountant({"a": 1.0, "b": 1.0})
        view = self.make_view()
        view.mark_down("b")
        policy = LoadAwareReplica(acc)
        assert policy.select(["a", "b"], view) == "a"
        view.mark_down("a")
        assert policy.select(["a", "b"], view) is None
