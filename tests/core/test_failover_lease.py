"""Lease-based promotion for the HA distributor pair, and the
promotion-timing sweep: crash the primary *and* the controller at every
instant between a placement's dispatch and its agent ack -- the standby
must take over from recovered WAL state with no duplicate apply and no
lost intent."""

import pytest

from repro.core import DistributorLease
from repro.experiments.recovery import run_promotion_episode
from repro.sim import Simulator

from .test_failover import build_pair

pytestmark = pytest.mark.recovery


class TestDistributorLease:
    def test_term_must_be_positive(self):
        with pytest.raises(ValueError):
            DistributorLease(Simulator(), term=0.0)

    def test_expires_after_term(self):
        sim = Simulator()
        lease = DistributorLease(sim, term=1.0)
        assert not lease.expired
        assert lease.remaining == 1.0
        sim.run(until=1.0)
        assert lease.expired
        assert lease.remaining == 0.0

    def test_renew_extends_from_now(self):
        sim = Simulator()
        lease = DistributorLease(sim, term=1.0)
        sim.run(until=0.8)
        lease.renew()
        assert lease.renewals == 1
        assert lease.expires_at == pytest.approx(1.8)
        sim.run(until=1.5)
        assert not lease.expired


class TestLeasePromotion:
    @staticmethod
    def _pair_with_lease(term, heartbeat=0.25, misses=2,
                         recover_state=None):
        # the lease must live on the pair's simulator, so it is attached
        # right after construction (before the first heartbeat at t>0)
        sim, pair, primary, backup, servers, item, nic = build_pair(
            heartbeat=heartbeat, misses=misses)
        pair.lease = DistributorLease(sim, term=term)
        if recover_state is not None:
            pair.recover_state = recover_state
        return sim, pair, primary, backup, servers, item, nic

    def test_heartbeats_renew_the_lease(self):
        sim, pair, primary, backup, *_ = self._pair_with_lease(term=1.0)
        sim.run(until=2.0)
        assert pair.lease.renewals >= 6
        assert not pair.failed_over

    def test_promotion_waits_for_lease_expiry(self):
        # misses_to_fail trips at 2*0.25s = 0.5s, but the lease (last
        # renewed at t=0.25) holds until 1.25s -- promotion must wait
        sim, pair, primary, backup, *_ = self._pair_with_lease(term=1.0)

        def crash():
            primary.crash()
        sim.schedule(0.3, crash)
        sim.run(until=1.2)
        assert not pair.failed_over
        assert pair.lease_waits >= 1
        sim.run(until=2.0)
        assert pair.failed_over
        assert pair.failover_at >= 1.25

    def test_recover_state_hook_runs_before_backup_serves(self):
        calls = []
        sim, pair, primary, backup, *_ = self._pair_with_lease(
            term=0.3, recover_state=lambda: calls.append(sim.now))

        def crash():
            primary.crash()
        sim.schedule(0.3, crash)
        sim.run(until=2.0)
        assert pair.failed_over
        assert calls == [pair.failover_at]

    def test_no_lease_preserves_classic_promotion(self):
        sim, pair, primary, backup, *_ = build_pair(heartbeat=0.25,
                                                    misses=2)

        def crash():
            primary.crash()
        sim.schedule(0.3, crash)
        sim.run(until=1.0)
        assert pair.failed_over
        assert pair.lease_waits == 0


class TestPromotionTimingSweep:
    """Exhaustively sweep crash instants across the dispatch->ack window
    of a placement: at every instant the promoted standby's WAL-recovered
    state must agree with physical node truth (routed == stored), with no
    intent left open."""

    def test_baseline_defines_the_vulnerable_window(self):
        base = run_promotion_episode(None)
        assert base["placed"] and not base["promoted"]
        assert base["atomic"] and base["routed"] and base["stored"]
        assert base["acked_at"] > base["dispatched_at"]

    def test_no_duplicate_and_no_lost_intent_at_every_crash_instant(self):
        base = run_promotion_episode(None)
        lo, hi = base["dispatched_at"], base["acked_at"]
        steps = 8
        instants = [lo + (hi - lo) * k / steps for k in range(steps + 1)]
        for crash_at in instants:
            out = run_promotion_episode(crash_at)
            assert out["promoted"], crash_at
            assert out["atomic"], (
                f"crash at {crash_at}: routed={out['routed']} "
                f"stored={out['stored']} (duplicate or lost placement)")
            assert out["open_intents"] == 0, crash_at
            assert out["consistency"] == [], crash_at
            assert out["recovery"] is not None and \
                out["recovery"]["clean"], crash_at

    def test_crash_after_ack_keeps_the_placement(self):
        base = run_promotion_episode(None)
        out = run_promotion_episode(base["acked_at"] + 0.05)
        assert out["placed"] and not out["interrupted"]
        assert out["promoted"] and out["atomic"]
        assert out["routed"] and out["stored"]
