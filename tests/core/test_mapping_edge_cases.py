"""Edge cases of the §2.2 splice state machine and its pool interaction.

Exhaustive transition-legality coverage: every (state, state) pair not in
the declared table must raise, CLOSED must be absorbing, and deleting an
entry returns its pre-forked connection to the available list exactly once.
"""

import itertools

import pytest

from repro.core.conn_pool import ConnectionPool
from repro.core.mapping_table import (_TRANSITIONS, MappingError,
                                      MappingState, MappingTable)
from repro.net.packet import Address
from repro.sim import Simulator


def fresh_entry(table, state, port=1):
    entry = table.create(Address("c", port), now=0.0)
    entry.state = state   # place the entry for the pair under test
    return entry


def test_every_undeclared_pair_raises():
    """The runtime guard enforces exactly the declared table -- nothing
    more, nothing less -- over all 36 (state, state) pairs."""
    for port, (src, dst) in enumerate(
            itertools.product(MappingState, MappingState), start=1):
        table = MappingTable()
        entry = fresh_entry(table, src, port)
        if dst in _TRANSITIONS[src]:
            table.transition(entry, dst)
            assert entry.state is dst
        else:
            with pytest.raises(MappingError):
                table.transition(entry, dst)
            assert entry.state is src   # a rejected transition is a no-op


def test_closed_is_absorbing():
    for dst in MappingState:
        table = MappingTable()
        entry = fresh_entry(table, MappingState.CLOSED)
        with pytest.raises(MappingError):
            table.transition(entry, dst)


def test_bind_requires_established():
    table = MappingTable()
    entry = fresh_entry(table, MappingState.SYN_RECEIVED)
    with pytest.raises(MappingError):
        table.bind(entry, object(), "node-1")


def test_delete_requires_closed():
    table = MappingTable()
    entry = table.create(Address("c", 1), now=0.0)
    for state in (MappingState.SYN_RECEIVED, MappingState.ESTABLISHED):
        entry.state = state
        with pytest.raises(MappingError):
            table.delete(entry.client)
    entry.state = MappingState.CLOSED
    assert table.delete(entry.client) is entry
    with pytest.raises(MappingError):       # already gone
        table.delete(entry.client)


def test_deletion_returns_connection_exactly_once():
    """§2.2: after CLOSED the pre-forked connection goes back to the
    available list -- once.  A second release must fail loudly."""
    sim = Simulator()
    pool = ConnectionPool(sim, "node-1", prefork=2)
    table = MappingTable()
    got = []

    def client():
        conn = yield pool.acquire()
        entry = table.create(Address("c", 1), now=sim.now)
        table.transition(entry, MappingState.ESTABLISHED)
        table.bind(entry, conn, "node-1")
        got.append((entry, conn))

    sim.process(client())
    sim.run()
    (entry, conn) = got[0]
    assert pool.leased_count == 1 and pool.idle_count == 1

    # orderly teardown, then the one legal release
    table.transition(entry, MappingState.FIN_RECEIVED)
    table.transition(entry, MappingState.HALF_CLOSED)
    table.transition(entry, MappingState.CLOSED)
    deleted = table.delete(entry.client)
    pool.release(deleted.pooled_conn)
    assert pool.leased_count == 0 and pool.idle_count == 2
    assert pool.released == pool.acquired == 1

    with pytest.raises(ValueError):
        pool.release(conn)                  # double release
    assert pool.released == 1               # accounting unchanged


def test_release_to_wrong_pool_rejected():
    sim = Simulator()
    pool_a = ConnectionPool(sim, "node-a", prefork=1)
    pool_b = ConnectionPool(sim, "node-b", prefork=1)
    got = []

    def client():
        conn = yield pool_a.acquire()
        got.append(conn)

    sim.process(client())
    sim.run()
    with pytest.raises(ValueError):
        pool_b.release(got[0])
