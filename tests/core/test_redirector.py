"""Tests for the HTTP-redirection baseline front end."""

import pytest

from repro.cluster import BackendServer, distributor_spec, paper_testbed_specs
from repro.content import ContentItem, ContentType
from repro.core import (ContentAwareDistributor, HttpRedirector, UrlTable)
from repro.net import HttpRequest, Lan, Nic
from repro.sim import Simulator


def build(front="redirect", client_latency=0.0):
    sim = Simulator()
    lan = Lan(sim)
    specs = paper_testbed_specs()[5:8]  # three 350 MHz nodes
    servers = {s.name: BackendServer(sim, lan, s) for s in specs}
    table = UrlTable()
    item = ContentItem("/page.html", 8192, ContentType.HTML)
    holder = specs[0].name
    servers[holder].place(item)
    table.insert(item, {holder})
    if front == "redirect":
        fe = HttpRedirector(sim, lan, distributor_spec(), servers, table,
                            client_latency=client_latency)
    else:
        fe = ContentAwareDistributor(sim, lan, distributor_spec(), servers,
                                     table, client_latency=client_latency)
    nic = Nic(sim, 100, name="client")
    return sim, servers, item, holder, fe, nic


def fetch(sim, fe, url, nic):
    out = []

    def go():
        out.append((yield sim.process(fe.submit(HttpRequest(url), nic))))

    sim.process(go())
    sim.run()
    return out[0]


class TestRedirector:
    def test_serves_via_redirect(self):
        sim, servers, item, holder, fe, nic = build()
        outcome = fetch(sim, fe, item.path, nic)
        assert outcome.response.ok
        assert outcome.backend == holder
        assert fe.redirects_issued == 1

    def test_unknown_url_503(self):
        sim, servers, item, holder, fe, nic = build()
        outcome = fetch(sim, fe, "/ghost.html", nic)
        assert outcome.response.status == 503
        assert fe.redirects_issued == 0

    def test_data_path_bypasses_front_end(self):
        """The 302 leg touches the front end; the content bytes do not."""
        sim, servers, item, holder, fe, nic = build()
        fetch(sim, fe, item.path, nic)
        # front end sent only the redirect, never the 8 KB body
        assert fe.nic.bytes_sent < 1024
        assert servers[holder].nic.bytes_sent >= item.size_bytes

    def test_extra_round_trips_cost_latency_for_wan_clients(self):
        """§2.1: 'an extra round-trip latency' plus a new connection --
        for WAN clients redirection must be clearly slower than splicing."""
        rtt = 0.040
        sim_r, _, item, _, redirector, nic_r = build("redirect",
                                                     client_latency=rtt)
        # warm the backend cache so only the protocol overhead differs
        fetch(sim_r, redirector, item.path, nic_r)
        redirect_latency = fetch(sim_r, redirector, item.path, nic_r).latency

        sim_s, _, item_s, _, splicer, nic_s = build("splice",
                                                    client_latency=rtt)
        fetch(sim_s, splicer, item_s.path, nic_s)
        splice_latency = fetch(sim_s, splicer, item_s.path, nic_s).latency

        assert redirect_latency > 1.5 * splice_latency

    def test_crashed_front_end_rejects(self):
        sim, servers, item, holder, fe, nic = build()
        fe.crash()
        with pytest.raises(RuntimeError):
            next(iter(fe.submit(HttpRequest(item.path), nic)))

    def test_per_class_metering(self):
        sim, servers, item, holder, fe, nic = build()
        fetch(sim, fe, item.path, nic)
        assert fe.class_meters[ContentType.HTML].completions == 1
