"""Multi-segment (MSS-fragmented) responses through the splicer.

Large responses cross the wire as several segments; the distributor must
relay each one, and for HTTP/1.0 set the FIN flag on the *last* relayed
packet only (§2.2).
"""

import pytest

from repro.content import ContentItem, ContentType
from repro.core import SplicingDistributor, UrlTable
from repro.net import (Address, Host, HttpRequest, HttpResponse, Network,
                       TcpState)
from repro.net.http import HttpVersion
from repro.net.tcp import TcpSocket
from repro.sim import Simulator

MSS = 1460


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def net(sim):
    return Network(sim)


class TestSendData:
    def test_fragment_count(self, sim, net):
        client, server = Host(net, "10.0.0.2"), Host(net, "10.0.0.1")
        got = []
        server.listen(80, lambda sock: got.append(sock))
        sock = client.socket()

        def go():
            yield sock.connect(Address("10.0.0.1", 80))
            n = sock.send_data("msg", 3500, mss=1000)
            assert n == 4  # 1000+1000+1000+500

        sim.process(go())
        sim.run()

    def test_validation(self, sim, net):
        client, server = Host(net, "10.0.0.2"), Host(net, "10.0.0.1")
        server.listen(80, lambda sock: None)
        sock = client.socket()

        def go():
            yield sock.connect(Address("10.0.0.1", 80))
            with pytest.raises(ValueError):
                sock.send_data("x", 100, mss=0)
            with pytest.raises(ValueError):
                sock.send_data("x", 0)

        sim.process(go())
        sim.run()

    def test_recv_message_reassembles(self, sim, net):
        client, server = Host(net, "10.0.0.2"), Host(net, "10.0.0.1")
        accepted = []
        server.listen(80, accepted.append)
        sock = client.socket()
        out = []

        def client_proc():
            yield sock.connect(Address("10.0.0.1", 80))
            sock.send_data({"body": "big"}, 5000, mss=MSS)

        def server_proc():
            while not accepted:
                yield sim.timeout(1e-4)
            payload = yield from accepted[0].recv_message(5000)
            out.append(payload)

        sim.process(client_proc())
        sim.process(server_proc())
        sim.run()
        assert out == [{"body": "big"}]


def build_splice_world(sim, net, content_length=6000):
    table = UrlTable()
    host = Host(net, "10.0.1.1")

    def app(sock):
        def loop():
            while sock.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
                payload, _ = yield sock.recv()
                response = HttpResponse(request=payload,
                                        content_length=content_length,
                                        served_by="s1")
                sock.send_data(response, response.wire_bytes, mss=MSS)

        sim.process(loop())

    host.listen(80, app)
    dist = SplicingDistributor(sim, net, table,
                               {"s1": Address("10.0.1.1", 80)}, prefork=1)
    done = []
    dist.prefork_all().add_callback(lambda ev: done.append(True))
    sim.run(until=0.01)
    assert done
    item = ContentItem("/big.html", content_length, ContentType.HTML)
    table.insert(item, {"s1"})
    return dist, item


class TestFragmentedSplice:
    def test_multi_segment_response_relayed(self, sim, net):
        dist, item = build_splice_world(sim, net, content_length=6000)
        host = Host(net, "10.0.2.1")
        result = {}

        def go():
            sock = host.socket()
            yield sock.connect(Address("10.0.0.100", 80))
            request = HttpRequest(item.path)
            sock.send(request, request.wire_bytes)
            response = yield from sock.recv_message(
                6000 + 240)  # content + headers
            result["response"] = response
            yield sock.close()

        sim.process(go())
        sim.run()
        assert result["response"].served_by == "s1"
        # ~5 segments for ~6.2 KB at 1460 MSS
        assert dist.relayed_to_client >= 4
        assert len(dist.mapping) == 0
        assert dist.idle_legs("s1") == 1

    def test_http10_fin_on_last_fragment_only(self, sim, net):
        dist, item = build_splice_world(sim, net, content_length=6000)
        host = Host(net, "10.0.2.2")
        result = {}
        fins_seen = []
        original = net.send

        def spy(segment):
            if segment.is_fin and segment.src.ip == "10.0.0.100":
                fins_seen.append(segment)
            original(segment)

        net.send = spy

        def go():
            sock = host.socket()
            yield sock.connect(Address("10.0.0.100", 80))
            request = HttpRequest(item.path, version=HttpVersion.HTTP_1_0)
            sock.send(request, request.wire_bytes)
            response = yield from sock.recv_message(6000 + 240)
            result["response"] = response
            result["state_after"] = sock.state
            while sock.state is not TcpState.CLOSE_WAIT:
                yield sim.timeout(1e-4)
            yield sock.close()
            result["final_state"] = sock.state

        sim.process(go())
        sim.run()
        assert result["response"].served_by == "s1"
        # exactly one FIN toward the client, on the final data packet
        assert len(fins_seen) == 1
        assert fins_seen[0].payload is result["response"]
        assert result["final_state"] is TcpState.CLOSED
        assert len(dist.mapping) == 0
        assert dist.idle_legs("s1") == 1
