"""Tests for the §1.2 priority-based partitioning policy."""

import pytest

from repro.cluster import paper_testbed_specs
from repro.content import (ContentItem, ContentType, DYNAMIC_MIX, Priority,
                           SiteCatalog, generate_catalog)
from repro.core import partition_by_priority
from repro.sim import RngStream


@pytest.fixture
def specs():
    return paper_testbed_specs()


@pytest.fixture
def catalog():
    cat = generate_catalog(300, rng=RngStream(3), mix=DYNAMIC_MIX)
    # add explicit LOW-priority content (the generator only makes
    # CRITICAL/NORMAL)
    for i in range(20):
        cat.add(ContentItem(f"/archive/old{i:02d}.html", 3000,
                            ContentType.HTML, priority=Priority.LOW))
    return cat


class TestPartitionByPriority:
    def test_validation(self, catalog, specs):
        with pytest.raises(ValueError):
            partition_by_priority(catalog, [])
        with pytest.raises(ValueError):
            partition_by_priority(catalog, specs, critical_replicas=0)

    def test_plan_covers_catalog(self, catalog, specs):
        plan = partition_by_priority(catalog, specs)
        plan.validate(catalog, [s.name for s in specs])

    def test_critical_on_powerful_nodes_replicated(self, catalog, specs):
        plan = partition_by_priority(catalog, specs, critical_replicas=2)
        by_power = sorted(specs, key=lambda s: (s.weight, s.name),
                          reverse=True)
        powerful = {s.name for s in by_power[:3]}
        for item in catalog:
            if item.priority is Priority.CRITICAL:
                nodes = plan.nodes_for(item.path)
                assert len(nodes) >= 2
                assert nodes <= powerful

    def test_low_priority_confined_to_weak_nodes(self, catalog, specs):
        plan = partition_by_priority(catalog, specs)
        by_power = sorted(specs, key=lambda s: (s.weight, s.name),
                          reverse=True)
        weak = {s.name for s in by_power[-3:]}
        for item in catalog:
            if item.priority is Priority.LOW:
                assert plan.nodes_for(item.path) <= weak

    def test_normal_content_uses_whole_cluster(self, catalog, specs):
        plan = partition_by_priority(catalog, specs)
        used = set()
        for item in catalog:
            if item.priority is Priority.NORMAL:
                used |= plan.nodes_for(item.path)
        assert used == {s.name for s in specs}

    def test_dynamic_content_never_on_slow_cpus(self, catalog, specs):
        plan = partition_by_priority(catalog, specs)
        fast = {s.name for s in specs if s.cpu_mhz == 350}
        for item in catalog.dynamic_items():
            assert plan.nodes_for(item.path) <= fast
            assert plan.nodes_for(item.path)  # never empty

    def test_deterministic(self, catalog, specs):
        a = partition_by_priority(catalog, specs)
        b = partition_by_priority(catalog, specs)
        assert a.locations == b.locations
