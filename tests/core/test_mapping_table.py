"""Tests for the mapping table's splice state machine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MappingError, MappingState, MappingTable
from repro.net import Address


def addr(port=5000):
    return Address("192.168.1.10", port)


@pytest.fixture
def table():
    return MappingTable()


class TestLifecycle:
    def test_create_on_syn(self, table):
        entry = table.create(addr(), now=1.0, client_isn=100, vip_isn=200)
        assert entry.state is MappingState.SYN_RECEIVED
        assert entry.client_isn == 100
        assert entry.vip_isn == 200
        assert len(table) == 1
        assert addr() in table

    def test_duplicate_connection_rejected(self, table):
        table.create(addr(), now=0.0)
        with pytest.raises(MappingError):
            table.create(addr(), now=1.0)

    def test_full_happy_path(self, table):
        """SYN_RECEIVED -> ESTABLISHED -> BOUND -> FIN_RECEIVED ->
        HALF_CLOSED -> CLOSED, the §2.2 sequence."""
        entry = table.create(addr(), now=0.0)
        table.transition(entry, MappingState.ESTABLISHED)
        table.bind(entry, object(), "s1")
        assert entry.state is MappingState.BOUND
        assert entry.backend == "s1"
        table.transition(entry, MappingState.FIN_RECEIVED)
        table.transition(entry, MappingState.HALF_CLOSED)
        table.transition(entry, MappingState.CLOSED)
        table.delete(addr())
        assert len(table) == 0
        assert table.deleted == 1

    def test_get_missing_raises(self, table):
        with pytest.raises(MappingError):
            table.get(addr())

    def test_delete_requires_closed(self, table):
        entry = table.create(addr(), now=0.0)
        table.transition(entry, MappingState.ESTABLISHED)
        with pytest.raises(MappingError):
            table.delete(addr())

    def test_abort_from_any_state(self, table):
        entry = table.create(addr(), now=0.0)
        table.transition(entry, MappingState.ESTABLISHED)
        table.abort(addr())
        assert len(table) == 0
        assert entry.state is MappingState.CLOSED


class TestIllegalTransitions:
    @pytest.mark.parametrize("bad", [
        MappingState.BOUND,          # must establish first
        MappingState.HALF_CLOSED,    # must see FIN first
    ])
    def test_from_syn_received(self, table, bad):
        entry = table.create(addr(), now=0.0)
        with pytest.raises(MappingError):
            table.transition(entry, bad)

    def test_no_transition_out_of_closed(self, table):
        entry = table.create(addr(), now=0.0)
        table.transition(entry, MappingState.CLOSED)
        with pytest.raises(MappingError):
            table.transition(entry, MappingState.ESTABLISHED)

    def test_cannot_skip_half_closed(self, table):
        entry = table.create(addr(), now=0.0)
        table.transition(entry, MappingState.ESTABLISHED)
        table.transition(entry, MappingState.FIN_RECEIVED)
        with pytest.raises(MappingError):
            table.transition(entry, MappingState.BOUND)

    def test_bind_requires_established(self, table):
        entry = table.create(addr(), now=0.0)
        with pytest.raises(MappingError):
            table.bind(entry, object(), "s1")

    def test_double_bind_rejected(self, table):
        entry = table.create(addr(), now=0.0)
        table.transition(entry, MappingState.ESTABLISHED)
        table.bind(entry, object(), "s1")
        with pytest.raises(MappingError):
            table.bind(entry, object(), "s2")


class TestBookkeeping:
    def test_peak_size(self, table):
        for port in range(5):
            table.create(addr(port), now=0.0)
        for port in range(5):
            table.abort(addr(port))
        assert table.peak_size == 5
        assert table.created == 5
        assert table.deleted == 5

    def test_bind_records_deltas(self, table):
        entry = table.create(addr(), now=0.0)
        table.transition(entry, MappingState.ESTABLISHED)
        conn = object()
        table.bind(entry, conn, "s2", seq_delta=17, ack_delta=-3)
        assert entry.pooled_conn is conn
        assert entry.seq_delta_c2s == 17
        assert entry.ack_delta_c2s == -3
        assert entry.bound

    def test_entries_listing(self, table):
        table.create(addr(1), now=0.0)
        table.create(addr(2), now=0.0)
        assert len(table.entries()) == 2


class TestPropertyBased:
    @given(ops=st.lists(st.sampled_from(["open", "close"]), min_size=1,
                        max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_size_never_negative_and_counts_consistent(self, ops):
        table = MappingTable()
        live = []
        port = 0
        for op in ops:
            if op == "open":
                port += 1
                table.create(addr(port), now=0.0)
                live.append(port)
            elif live:
                p = live.pop()
                table.abort(addr(p))
        assert len(table) == len(live)
        assert table.created - table.deleted == len(table)
        assert table.peak_size <= table.created
