"""Tests for the single-system-image document tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.content import (ContentItem, ContentType, DocTree, DocTreeError,
                           FileNode, generate_catalog)
from repro.sim import RngStream


def item(path, size=100, ctype=ContentType.HTML):
    return ContentItem(path, size, ctype)


@pytest.fixture
def tree():
    t = DocTree()
    t.insert(item("/index.html"))
    t.insert(item("/docs/a.html"), locations={"n1"})
    t.insert(item("/docs/b.html"), locations={"n1", "n2"})
    t.insert(item("/images/logo.gif", ctype=ContentType.IMAGE))
    return t


class TestInsertLookup:
    def test_insert_creates_parents(self, tree):
        node = tree.lookup("/docs/a.html")
        assert isinstance(node, FileNode)
        assert node.item.path == "/docs/a.html"

    def test_duplicate_insert_rejected(self, tree):
        with pytest.raises(DocTreeError):
            tree.insert(item("/index.html"))

    def test_lookup_missing_raises(self, tree):
        with pytest.raises(DocTreeError):
            tree.lookup("/nope.html")

    def test_lookup_root(self, tree):
        assert tree.lookup("/") is tree.root

    def test_relative_path_rejected(self, tree):
        with pytest.raises(DocTreeError):
            tree.lookup("docs/a.html")

    def test_file_vs_directory(self, tree):
        with pytest.raises(DocTreeError):
            tree.file("/docs")
        with pytest.raises(DocTreeError):
            tree.list_dir("/index.html")

    def test_file_as_directory_component_rejected(self, tree):
        with pytest.raises(DocTreeError):
            tree.insert(item("/index.html/sub.html"))

    def test_exists(self, tree):
        assert tree.exists("/docs/a.html")
        assert tree.exists("/docs")
        assert not tree.exists("/ghost")

    def test_insert_at_root_rejected(self, tree):
        with pytest.raises(DocTreeError):
            tree.insert(item("/"))


class TestLocations:
    def test_locations_recorded(self, tree):
        assert tree.locations_of("/docs/b.html") == {"n1", "n2"}

    def test_replicated_flag(self, tree):
        assert tree.file("/docs/b.html").replicated
        assert not tree.file("/docs/a.html").replicated

    def test_locations_copy_not_alias(self, tree):
        locs = tree.locations_of("/docs/a.html")
        locs.add("evil")
        assert tree.locations_of("/docs/a.html") == {"n1"}


class TestDelete:
    def test_delete_file(self, tree):
        tree.delete("/index.html")
        assert not tree.exists("/index.html")

    def test_delete_directory_subtree(self, tree):
        tree.delete("/docs")
        assert not tree.exists("/docs/a.html")
        assert not tree.exists("/docs")

    def test_delete_missing_raises(self, tree):
        with pytest.raises(DocTreeError):
            tree.delete("/nope")

    def test_delete_root_rejected(self, tree):
        with pytest.raises(DocTreeError):
            tree.delete("/")


class TestRename:
    def test_rename_file_updates_item_path(self, tree):
        tree.rename("/index.html", "/home.html")
        assert tree.exists("/home.html")
        assert not tree.exists("/index.html")
        assert tree.file("/home.html").item.path == "/home.html"

    def test_rename_directory_repaths_subtree(self, tree):
        tree.rename("/docs", "/archive/docs2")
        assert tree.file("/archive/docs2/a.html").item.path == \
            "/archive/docs2/a.html"
        assert not tree.exists("/docs")

    def test_rename_to_existing_rejected(self, tree):
        with pytest.raises(DocTreeError):
            tree.rename("/index.html", "/docs/a.html")

    def test_rename_preserves_locations(self, tree):
        tree.rename("/docs/b.html", "/docs/b2.html")
        assert tree.locations_of("/docs/b2.html") == {"n1", "n2"}


class TestTraversal:
    def test_walk_yields_all_files(self, tree):
        assert set(tree.files()) == {"/index.html", "/docs/a.html",
                                     "/docs/b.html", "/images/logo.gif"}

    def test_walk_subtree(self, tree):
        paths = [p for p, _ in tree.walk("/docs")]
        assert set(paths) == {"/docs/a.html", "/docs/b.html"}

    def test_walk_single_file(self, tree):
        paths = [p for p, _ in tree.walk("/index.html")]
        assert paths == ["/index.html"]

    def test_list_dir(self, tree):
        assert tree.list_dir("/") == ["docs", "images", "index.html"]
        assert tree.list_dir("/docs") == ["a.html", "b.html"]

    def test_mkdir(self, tree):
        tree.mkdir("/new/deep/dir")
        assert tree.list_dir("/new/deep/dir") == []

    def test_render_contains_entries(self, tree):
        text = tree.render()
        assert "/docs/a.html" in text
        assert "n1,n2" in text

    def test_render_truncates(self, tree):
        text = tree.render(max_entries=1)
        assert "more)" in text


class TestFromCatalog:
    def test_tree_mirrors_catalog(self):
        cat = generate_catalog(300, rng=RngStream(1))
        tree = DocTree()
        for it in cat:
            tree.insert(it)
        assert set(tree.files()) == set(cat.paths())


@st.composite
def path_lists(draw):
    names = st.sampled_from(["a", "b", "c", "d"])
    paths = draw(st.lists(
        st.tuples(names, names, names).map(lambda t: "/" + "/".join(t)),
        min_size=1, max_size=12, unique=True))
    return paths


class TestPropertyBased:
    @given(paths=path_lists())
    @settings(max_examples=50, deadline=None)
    def test_insert_then_walk_roundtrip(self, paths):
        tree = DocTree()
        inserted = []
        for p in paths:
            try:
                tree.insert(item(p))
                inserted.append(p)
            except DocTreeError:
                pass  # a prefix of p is already a file -- legal rejection
        assert set(tree.files()) == set(inserted)

    @given(paths=path_lists())
    @settings(max_examples=50, deadline=None)
    def test_delete_is_inverse_of_insert(self, paths):
        tree = DocTree()
        inserted = []
        for p in paths:
            try:
                tree.insert(item(p))
                inserted.append(p)
            except DocTreeError:
                pass
        for p in inserted:
            tree.delete(p)
            assert not tree.exists(p)
        assert tree.files() == []
