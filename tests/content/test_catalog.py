"""Tests for synthetic catalog generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.content import (DYNAMIC_MIX, STATIC_MIX, ContentItem, ContentType,
                           SiteCatalog, TypeMix, generate_catalog,
                           paper_catalog)
from repro.sim import RngStream


class TestTypeMix:
    def test_must_sum_to_one(self):
        with pytest.raises(ValueError):
            TypeMix(html=0.5, image=0.6, video=0.0, audio=0.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TypeMix(html=1.1, image=-0.1, video=0.0, audio=0.0)

    def test_workload_mixes_valid(self):
        assert STATIC_MIX.cgi == 0.0 and STATIC_MIX.asp == 0.0
        assert DYNAMIC_MIX.cgi > 0.0 and DYNAMIC_MIX.asp > 0.0


class TestSiteCatalog:
    def test_add_and_get(self):
        cat = SiteCatalog()
        item = ContentItem("/a.html", 100, ContentType.HTML)
        cat.add(item)
        assert cat.get("/a.html") is item
        assert "/a.html" in cat
        assert len(cat) == 1

    def test_duplicate_path_rejected(self):
        cat = SiteCatalog()
        cat.add(ContentItem("/a", 1, ContentType.HTML))
        with pytest.raises(ValueError):
            cat.add(ContentItem("/a", 2, ContentType.HTML))

    def test_missing_path_raises(self):
        cat = SiteCatalog()
        with pytest.raises(KeyError):
            cat.get("/nope")
        with pytest.raises(KeyError):
            cat.remove("/nope")

    def test_remove(self):
        cat = SiteCatalog([ContentItem("/a", 1, ContentType.HTML)])
        cat.remove("/a")
        assert len(cat) == 0

    def test_by_type_and_filters(self):
        cat = SiteCatalog([
            ContentItem("/a.html", 1, ContentType.HTML),
            ContentItem("/b.cgi", 1, ContentType.CGI),
            ContentItem("/c.gif", 1, ContentType.IMAGE),
        ])
        assert len(cat.by_type(ContentType.HTML)) == 1
        assert {i.path for i in cat.dynamic_items()} == {"/b.cgi"}
        assert {i.path for i in cat.static_items()} == {"/a.html", "/c.gif"}

    def test_total_bytes(self):
        cat = SiteCatalog([
            ContentItem("/a", 100, ContentType.HTML),
            ContentItem("/b", 200, ContentType.HTML),
        ])
        assert cat.total_bytes == 300


class TestGenerateCatalog:
    def test_count_exact(self):
        cat = generate_catalog(500, rng=RngStream(1))
        assert len(cat) == 500

    def test_n_objects_validation(self):
        with pytest.raises(ValueError):
            generate_catalog(0)

    def test_deterministic(self):
        a = generate_catalog(200, rng=RngStream(42))
        b = generate_catalog(200, rng=RngStream(42))
        assert {(i.path, i.size_bytes) for i in a} == \
               {(i.path, i.size_bytes) for i in b}

    def test_type_mix_approximately_respected(self):
        cat = generate_catalog(2000, rng=RngStream(2), mix=DYNAMIC_MIX)
        counts = cat.type_counts()
        n = len(cat)
        assert counts[ContentType.IMAGE] / n == pytest.approx(
            DYNAMIC_MIX.image, abs=0.01)
        assert counts[ContentType.CGI] / n == pytest.approx(
            DYNAMIC_MIX.cgi, abs=0.01)

    def test_static_mix_has_no_dynamic(self):
        cat = generate_catalog(1000, rng=RngStream(3), mix=STATIC_MIX)
        assert not cat.dynamic_items()

    def test_dynamic_items_have_cpu_work(self):
        cat = generate_catalog(1000, rng=RngStream(4), mix=DYNAMIC_MIX)
        for item in cat.dynamic_items():
            assert item.cpu_work > 0
        for item in cat.static_items():
            assert item.cpu_work == 0

    def test_paths_route_back_to_their_type(self):
        cat = generate_catalog(500, rng=RngStream(5), mix=DYNAMIC_MIX)
        for item in cat:
            assert ContentType.from_path(item.path) is item.ctype

    def test_large_file_concentration_matches_paper_direction(self):
        """§1.2 quotes Arlitt & Jin: large files are a tiny count fraction
        but most of the bytes.  Our generator must reproduce the direction:
        few large files, large byte share."""
        cat = generate_catalog(5000, rng=RngStream(6), mix=STATIC_MIX)
        stats = cat.large_file_stats()
        assert stats["large_fraction"] < 0.15
        assert stats["byte_fraction"] > 0.5

    def test_video_files_are_big(self):
        cat = generate_catalog(2000, rng=RngStream(7), mix=STATIC_MIX)
        videos = cat.by_type(ContentType.VIDEO)
        assert videos
        assert min(v.size_bytes for v in videos) >= 512 * 1024

    def test_some_critical_and_mutable(self):
        cat = generate_catalog(2000, rng=RngStream(8), mix=DYNAMIC_MIX)
        from repro.content import Priority
        crit = [i for i in cat if i.priority is Priority.CRITICAL]
        mut = [i for i in cat if i.mutable]
        assert crit and mut

    def test_paper_catalog_scale(self):
        cat = paper_catalog(rng=RngStream(9))
        assert len(cat) == 8700

    @given(n=st.integers(1, 300))
    @settings(max_examples=20, deadline=None)
    def test_property_exact_count_any_n(self, n):
        cat = generate_catalog(n, rng=RngStream(10), mix=DYNAMIC_MIX)
        assert len(cat) == n
        # every path unique and absolute
        paths = cat.paths()
        assert len(set(paths)) == n
        assert all(p.startswith("/") for p in paths)
