"""Tests for content items and type classification."""

import pytest

from repro.content import (DYNAMIC_WEIGHTS, STATIC_WEIGHTS, ContentItem,
                           ContentType, Priority)


class TestContentType:
    def test_dynamic_classification(self):
        assert ContentType.CGI.is_dynamic
        assert ContentType.ASP.is_dynamic
        assert not ContentType.HTML.is_dynamic
        assert not ContentType.VIDEO.is_dynamic

    def test_multimedia_classification(self):
        assert ContentType.VIDEO.is_multimedia
        assert ContentType.AUDIO.is_multimedia
        assert not ContentType.CGI.is_multimedia

    def test_static_is_complement_of_dynamic(self):
        for t in ContentType:
            assert t.is_static == (not t.is_dynamic)

    def test_load_weights_match_paper(self):
        # §3.3: static CPU=1/Disk=9, dynamic CPU=10/Disk=5
        assert ContentType.HTML.load_weights == STATIC_WEIGHTS
        assert STATIC_WEIGHTS.cpu == 1.0 and STATIC_WEIGHTS.disk == 9.0
        assert ContentType.CGI.load_weights == DYNAMIC_WEIGHTS
        assert DYNAMIC_WEIGHTS.cpu == 10.0 and DYNAMIC_WEIGHTS.disk == 5.0
        assert STATIC_WEIGHTS.total == 10.0
        assert DYNAMIC_WEIGHTS.total == 15.0

    @pytest.mark.parametrize("path,expected", [
        ("/index.html", ContentType.HTML),
        ("/a/b/page.htm", ContentType.HTML),
        ("/images/logo.gif", ContentType.IMAGE),
        ("/images/photo.JPG", ContentType.IMAGE),
        ("/cgi-bin/search", ContentType.CGI),
        ("/scripts/run.cgi", ContentType.CGI),
        ("/shop/cart.asp", ContentType.ASP),
        ("/video/trailer.mpg", ContentType.VIDEO),
        ("/audio/theme.mp3", ContentType.AUDIO),
        ("/no/extension", ContentType.HTML),
    ])
    def test_from_path(self, path, expected):
        assert ContentType.from_path(path) is expected


class TestContentItem:
    def test_valid_item(self):
        item = ContentItem("/a.html", 1024, ContentType.HTML)
        assert item.priority is Priority.NORMAL
        assert not item.mutable
        assert not item.is_large

    def test_relative_path_rejected(self):
        with pytest.raises(ValueError):
            ContentItem("a.html", 10, ContentType.HTML)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ContentItem("/a", -1, ContentType.HTML)

    def test_negative_cpu_work_rejected(self):
        with pytest.raises(ValueError):
            ContentItem("/a", 1, ContentType.CGI, cpu_work=-0.1)

    def test_is_large_threshold(self):
        assert not ContentItem("/a", 64 * 1024, ContentType.HTML).is_large
        assert ContentItem("/a", 64 * 1024 + 1, ContentType.HTML).is_large

    def test_hashable_by_path(self):
        a = ContentItem("/x", 1, ContentType.HTML)
        b = ContentItem("/x", 2, ContentType.IMAGE)
        assert hash(a) == hash(b)

    def test_priority_ordering(self):
        assert Priority.CRITICAL < Priority.NORMAL < Priority.LOW
