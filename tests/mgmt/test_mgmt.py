"""Tests for the controller / broker / agent management system."""

import pytest

from repro.cluster import (BackendServer, distributor_spec,
                           paper_testbed_specs)
from repro.content import ContentItem, ContentType, DocTree
from repro.core import UrlTable, UrlTableError
from repro.mgmt import (Broker, Controller, ManagementError, RemoteConsole,
                        StatusAgent, StatusReport)
from repro.net import Lan, Nic
from repro.sim import Simulator


def build(n_nodes=3):
    sim = Simulator()
    lan = Lan(sim)
    specs = paper_testbed_specs()[:n_nodes]
    servers = {s.name: BackendServer(sim, lan, s) for s in specs}
    controller_nic = Nic(sim, 100, name="controller")
    url_table = UrlTable()
    doctree = DocTree()
    controller = Controller(sim, controller_nic, url_table, doctree)
    registry: dict[str, Broker] = {}
    for server in servers.values():
        broker = Broker(sim, lan, server, controller_nic, registry)
        controller.register_broker(broker)
    return sim, servers, controller, registry


def run_op(sim, controller, op):
    """Execute one management generator to completion; return its value."""
    proc = sim.process(op)
    sim.run()
    return proc.value


def item(path, size=8192, ctype=ContentType.HTML):
    return ContentItem(path, size, ctype)


class TestPlace:
    def test_place_installs_and_registers(self):
        sim, servers, controller, registry = build()
        node = next(iter(servers))
        doc = item("/new/page.html")
        run_op(sim, controller, controller.place(doc, node))
        assert servers[node].holds(doc.path)
        assert controller.url_table.locations(doc.path) == {node}
        assert controller.doctree.locations_of(doc.path) == {node}

    def test_place_takes_simulated_time(self):
        sim, servers, controller, registry = build()
        node = next(iter(servers))
        run_op(sim, controller, controller.place(item("/t.html"), node))
        assert sim.now > 0.0

    def test_place_on_unknown_node_rejected(self):
        sim, servers, controller, registry = build()
        gen = controller.place(item("/x.html"), "ghost")
        with pytest.raises(ManagementError):
            run_op(sim, controller, gen)

    def test_place_second_node_adds_location(self):
        sim, servers, controller, registry = build()
        names = sorted(servers)
        doc = item("/shared.html")
        run_op(sim, controller, controller.place(doc, names[0]))
        run_op(sim, controller, controller.place(doc, names[1],
                                                 source=names[0]))
        assert controller.url_table.locations(doc.path) == set(names[:2])


class TestReplicateOffload:
    def test_replicate_copies_from_existing_holder(self):
        sim, servers, controller, registry = build()
        names = sorted(servers)
        doc = item("/hot.html")
        run_op(sim, controller, controller.place(doc, names[0]))
        run_op(sim, controller, controller.replicate(doc.path, names[1]))
        assert servers[names[1]].holds(doc.path)
        assert controller.url_table.locations(doc.path) == set(names[:2])

    def test_replicate_to_holder_is_noop(self):
        sim, servers, controller, registry = build()
        names = sorted(servers)
        doc = item("/hot.html")
        run_op(sim, controller, controller.place(doc, names[0]))
        dispatches_before = controller.dispatches
        run_op(sim, controller, controller.replicate(doc.path, names[0]))
        assert controller.dispatches == dispatches_before

    def test_offload_removes_copy_and_location(self):
        sim, servers, controller, registry = build()
        names = sorted(servers)
        doc = item("/hot.html")
        run_op(sim, controller, controller.place(doc, names[0]))
        run_op(sim, controller, controller.replicate(doc.path, names[1]))
        run_op(sim, controller, controller.offload(doc.path, names[0]))
        assert not servers[names[0]].holds(doc.path)
        assert controller.url_table.locations(doc.path) == {names[1]}

    def test_offload_last_copy_refused(self):
        sim, servers, controller, registry = build()
        names = sorted(servers)
        doc = item("/only.html")
        run_op(sim, controller, controller.place(doc, names[0]))
        with pytest.raises(UrlTableError):
            run_op(sim, controller, controller.offload(doc.path, names[0]))
        assert servers[names[0]].holds(doc.path)  # copy untouched


class TestRemoveRename:
    def test_remove_document_everywhere(self):
        sim, servers, controller, registry = build()
        names = sorted(servers)
        doc = item("/gone.html")
        run_op(sim, controller, controller.place(doc, names[0]))
        run_op(sim, controller, controller.replicate(doc.path, names[1]))
        run_op(sim, controller, controller.remove_document(doc.path))
        assert doc.path not in controller.url_table
        assert not controller.doctree.exists(doc.path)
        for name in names[:2]:
            assert not servers[name].holds(doc.path)

    def test_rename_document(self):
        sim, servers, controller, registry = build()
        names = sorted(servers)
        doc = item("/old-name.html")
        run_op(sim, controller, controller.place(doc, names[0]))
        new = item("/new-name.html")
        run_op(sim, controller, controller.rename_document(doc.path, new))
        assert "/new-name.html" in controller.url_table
        assert "/old-name.html" not in controller.url_table
        assert servers[names[0]].holds("/new-name.html")
        assert not servers[names[0]].holds("/old-name.html")


class TestUpdateContent:
    def test_update_propagates_to_all_replicas(self):
        sim, servers, controller, registry = build()
        names = sorted(servers)
        doc = item("/mutable.html", size=4096)
        run_op(sim, controller, controller.place(doc, names[0]))
        run_op(sim, controller, controller.replicate(doc.path, names[1]))
        # warm a cache so invalidation is observable
        servers[names[0]].cache.admit(doc.path, doc.size_bytes)
        new_version = item("/mutable.html", size=6000)
        run_op(sim, controller, controller.update_content(new_version))
        assert doc.path not in servers[names[0]].cache
        assert servers[names[0]].store.get(doc.path).size_bytes == 6000
        assert servers[names[1]].store.get(doc.path).size_bytes == 6000


class TestStatusAndVerify:
    def test_status_all_reports_every_node(self):
        sim, servers, controller, registry = build()
        reports = run_op(sim, controller, controller.status_all())
        assert set(reports) == set(servers)
        for name, report in reports.items():
            assert isinstance(report, StatusReport)
            assert report.node == name
            assert report.alive

    def test_verify_placement_consistent(self):
        sim, servers, controller, registry = build()
        node = sorted(servers)[0]
        doc = item("/v.html")
        run_op(sim, controller, controller.place(doc, node))
        bad = run_op(sim, controller, controller.verify_placement(doc.path))
        assert bad == []

    def test_verify_placement_detects_drift(self):
        sim, servers, controller, registry = build()
        names = sorted(servers)
        doc = item("/drift.html")
        run_op(sim, controller, controller.place(doc, names[0]))
        # someone deletes the file behind the controller's back
        servers[names[0]].store.remove(doc.path)
        bad = run_op(sim, controller, controller.verify_placement(doc.path))
        assert bad == [names[0]]


class TestMobileCodeCaching:
    def test_agent_class_downloaded_once_per_broker(self):
        sim, servers, controller, registry = build()
        node = sorted(servers)[0]
        for i in range(3):
            run_op(sim, controller,
                   controller.place(item(f"/f{i}.html"), node))
        broker = registry[node]
        assert broker.agents_executed == 3
        assert broker.code_downloads == 1  # CopyAgent class cached after 1st


class TestRemoteConsole:
    def make(self):
        sim, servers, controller, registry = build()
        return sim, servers, controller, RemoteConsole(controller)

    def test_insert_file_multi_node(self):
        sim, servers, controller, console = self.make()
        names = sorted(servers)
        doc = item("/c/new.html")
        console.run(console.insert_file(doc, set(names[:2])))
        assert console.locations_of(doc.path) == set(names[:2])
        for n in names[:2]:
            assert servers[n].holds(doc.path)

    def test_insert_needs_nodes(self):
        sim, servers, controller, console = self.make()
        with pytest.raises(ManagementError):
            console.run(console.insert_file(item("/c/x.html"), set()))

    def test_delete_file(self):
        sim, servers, controller, console = self.make()
        names = sorted(servers)
        doc = item("/c/d.html")
        console.run(console.insert_file(doc, {names[0]}))
        console.run(console.delete_file(doc.path))
        assert not console.exists(doc.path)

    def test_rename_file(self):
        sim, servers, controller, console = self.make()
        names = sorted(servers)
        console.run(console.insert_file(item("/c/a.html"), {names[0]}))
        console.run(console.rename_file("/c/a.html", "/c/b.html"))
        assert console.exists("/c/b.html")
        assert not console.exists("/c/a.html")

    def test_assign_reaches_exact_replica_set(self):
        sim, servers, controller, console = self.make()
        names = sorted(servers)
        doc = item("/c/assign.html")
        console.run(console.insert_file(doc, {names[0]}))
        console.run(console.assign(doc.path, {names[1], names[2]}))
        assert console.locations_of(doc.path) == {names[1], names[2]}
        assert not servers[names[0]].holds(doc.path)
        assert servers[names[1]].holds(doc.path)

    def test_view_renders_locations(self):
        sim, servers, controller, console = self.make()
        names = sorted(servers)
        console.run(console.insert_file(item("/c/v.html"), {names[0]}))
        assert "/c/v.html" in console.view()
        assert names[0] in console.view()

    def test_list_dir(self):
        sim, servers, controller, console = self.make()
        names = sorted(servers)
        console.run(console.insert_file(item("/c/one.html"), {names[0]}))
        console.run(console.insert_file(item("/c/two.html"), {names[0]}))
        assert console.list_dir("/c") == ["one.html", "two.html"]
