"""Unit tests for the controller WAL / checkpoint / replay machinery."""

import dataclasses

import pytest

from repro.cluster import BackendServer, paper_testbed_specs
from repro.content import ContentItem, ContentType, DocTree, Priority
from repro.core import UrlTable
from repro.mgmt import (Broker, Controller, ControllerDurability,
                        ControllerWal, DurabilityConfig, WalCorruption,
                        WalRecord)
from repro.mgmt.durability import (item_from_payload, item_to_payload,
                                   record_checksum, replay_apply,
                                   snapshot_records)
from repro.net import Lan, Nic
from repro.sim import Simulator


def item(path, size=8192, ctype=ContentType.HTML, **kw):
    return ContentItem(path, size, ctype, **kw)


def build(n_nodes=3, checkpoint_every=24):
    sim = Simulator()
    lan = Lan(sim)
    specs = paper_testbed_specs()[:n_nodes]
    servers = {s.name: BackendServer(sim, lan, s) for s in specs}
    controller_nic = Nic(sim, 100, name="controller")
    controller = Controller(sim, controller_nic, UrlTable(), DocTree())
    registry: dict[str, Broker] = {}
    for server in servers.values():
        broker = Broker(sim, lan, server, controller_nic, registry)
        controller.register_broker(broker)
    durability = ControllerDurability(
        DurabilityConfig(checkpoint_every=checkpoint_every))
    durability.attach(controller)
    return sim, servers, controller, durability


def run_op(sim, controller, op):
    proc = sim.process(op)
    sim.run()
    return proc.value


class TestWalRecords:
    def test_append_assigns_monotone_lsns_and_checksums(self):
        wal = ControllerWal()
        r1 = wal.append("intent", {"op_id": 1, "op": "place"})
        r2 = wal.append("commit", {"op_id": 1})
        assert (r1.lsn, r2.lsn) == (1, 2)
        r1.verify()
        r2.verify()
        assert r1.checksum == record_checksum(1, "intent", r1.payload)

    def test_corrupted_record_fails_verification(self):
        wal = ControllerWal()
        good = wal.append("intent", {"op_id": 1, "op": "place"})
        bad = WalRecord(lsn=good.lsn, kind=good.kind,
                        payload={"op_id": 2, "op": "place"},
                        checksum=good.checksum)
        wal.records[0] = bad
        with pytest.raises(WalCorruption):
            wal.replay()

    def test_checksum_depends_on_lsn_kind_and_payload(self):
        base = record_checksum(1, "intent", {"a": 1})
        assert record_checksum(2, "intent", {"a": 1}) != base
        assert record_checksum(1, "commit", {"a": 1}) != base
        assert record_checksum(1, "intent", {"a": 2}) != base

    def test_checkpoint_truncates_record_tail(self):
        wal = ControllerWal()
        for n in range(5):
            wal.append("apply", {"action": "route-add", "path": f"/{n}",
                                 "node": "a"})
        wal.set_checkpoint({"records": [], "open_intents": [],
                            "next_op_id": 1, "lsn": 5})
        assert wal.records == []
        assert wal.truncations == 1
        assert wal.next_lsn == 6  # lsns keep counting past the checkpoint

    def test_item_payload_roundtrip(self):
        original = item("/a/b.html", 1234, ContentType.CGI,
                        priority=Priority.CRITICAL, mutable=True,
                        cpu_work=0.25)
        restored = item_from_payload(item_to_payload(original))
        assert restored == original
        assert restored.priority is Priority.CRITICAL
        assert restored.mutable and restored.cpu_work == 0.25


class TestReplayApply:
    def setup_method(self):
        self.table = UrlTable()
        self.tree = DocTree()
        self.doc = item("/d/x.html")
        self.table.insert(self.doc, {"a"})
        self.tree.insert(self.doc, {"a"})

    def test_route_add_is_idempotent(self):
        payload = {"path": "/d/x.html", "node": "b"}
        assert replay_apply(self.table, self.tree, "route-add", payload)
        assert not replay_apply(self.table, self.tree, "route-add", payload)
        assert self.table.locations("/d/x.html") == {"a", "b"}

    def test_route_add_inserts_unknown_doc_from_item_payload(self):
        payload = {"path": "/new.html", "node": "a",
                   "item": item_to_payload(item("/new.html"))}
        assert replay_apply(self.table, self.tree, "route-add", payload)
        assert self.table.locations("/new.html") == {"a"}

    def test_route_add_without_item_for_unknown_doc_is_noop(self):
        # a location-only add whose doc a later suffix record removed
        assert not replay_apply(self.table, self.tree, "route-add",
                                {"path": "/gone.html", "node": "a"})

    def test_route_drop_never_drops_last_copy(self):
        assert not replay_apply(self.table, self.tree, "route-drop",
                                {"path": "/d/x.html", "node": "a"})
        replay_apply(self.table, self.tree, "route-add",
                     {"path": "/d/x.html", "node": "b"})
        assert replay_apply(self.table, self.tree, "route-drop",
                            {"path": "/d/x.html", "node": "a"})
        assert not replay_apply(self.table, self.tree, "route-drop",
                                {"path": "/d/x.html", "node": "a"})

    def test_route_remove_is_idempotent(self):
        payload = {"path": "/d/x.html"}
        assert replay_apply(self.table, self.tree, "route-remove", payload)
        assert not replay_apply(self.table, self.tree, "route-remove",
                                payload)
        assert "/d/x.html" not in self.table

    def test_route_rename_replays_from_either_state(self):
        new = item("/d/y.html")
        payload = {"old": "/d/x.html", "path": "/d/y.html",
                   "item": item_to_payload(new), "nodes": ["a"]}
        assert replay_apply(self.table, self.tree, "route-rename", payload)
        assert "/d/y.html" in self.table and "/d/x.html" not in self.table
        # replaying once renamed is a no-op
        assert not replay_apply(self.table, self.tree, "route-rename",
                                payload)

    def test_route_size_is_idempotent(self):
        payload = {"path": "/d/x.html", "size_bytes": 999}
        assert replay_apply(self.table, self.tree, "route-size", payload)
        assert not replay_apply(self.table, self.tree, "route-size",
                                payload)
        assert self.table.record("/d/x.html").item.size_bytes == 999

    def test_unknown_action_raises(self):
        with pytest.raises(WalCorruption):
            replay_apply(self.table, self.tree, "route-bogus", {})

    def test_snapshot_records_sorted_and_canonical(self):
        self.table.insert(item("/a.html"), {"b", "a"})
        rows = snapshot_records(self.table)
        assert [row["path"] for row in rows] == sorted(
            row["path"] for row in rows)
        assert rows[0]["locations"] == sorted(rows[0]["locations"])


class TestControllerDurability:
    def test_operations_append_intent_applies_and_commit(self):
        sim, servers, controller, durability = build()
        node = sorted(servers)[0]
        run_op(sim, controller, controller.place(item("/p.html"), node))
        kinds = [r.kind for r in durability.wal.records]
        assert kinds == ["intent", "dispatch", "apply", "commit"]
        assert durability.commits == 1
        assert durability.open == {}
        assert durability.verify_consistency() == []

    def test_checkpoint_triggers_after_configured_appends(self):
        sim, servers, controller, durability = build(checkpoint_every=4)
        node = sorted(servers)[0]
        run_op(sim, controller, controller.place(item("/p1.html"), node))
        # one op = 4 appends >= checkpoint_every -> checkpointed at commit
        assert durability.checkpoints == 2  # initial (attach) + periodic
        assert durability.wal.records == []
        assert durability.wal.checkpoint is not None
        run_op(sim, controller, controller.place(item("/p2.html"), node))
        assert durability.checkpoints == 3
        assert durability.verify_consistency() == []

    def test_failed_op_appends_abort_and_closes_intent(self):
        sim, servers, controller, durability = build()
        node = sorted(servers)[0]
        doc = item("/only.html")
        run_op(sim, controller, controller.place(doc, node))
        with pytest.raises(Exception):
            run_op(sim, controller, controller.offload(doc.path, node))
        assert durability.aborts == 1
        assert durability.open == {}
        assert durability.verify_consistency() == []

    def test_open_intents_recomputed_from_wal(self):
        sim, servers, controller, durability = build()
        op_id = durability.log_intent("place", {"path": "/x.html",
                                                "node": "a", "source": None,
                                                "item": None})
        assert [i["op_id"] for i in durability.open_intents_from_wal()] == \
            [op_id]
        durability.log_commit(op_id)
        assert durability.open_intents_from_wal() == []

    def test_open_intents_survive_checkpoint(self):
        sim, servers, controller, durability = build()
        op_id = durability.log_intent("place", {"path": "/x.html",
                                                "node": "a", "source": None,
                                                "item": None})
        durability.take_checkpoint()
        assert durability.wal.records == []
        assert [i["op_id"] for i in durability.open_intents_from_wal()] == \
            [op_id]

    def test_monitor_and_reconcile_mutations_are_walled(self):
        sim, servers, controller, durability = build()
        nodes = sorted(servers)
        doc = item("/w.html")
        run_op(sim, controller, controller.place(doc, nodes[0]))
        run_op(sim, controller, controller.replicate(doc.path, nodes[1]))
        # simulate the monitor dropping a dead node's routes
        controller.wal_apply("route-drop", path=doc.path, node=nodes[1])
        controller.url_table.remove_location(doc.path, nodes[1])
        controller.doctree.file(doc.path).locations.discard(nodes[1])
        assert durability.verify_consistency() == []

    def test_take_checkpoint_requires_attachment(self):
        durability = ControllerDurability()
        with pytest.raises(ValueError):
            durability.take_checkpoint()

    def test_config_fields(self):
        config = DurabilityConfig(checkpoint_every=7, recovery_grace=0.1,
                                  restart_delay=0.2)
        fields = {f.name for f in dataclasses.fields(config)}
        assert fields == {"checkpoint_every", "recovery_grace",
                          "restart_delay"}
