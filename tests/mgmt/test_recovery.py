"""Crash/recovery semantics: per-op roll-forward/roll-back, and the
durability gate's byte-exactness (durability=None changes nothing)."""

import pytest

from repro.cluster import BackendServer, paper_testbed_specs
from repro.content import ContentItem, ContentType, DocTree
from repro.core import UrlTable
from repro.mgmt import (Broker, Controller, ControllerCrashed,
                        ControllerDurability, CrashPlan, DurabilityConfig,
                        recover)
from repro.net import Lan, Nic
from repro.sim import Simulator


def item(path, size=8192, ctype=ContentType.HTML, **kw):
    return ContentItem(path, size, ctype, **kw)


def build(n_nodes=3, durability=True, crash_plan=None):
    sim = Simulator()
    lan = Lan(sim)
    specs = paper_testbed_specs()[:n_nodes]
    servers = {s.name: BackendServer(sim, lan, s) for s in specs}
    controller_nic = Nic(sim, 100, name="controller")
    controller = Controller(sim, controller_nic, UrlTable(), DocTree())
    registry: dict[str, Broker] = {}
    for server in servers.values():
        broker = Broker(sim, lan, server, controller_nic, registry)
        controller.register_broker(broker)
    dur = None
    if durability:
        dur = ControllerDurability(DurabilityConfig(recovery_grace=0.3))
        dur.attach(controller)
        dur.crash_plan = crash_plan
    return sim, servers, controller, dur


def run_op(sim, controller, op):
    proc = sim.process(op)
    sim.run()
    return proc.value


def crash_then_recover(sim, controller, op, *, restart_delay=0.5):
    """Drive ``op`` expecting a planned crash; restart + recover."""
    state = {}

    def driver():
        try:
            yield from op
            state["completed"] = True
        except ControllerCrashed:
            state["interrupted"] = True
            yield sim.timeout(restart_delay)
            controller.restart()
            state["report"] = yield from recover(controller)

    sim.process(driver())
    sim.run()
    return state


def resolution_actions(report):
    return [(r["op"], r["action"]) for r in report.resolutions]


class TestPlacementRecovery:
    # boundary map for a single place op on a fresh controller:
    # 1=wal:intent  2=wal:dispatch  3=deliver  4=wal:apply  5=wal:commit

    def test_crash_before_delivery_rolls_back(self):
        sim, servers, controller, dur = build(
            crash_plan=CrashPlan(at_boundary=2))
        node = sorted(servers)[0]
        doc = item("/r/p.html")
        state = crash_then_recover(sim, controller,
                                   controller.place(doc, node))
        assert state.get("interrupted")
        assert resolution_actions(state["report"]) == \
            [("place", "rolled-back")]
        assert doc.path not in controller.url_table
        assert not servers[node].holds(doc.path)
        assert state["report"].clean

    def test_crash_after_delivery_rolls_forward(self):
        sim, servers, controller, dur = build(
            crash_plan=CrashPlan(at_boundary=3))
        node = sorted(servers)[0]
        doc = item("/r/p.html")
        state = crash_then_recover(sim, controller,
                                   controller.place(doc, node))
        assert resolution_actions(state["report"]) == \
            [("place", "rolled-forward")]
        assert controller.url_table.locations(doc.path) == {node}
        assert servers[node].holds(doc.path)
        assert state["report"].clean

    def test_crash_between_apply_log_and_mutation_is_already_applied(self):
        sim, servers, controller, dur = build(
            crash_plan=CrashPlan(at_boundary=4))
        node = sorted(servers)[0]
        doc = item("/r/p.html")
        state = crash_then_recover(sim, controller,
                                   controller.place(doc, node))
        # the apply record replays the route; resolution finds it applied
        assert resolution_actions(state["report"]) == \
            [("place", "already-applied")]
        assert controller.url_table.locations(doc.path) == {node}
        assert state["report"].clean

    def test_recovery_is_idempotent_across_passes(self):
        sim, servers, controller, dur = build(
            crash_plan=CrashPlan(at_boundary=3))
        node = sorted(servers)[0]
        doc = item("/r/p.html")
        state = crash_then_recover(sim, controller,
                                   controller.place(doc, node))
        assert state["report"].clean
        second = run_op(sim, controller, recover(controller))
        assert second.open_intents == 0
        assert second.clean


class TestOffloadRecovery:
    def test_crash_mid_offload_rolls_back_when_still_routed(self):
        # offload boundaries: 1=intent, 2=apply(route-drop), then the
        # route mutation happens, 3=dispatch, 4=deliver, 5=commit.
        # crash at 1: route never dropped -> rolled back, copy kept.
        sim, servers, controller, _ = build()
        nodes = sorted(servers)
        doc = item("/r/o.html")
        run_op(sim, controller, controller.place(doc, nodes[0]))
        run_op(sim, controller, controller.replicate(doc.path, nodes[1]))
        dur = controller.durability
        base = dur.boundaries
        dur.crash_plan = CrashPlan(at_boundary=base + 1)
        state = crash_then_recover(sim, controller,
                                   controller.offload(doc.path, nodes[0]))
        assert resolution_actions(state["report"]) == \
            [("offload", "rolled-back")]
        assert controller.url_table.locations(doc.path) == set(nodes[:2])
        assert servers[nodes[0]].holds(doc.path)
        assert state["report"].clean

    def test_crash_after_route_drop_redrives_delete(self):
        sim, servers, controller, _ = build()
        nodes = sorted(servers)
        doc = item("/r/o.html")
        run_op(sim, controller, controller.place(doc, nodes[0]))
        run_op(sim, controller, controller.replicate(doc.path, nodes[1]))
        dur = controller.durability
        # crash right after the route-drop apply record lands
        dur.crash_plan = CrashPlan(at_boundary=dur.boundaries + 2)
        state = crash_then_recover(sim, controller,
                                   controller.offload(doc.path, nodes[0]))
        assert resolution_actions(state["report"]) == \
            [("offload", "rolled-forward")]
        assert controller.url_table.locations(doc.path) == {nodes[1]}
        assert not servers[nodes[0]].holds(doc.path)
        assert state["report"].clean


class TestUpdateRenameRemoveRecovery:
    def test_crash_mid_update_repushes_to_all_replicas(self):
        sim, servers, controller, _ = build()
        nodes = sorted(servers)
        doc = item("/r/u.html", mutable=True)
        run_op(sim, controller, controller.place(doc, nodes[0]))
        run_op(sim, controller, controller.replicate(doc.path, nodes[1]))
        dur = controller.durability
        dur.crash_plan = CrashPlan(at_boundary=dur.boundaries + 4)
        bigger = item("/r/u.html", size=20000, mutable=True)
        state = crash_then_recover(sim, controller,
                                   controller.update_content(bigger))
        assert resolution_actions(state["report"]) == \
            [("update", "rolled-forward")]
        assert controller.url_table.record(doc.path).item.size_bytes == \
            20000
        assert state["report"].clean

    def test_crash_mid_rename_completes_rename(self):
        sim, servers, controller, _ = build()
        nodes = sorted(servers)
        doc = item("/r/old.html")
        run_op(sim, controller, controller.place(doc, nodes[0]))
        dur = controller.durability
        dur.crash_plan = CrashPlan(at_boundary=dur.boundaries + 3)
        new = item("/r/new.html")
        state = crash_then_recover(
            sim, controller, controller.rename_document(doc.path, new))
        assert resolution_actions(state["report"]) == \
            [("rename", "rolled-forward")]
        assert "/r/new.html" in controller.url_table
        assert "/r/old.html" not in controller.url_table
        assert servers[nodes[0]].holds("/r/new.html")
        assert state["report"].clean

    def test_crash_mid_remove_completes_removal(self):
        sim, servers, controller, _ = build()
        nodes = sorted(servers)
        doc = item("/r/gone.html")
        run_op(sim, controller, controller.place(doc, nodes[0]))
        run_op(sim, controller, controller.replicate(doc.path, nodes[1]))
        dur = controller.durability
        dur.crash_plan = CrashPlan(at_boundary=dur.boundaries + 3)
        state = crash_then_recover(sim, controller,
                                   controller.remove_document(doc.path))
        assert resolution_actions(state["report"]) == \
            [("remove", "rolled-forward")]
        assert doc.path not in controller.url_table
        assert not servers[nodes[0]].holds(doc.path)
        assert not servers[nodes[1]].holds(doc.path)
        assert state["report"].clean


class TestCrashSemantics:
    def test_execute_on_crashed_controller_raises(self):
        sim, servers, controller, _ = build()
        controller.crash()
        node = sorted(servers)[0]
        gen = controller.place(item("/x.html"), node)
        with pytest.raises(ControllerCrashed):
            next(gen)

    def test_crash_and_restart_are_idempotent(self):
        sim, servers, controller, _ = build()
        controller.crash()
        controller.crash()
        assert controller.crashes == 1
        controller.restart()
        controller.restart()
        assert controller.restarts == 1
        assert controller.alive

    def test_recover_requires_alive_controller(self):
        sim, servers, controller, _ = build()
        controller.crash()
        with pytest.raises(ValueError):
            next(recover(controller))

    def test_recover_requires_durability(self):
        sim, servers, controller, _ = build(durability=False)
        with pytest.raises(ValueError):
            next(recover(controller))


class TestDurabilityGating:
    """durability=None must not perturb the simulation at all."""

    def _script(self, durability):
        sim, servers, controller, _ = build(durability=durability)
        nodes = sorted(servers)
        doc = item("/g/a.html", mutable=True)
        run_op(sim, controller, controller.place(doc, nodes[0]))
        run_op(sim, controller, controller.replicate(doc.path, nodes[1]))
        run_op(sim, controller,
               controller.update_content(item("/g/a.html", 16000,
                                              mutable=True)))
        run_op(sim, controller, controller.offload(doc.path, nodes[0]))
        run_op(sim, controller, controller.remove_document(doc.path))
        return sim, controller

    def test_event_sequence_identical_with_and_without_durability(self):
        # WAL appends are pure bookkeeping (no simulated events), so the
        # gated path must reproduce the ungated timeline exactly
        sim_off, ctl_off = self._script(durability=False)
        sim_on, ctl_on = self._script(durability=True)
        assert sim_on.now == sim_off.now
        assert sim_on.event_count == sim_off.event_count
        assert ctl_on.log == ctl_off.log
        assert ctl_on.dispatches == ctl_off.dispatches
