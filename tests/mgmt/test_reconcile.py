"""Tests for dispatch timeouts and node reconciliation (chaos support).

The chaos harness needs two management-plane guarantees: a dispatch whose
agent is lost in flight must not hang the controller forever, and a node
returning from a crash must be reconciled with the URL table (the monitor
routes documents away from dead nodes, but cannot delete bytes on them).
"""

import pytest

from repro.cluster import BackendServer, paper_testbed_specs
from repro.content import ContentItem, ContentType, DocTree
from repro.core import RoutingView, UrlTable
from repro.mgmt import Broker, ClusterMonitor, Controller, StatusAgent
from repro.net import Lan, Nic
from repro.sim import Simulator


def build(n_nodes=3):
    sim = Simulator()
    lan = Lan(sim)
    specs = paper_testbed_specs()[:n_nodes]
    servers = {s.name: BackendServer(sim, lan, s) for s in specs}
    nic = Nic(sim, 100, name="controller")
    controller = Controller(sim, nic, UrlTable(), DocTree())
    registry = {}
    for server in servers.values():
        controller.register_broker(Broker(sim, lan, server, nic, registry))
    view = RoutingView({s.name: s.weight for s in specs})
    return sim, servers, controller, view, registry


def run_op(sim, gen, horizon=10.0):
    proc = sim.process(gen)
    sim.run(until=sim.now + horizon)
    assert proc.processed
    return proc.value


def item(path, size=4096):
    return ContentItem(path, size, ContentType.HTML)


class TestDispatchTimeout:
    def test_lost_dispatch_resolves_to_synthetic_failure(self):
        sim, servers, controller, view, registry = build()
        node = sorted(servers)[0]
        registry[node].drop_filter = lambda dispatch: True
        result = run_op(sim, controller.execute(StatusAgent(), node,
                                                timeout=0.5))
        assert not result.ok
        assert result.detail == {"error": "timeout"}
        assert result.completed_at == pytest.approx(0.5)
        assert controller.timeouts == 1
        assert controller.failures == 1
        assert registry[node].dispatches_dropped == 1

    def test_default_timeout_applies_when_unset_per_call(self):
        sim, servers, controller, view, registry = build()
        node = sorted(servers)[0]
        controller.default_timeout = 0.25
        registry[node].drop_filter = lambda dispatch: True
        result = run_op(sim, controller.execute(StatusAgent(), node))
        assert not result.ok and controller.timeouts == 1

    def test_healthy_dispatch_unaffected_by_timeout(self):
        sim, servers, controller, view, registry = build()
        node = sorted(servers)[0]
        result = run_op(sim, controller.execute(StatusAgent(), node,
                                                timeout=5.0))
        assert result.ok
        assert controller.timeouts == 0

    def test_late_result_after_timeout_is_ignored(self):
        sim, servers, controller, view, registry = build()
        node = sorted(servers)[0]
        # stall the broker's only worker behind a huge code download by
        # partitioning it away, then heal after the timeout
        lan = registry[node].lan
        lan.set_partition({node})
        result = run_op(sim, controller.execute(StatusAgent(), node,
                                                timeout=0.5), horizon=1.0)
        assert not result.ok
        lan.heal_partition()
        sim.run(until=sim.now + 5.0)  # late result arrives, must not blow up
        assert controller.timeouts == 1


class TestReconcileNode:
    def test_stored_but_unrouted_rejoins_when_record_exists(self):
        sim, servers, controller, view, registry = build()
        a, b = sorted(servers)[:2]
        doc = item("/recon/two-copies.html")
        run_op(sim, controller.place(doc, a))
        run_op(sim, controller.replicate(doc.path, b))
        # simulate the monitor having routed away from a (bytes remain)
        controller.url_table.remove_location(doc.path, a)
        summary = run_op(sim, controller.reconcile_node(a))
        assert summary["rejoined"] == [doc.path]
        assert controller.url_table.locations(doc.path) == {a, b}

    def test_stored_but_record_gone_is_purged(self):
        sim, servers, controller, view, registry = build()
        a = sorted(servers)[0]
        doc = item("/recon/orphan.html")
        servers[a].place(doc)  # bytes landed, never registered
        assert servers[a].holds(doc.path)
        summary = run_op(sim, controller.reconcile_node(a))
        assert summary["purged"] == [doc.path]
        assert not servers[a].holds(doc.path)

    def test_routed_but_missing_extra_copy_dropped(self):
        sim, servers, controller, view, registry = build()
        a, b = sorted(servers)[:2]
        doc = item("/recon/ghost-copy.html")
        run_op(sim, controller.place(doc, a))
        controller.url_table.add_location(doc.path, b)  # never copied
        summary = run_op(sim, controller.reconcile_node(b))
        assert summary["dropped"] == [doc.path]
        assert controller.url_table.locations(doc.path) == {a}

    def test_routed_but_missing_last_copy_removed(self):
        sim, servers, controller, view, registry = build()
        a = sorted(servers)[0]
        doc = item("/recon/vanished.html")
        controller.url_table.insert(doc, {a})  # never physically placed
        summary = run_op(sim, controller.reconcile_node(a))
        assert summary["lost"] == [doc.path]
        assert doc.path not in controller.url_table

    def test_failed_inventory_reports_error(self):
        sim, servers, controller, view, registry = build()
        a = sorted(servers)[0]
        registry[a].drop_filter = lambda dispatch: True
        summary = run_op(sim, controller.reconcile_node(a, timeout=0.5))
        assert "error" in summary


class TestMonitorRecoveryReconcile:
    def test_recovered_node_rejoins_routing(self):
        sim, servers, controller, view, registry = build()
        names = sorted(servers)
        doc = item("/ha/replicated.html")
        run_op(sim, controller.place(doc, names[0]))
        run_op(sim, controller.replicate(doc.path, names[1]))
        monitor = ClusterMonitor(sim, controller, view, interval=0.5,
                                 misses_to_fail=1)
        monitor.start()
        sim.schedule(1.0, servers[names[1]].crash)
        sim.run(until=sim.now + 4.0)
        # routed away while down (multi-copy doc)
        assert names[1] not in controller.url_table.locations(doc.path)
        servers[names[1]].recover()
        sim.run(until=sim.now + 4.0)
        monitor.stop()
        # the sweep after recovery reconciled the returning node
        assert names[1] in controller.url_table.locations(doc.path)
        kinds = [e.kind for e in monitor.events]
        assert "up" in kinds and "rejoined" in kinds

    def test_reconcile_retried_until_inventory_succeeds(self):
        sim, servers, controller, view, registry = build()
        names = sorted(servers)
        doc = item("/ha/retry.html")
        run_op(sim, controller.place(doc, names[0]))
        run_op(sim, controller.replicate(doc.path, names[1]))
        monitor = ClusterMonitor(sim, controller, view, interval=0.5,
                                 misses_to_fail=1, probe_timeout=0.4)
        monitor.start()
        sim.schedule(1.0, servers[names[1]].crash)
        sim.run(until=sim.now + 3.0)
        servers[names[1]].recover()
        # lose every management dispatch for a while: the reconcile fails
        # and must stay pending
        registry[names[1]].drop_filter = lambda dispatch: True
        sim.run(until=sim.now + 3.0)
        assert names[1] not in controller.url_table.locations(doc.path)
        registry[names[1]].drop_filter = None
        sim.run(until=sim.now + 4.0)
        monitor.stop()
        assert names[1] in controller.url_table.locations(doc.path)
