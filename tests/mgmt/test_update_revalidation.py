"""Regression test for the YLD001 finding in Controller.update_content.

The update loop yields while agents are in flight; a concurrent remove
can drop the document meanwhile.  The pre-yield UrlRecord handle must be
revalidated before writing through it, otherwise the write mutates a
record no longer reachable from the table.
"""

from repro.content import ContentItem, ContentType, DocTree
from repro.mgmt import ManagementError
from tests.mgmt.test_mgmt import build, item, run_op


def test_concurrent_removal_fails_update_cleanly():
    sim, servers, controller, registry = build()
    node = sorted(servers)[0]
    doc = item("/mutable.html", size=4096)
    run_op(sim, controller, controller.place(doc, node))
    record = controller.url_table.lookup(doc.path)
    new_version = item("/mutable.html", size=6000)
    errors = []

    def updater():
        try:
            yield from controller.update_content(new_version)
        except ManagementError as exc:
            errors.append(str(exc))

    def saboteur():
        # fires while the update agent is still in flight
        yield sim.timeout(1e-4)
        controller.url_table.remove(doc.path)

    sim.process(updater())
    sim.process(saboteur())
    sim.run()
    [message] = errors
    assert "removed during update" in message
    # the stale handle was not written through
    assert record.item.size_bytes == 4096


def test_update_still_succeeds_without_interference():
    sim, servers, controller, registry = build()
    node = sorted(servers)[0]
    doc = item("/mutable.html", size=4096)
    run_op(sim, controller, controller.place(doc, node))
    run_op(sim, controller,
           controller.update_content(item("/mutable.html", size=6000)))
    assert controller.url_table.lookup(doc.path).item.size_bytes == 6000
