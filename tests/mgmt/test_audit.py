"""Tests for the cluster-wide consistency audit."""

import pytest

from repro.cluster import BackendServer, paper_testbed_specs
from repro.content import ContentItem, ContentType, DocTree
from repro.core import UrlTable
from repro.mgmt import Broker, Controller
from repro.net import Lan, Nic
from repro.sim import Simulator


def build(n_nodes=3):
    sim = Simulator()
    lan = Lan(sim)
    specs = paper_testbed_specs()[:n_nodes]
    servers = {s.name: BackendServer(sim, lan, s) for s in specs}
    nic = Nic(sim, 100, name="controller")
    controller = Controller(sim, nic, UrlTable(), DocTree())
    registry = {}
    for server in servers.values():
        controller.register_broker(Broker(sim, lan, server, nic, registry))
    return sim, servers, controller


def run_audit(sim, controller):
    proc = sim.process(controller.audit())
    sim.run(until=sim.now + 30.0)
    assert proc.processed
    return proc.value


def run_op(sim, controller, op):
    proc = sim.process(op)
    sim.run(until=sim.now + 30.0)
    return proc.value


def item(path, size=2048):
    return ContentItem(path, size, ContentType.HTML)


class TestAudit:
    def test_clean_cluster_audits_clean(self):
        sim, servers, controller = build()
        names = sorted(servers)
        run_op(sim, controller, controller.place(item("/a.html"), names[0]))
        run_op(sim, controller, controller.place(item("/b.html"), names[1]))
        result = run_audit(sim, controller)
        assert result == {"missing": [], "orphaned": [],
                          "nodes_audited": 3}

    def test_missing_copy_detected(self):
        sim, servers, controller = build()
        names = sorted(servers)
        doc = item("/lost.html")
        run_op(sim, controller, controller.place(doc, names[0]))
        # the file disappears behind the controller's back
        servers[names[0]].store.remove(doc.path)
        result = run_audit(sim, controller)
        assert result["missing"] == [(doc.path, names[0])]
        assert result["orphaned"] == []

    def test_orphaned_copy_detected(self):
        sim, servers, controller = build()
        names = sorted(servers)
        # content shows up on a node without any management record
        servers[names[2]].place(item("/rogue.html"))
        result = run_audit(sim, controller)
        assert result["orphaned"] == [("/rogue.html", names[2])]
        assert result["missing"] == []

    def test_replica_drift_both_directions(self):
        sim, servers, controller = build()
        names = sorted(servers)
        doc = item("/drift.html")
        run_op(sim, controller, controller.place(doc, names[0]))
        run_op(sim, controller, controller.replicate(doc.path, names[1]))
        servers[names[1]].store.remove(doc.path)      # copy vanished
        servers[names[2]].place(doc)                  # stray copy appeared
        result = run_audit(sim, controller)
        assert (doc.path, names[1]) in result["missing"]
        assert (doc.path, names[2]) in result["orphaned"]

    def test_audit_takes_one_round_trip_per_node(self):
        sim, servers, controller = build()
        names = sorted(servers)
        for i in range(10):
            run_op(sim, controller,
                   controller.place(item(f"/f{i}.html"), names[i % 3]))
        dispatches_before = controller.dispatches
        run_audit(sim, controller)
        assert controller.dispatches == dispatches_before + 3
