"""Tests for the cluster monitor: failure detection + re-replication."""

import pytest

from repro.cluster import BackendServer, paper_testbed_specs
from repro.content import ContentItem, ContentType, DocTree
from repro.core import RoutingView, UrlTable
from repro.mgmt import Broker, ClusterMonitor, Controller
from repro.net import Lan, Nic
from repro.sim import Simulator


def build(n_nodes=3):
    sim = Simulator()
    lan = Lan(sim)
    specs = paper_testbed_specs()[:n_nodes]
    servers = {s.name: BackendServer(sim, lan, s) for s in specs}
    nic = Nic(sim, 100, name="controller")
    url_table = UrlTable()
    doctree = DocTree()
    controller = Controller(sim, nic, url_table, doctree)
    registry = {}
    for server in servers.values():
        controller.register_broker(
            Broker(sim, lan, server, nic, registry))
    view = RoutingView({s.name: s.weight for s in specs})
    return sim, servers, controller, view


def place(sim, controller, item, node):
    proc = sim.process(controller.place(item, node))
    sim.run(until=sim.now + 10.0)
    assert proc.processed


def item(path, size=4096):
    return ContentItem(path, size, ContentType.HTML)


class TestValidation:
    def test_bad_parameters(self):
        sim, servers, controller, view = build()
        with pytest.raises(ValueError):
            ClusterMonitor(sim, controller, view, interval=0)
        with pytest.raises(ValueError):
            ClusterMonitor(sim, controller, view, misses_to_fail=0)


class TestHealthySweeps:
    def test_all_healthy_no_events(self):
        sim, servers, controller, view = build()
        monitor = ClusterMonitor(sim, controller, view, interval=0.5)
        monitor.start()
        sim.run(until=3.0)
        monitor.stop()
        assert monitor.rounds >= 4
        assert monitor.events == []
        assert monitor.down_nodes == set()

    def test_view_untouched_while_healthy(self):
        sim, servers, controller, view = build()
        monitor = ClusterMonitor(sim, controller, view, interval=0.5)
        monitor.start()
        sim.run(until=2.0)
        monitor.stop()
        assert set(view.alive_nodes()) == set(servers)


class TestFailureDetection:
    def test_crash_detected_and_marked_down(self):
        sim, servers, controller, view = build()
        names = sorted(servers)
        monitor = ClusterMonitor(sim, controller, view, interval=0.5,
                                 misses_to_fail=2, re_replicate=False)
        monitor.start()
        sim.schedule(1.0, servers[names[0]].crash)
        sim.run(until=4.0)
        monitor.stop()
        assert names[0] in monitor.down_nodes
        assert names[0] not in view.alive_nodes()
        kinds = [e.kind for e in monitor.events]
        assert kinds == ["down"]
        # detection needed >= misses_to_fail rounds after the crash
        down_event = monitor.events[0]
        assert down_event.at >= 1.0 + 2 * 0.5 - 0.5

    def test_recovery_marks_back_up(self):
        sim, servers, controller, view = build()
        names = sorted(servers)
        monitor = ClusterMonitor(sim, controller, view, interval=0.5,
                                 misses_to_fail=2, re_replicate=False)
        monitor.start()
        sim.schedule(1.0, servers[names[0]].crash)
        sim.schedule(3.0, servers[names[0]].recover)
        sim.run(until=6.0)
        monitor.stop()
        kinds = [e.kind for e in monitor.events]
        assert kinds == ["down", "up"]
        assert names[0] in view.alive_nodes()
        assert monitor.down_nodes == set()

    def test_single_miss_not_enough(self):
        sim, servers, controller, view = build()
        names = sorted(servers)
        monitor = ClusterMonitor(sim, controller, view, interval=1.0,
                                 misses_to_fail=3, re_replicate=False)
        monitor.start()
        # down for less than one full round

        def blip():
            servers[names[0]].crash()

        def heal():
            servers[names[0]].recover()

        sim.schedule(0.9, blip)
        sim.schedule(1.1, heal)
        sim.run(until=5.0)
        monitor.stop()
        assert monitor.events == []


class TestReReplication:
    def test_lost_replica_restored_elsewhere(self):
        sim, servers, controller, view = build()
        names = sorted(servers)
        doc = item("/ha/critical.html")
        place(sim, controller, doc, names[0])
        proc = sim.process(controller.replicate(doc.path, names[1]))
        sim.run(until=sim.now + 10.0)
        monitor = ClusterMonitor(sim, controller, view, interval=0.5,
                                 misses_to_fail=1)
        monitor.start()
        servers[names[1]].crash()
        sim.run(until=sim.now + 5.0)
        monitor.stop()
        locations = controller.url_table.locations(doc.path)
        assert names[1] not in locations
        assert len(locations) == 2  # replica count restored
        assert names[0] in locations
        restored = (locations - {names[0]}).pop()
        assert servers[restored].holds(doc.path)
        assert any(e.kind == "re-replicated" for e in monitor.events)

    def test_single_copy_on_dead_node_reported_lost(self):
        sim, servers, controller, view = build()
        names = sorted(servers)
        doc = item("/only/copy.html")
        place(sim, controller, doc, names[0])
        monitor = ClusterMonitor(sim, controller, view, interval=0.5,
                                 misses_to_fail=1)
        monitor.start()
        servers[names[0]].crash()
        sim.run(until=sim.now + 3.0)
        monitor.stop()
        lost = [e for e in monitor.events if e.kind == "lost"]
        assert lost and lost[0].detail == doc.path
        # the record remains (the copy is still on the dead node's disk)
        assert controller.url_table.locations(doc.path) == {names[0]}
