"""The shared CFG infrastructure: shape, dominators, conditions, edges."""

import ast

from repro.analysis.deep.cfg import (build_cfg, conditions, dominators,
                                     expr_raises, solve, walk_scoped)


def _func(src: str) -> ast.FunctionDef:
    node = ast.parse(src).body[0]
    assert isinstance(node, ast.FunctionDef)
    return node


def test_straight_line_shape():
    cfg = build_cfg(_func("def f():\n    a = 1\n    return a\n"))
    # entry -> a=1 -> return -> exit, no exception edges
    assert cfg.entry != cfg.exit
    reachable = {cfg.entry}
    frontier = [cfg.entry]
    while frontier:
        i = frontier.pop()
        for e in cfg.succs[i]:
            if e.dst not in reachable:
                reachable.add(e.dst)
                frontier.append(e.dst)
    assert cfg.exit in reachable
    assert not any(e.exc for i in range(len(cfg.nodes))
                   for e in cfg.succs[i])


def test_if_branches_and_polarity():
    cfg = build_cfg(_func(
        "def f(x):\n"
        "    if x:\n"
        "        a = 1\n"
        "    else:\n"
        "        a = 2\n"
        "    return a\n"))
    tests = [i for i, n in enumerate(cfg.nodes) if n.kind == "test"]
    assert len(tests) == 1
    pols = sorted(e.polarity for e in cfg.succs[tests[0]])
    assert pols == [False, True]


def test_dominators_branch_join():
    cfg = build_cfg(_func(
        "def f(x):\n"
        "    if x:\n"
        "        a = 1\n"
        "    else:\n"
        "        a = 2\n"
        "    return a\n"))
    dom = dominators(cfg)
    test_i = next(i for i, n in enumerate(cfg.nodes) if n.kind == "test")
    arms = [i for i, n in enumerate(cfg.nodes)
            if n.kind == "stmt" and n.line in (3, 5)]
    ret = next(i for i, n in enumerate(cfg.nodes)
               if n.kind == "stmt" and n.line == 6)
    # the test dominates both arms and the join; neither arm dominates it
    for arm in arms:
        assert test_i in dom[arm]
        assert arm not in dom[ret]
    assert test_i in dom[ret]


def test_call_raises_to_exc_exit():
    cfg = build_cfg(_func("def f(self):\n    self.boom()\n"))
    exc_edges = [e for i in range(len(cfg.nodes))
                 for e in cfg.succs[i] if e.exc]
    assert exc_edges and all(e.dst == cfg.exc_exit for e in exc_edges)


def test_catch_all_handler_intercepts():
    cfg = build_cfg(_func(
        "def f(self):\n"
        "    try:\n"
        "        self.boom()\n"
        "    except Exception:\n"
        "        self.cleanup()\n"))
    body_i = next(i for i, n in enumerate(cfg.nodes) if n.line == 3
                  and n.kind == "stmt")
    # the raising call's exception edge lands in the handler, not the
    # function's exceptional exit
    exc_dsts = {e.dst for e in cfg.succs[body_i] if e.exc}
    assert exc_dsts and cfg.exc_exit not in exc_dsts


def test_finally_runs_on_exception_path():
    src = ("def f(self):\n"
           "    self.acquire()\n"
           "    try:\n"
           "        self.boom()\n"
           "    finally:\n"
           "        self.release()\n")
    cfg = build_cfg(_func(src))
    # a forward may-pass: 'held' survives unless a release node is crossed
    def transfer(node, state):
        roots = node.scan_roots()
        text = " ".join(ast.unparse(r) for r in roots)
        if "self.acquire" in text:
            return frozenset({"held"})
        if "self.release" in text:
            return frozenset()
        return state
    def exc_transfer(edge, in_state, node):
        # the cleanup call itself is non-raising, as in the leak pass
        text = " ".join(ast.unparse(r) for r in node.scan_roots())
        if "self.release" in text:
            return None
        return in_state
    ins = solve(cfg, frozenset(), transfer=transfer,
                edge_transfer=lambda e, s: s,
                meet=lambda a, b: a | b, exc_transfer=exc_transfer)
    assert "held" not in ins.get(cfg.exc_exit, frozenset())
    assert "held" not in ins.get(cfg.exit, frozenset())


def test_while_true_has_no_false_edge():
    cfg = build_cfg(_func(
        "def f(self):\n"
        "    while True:\n"
        "        if self.done():\n"
        "            return 1\n"))
    loop_tests = [i for i, n in enumerate(cfg.nodes)
                  if n.kind == "test" and n.line == 2]
    for i in loop_tests:
        assert all(e.polarity is not False for e in cfg.succs[i])


def test_conditions_decomposition():
    def conds(expr_src, polarity):
        expr = ast.parse(expr_src, mode="eval").body
        return sorted((ast.unparse(e), p)
                      for e, p in conditions(expr, polarity))

    # And-true pins every operand true; not flips
    assert conds("a and not b", True) == [("a", True), ("b", False)]
    # Or-false pins every operand false
    assert conds("a or b", False) == [("a", False), ("b", False)]
    # Or-true proves nothing about individual operands
    assert conds("a or b", True) == []


def test_expr_raises():
    assert expr_raises(ast.parse("f()", mode="eval").body)
    assert not expr_raises(ast.parse("a + 1", mode="eval").body)


def test_walk_scoped_skips_inner_scopes():
    tree = ast.parse(
        "def outer():\n"
        "    x = 1\n"
        "    def inner():\n"
        "        y = 2\n"
        "    z = (lambda: w)\n").body[0]
    names = {n.id for n in walk_scoped(tree) if isinstance(n, ast.Name)}
    assert "x" in names and "z" in names
    # inner-scope bodies are not walked, but the scope nodes themselves
    # are yielded (so lambda captures remain visible to callers)
    assert "y" not in names and "w" not in names
    kinds = {type(n) for n in walk_scoped(tree)}
    assert ast.Lambda in kinds
