"""Gate-dominance analysis (GATE001-004): fixtures and mutation tests."""

import ast

from repro.analysis.deep import analyze_source
from repro.analysis.deep.gates import GATES, analyze_gates


def codes(src: str) -> list[tuple[str, int]]:
    tree = ast.parse(src)
    return [(v.rule, v.line) for v in analyze_gates(tree, "fixture.py")]


# -- GATE001: tracer ---------------------------------------------------

TRACER_GUARDED = '''
class Node:
    def __init__(self, tracer=None):
        self.tracer = tracer
    def handle(self):
        if self.tracer is not None:
            self.tracer.point("a", "b")
'''


def test_gate001_unguarded_tracer_use():
    assert codes(
        "class Node:\n"
        "    def __init__(self, tracer=None):\n"
        "        self.tracer = tracer\n"
        "    def handle(self):\n"
        "        self.tracer.point('a', 'b')\n"
    ) == [("GATE001", 5)]


def test_gate001_guarded_is_clean():
    assert codes(TRACER_GUARDED) == []


def test_gate001_mutation_removing_guard_trips():
    """Deleting the dominating guard from a clean snippet fires GATE001."""
    mutated = TRACER_GUARDED.replace(
        "        if self.tracer is not None:\n    ", "    ")
    assert mutated != TRACER_GUARDED
    assert [c for c, _ in codes(mutated)] == ["GATE001"]


def test_gate001_alias_and_early_return():
    assert codes(
        "class Node:\n"
        "    def __init__(self, tracer=None):\n"
        "        self.tracer = tracer\n"
        "    def handle(self):\n"
        "        tracer = self.tracer\n"
        "        if tracer is None:\n"
        "            return\n"
        "        tracer.begin('s', 'x')\n"
    ) == []


def test_gate001_witness_variable():
    # span being non-None proves the tracer was non-None when it was made
    assert codes(
        "class Node:\n"
        "    def __init__(self, tracer=None):\n"
        "        self.tracer = tracer\n"
        "    def handle(self):\n"
        "        span = None\n"
        "        if self.tracer is not None:\n"
        "            span = self.tracer.begin('s', 'x')\n"
        "        self.work()\n"
        "        if span is not None:\n"
        "            self.tracer.end(span)\n"
    ) == []


def test_gate001_not_optional_in_this_class():
    # a class that always constructs its tracer has no gate to check
    assert codes(
        "class Node:\n"
        "    def __init__(self):\n"
        "        self.tracer = Tracer()\n"
        "    def handle(self):\n"
        "        self.tracer.point('a', 'b')\n"
    ) == []


def test_gate001_boolop_inline_guard():
    assert codes(
        "class Node:\n"
        "    def __init__(self, tracer=None):\n"
        "        self.tracer = tracer\n"
        "    def handle(self, ok):\n"
        "        if self.tracer is not None and ok:\n"
        "            self.tracer.point('a', 'b')\n"
    ) == []


def test_gate001_guard_inside_with_body():
    """The with-head node must scan only the context managers, not the
    body -- otherwise guarded uses inside the body are re-scanned with
    the with-entry facts and false-positive."""
    assert codes(
        "class Node:\n"
        "    def __init__(self, tracer=None):\n"
        "        self.tracer = tracer\n"
        "    def handle(self, pool):\n"
        "        with pool as p:\n"
        "            for item in p.work():\n"
        "                if self.tracer is not None:\n"
        "                    self.tracer.point('a', item)\n"
    ) == []


def test_gate001_unguarded_use_in_with_still_flagged():
    assert codes(
        "class Node:\n"
        "    def __init__(self, tracer=None):\n"
        "        self.tracer = tracer\n"
        "    def handle(self, pool):\n"
        "        with pool as p:\n"
        "            self.tracer.point('a', 'b')\n"
    ) == [("GATE001", 6)]


def test_gate001_gate_use_in_context_manager_expr_flagged():
    assert codes(
        "class Node:\n"
        "    def __init__(self, tracer=None):\n"
        "        self.tracer = tracer\n"
        "    def handle(self):\n"
        "        with self.tracer.begin('s', 'x') as span:\n"
        "            pass\n"
    ) == [("GATE001", 5)]


# -- GATE002: overload control and friends -----------------------------

def test_gate002_unguarded_overload():
    assert codes(
        "class Node:\n"
        "    def __init__(self, overload=None):\n"
        "        self.overload = overload\n"
        "    def shed(self):\n"
        "        return self.overload.config.retry_after\n"
    ) == [("GATE002", 5)]


def test_gate002_conditional_expression_guard():
    assert codes(
        "class Node:\n"
        "    def __init__(self, overload=None):\n"
        "        self.overload = overload\n"
        "    def shed(self):\n"
        "        return (self.overload.config.retry_after\n"
        "                if self.overload is not None else 0.0)\n"
    ) == []


# -- GATE003: fast-path fallback ---------------------------------------

def test_gate003_fast_path_without_fallback():
    found = codes(
        "class Node:\n"
        "    def run(self):\n"
        "        if self.sim.fast_path:\n"
        "            return self._fast()\n")
    assert [c for c, _ in found] == ["GATE003"]


def test_gate003_with_fallback_is_clean():
    assert codes(
        "class Node:\n"
        "    def run(self):\n"
        "        if self.sim.fast_path:\n"
        "            return self._fast()\n"
        "        return self._slow()\n"
    ) == []


def test_gate003_mutation_removing_fallback_trips():
    good = ("class Node:\n"
            "    def run(self):\n"
            "        if self.sim.fast_path:\n"
            "            return self._fast()\n"
            "        return self._slow()\n")
    assert codes(good) == []
    mutated = good.replace("        return self._slow()\n", "")
    assert [c for c, _ in codes(mutated)] == ["GATE003"]


# -- GATE004: use under a known-None gate ------------------------------

def test_gate004_use_in_none_branch():
    found = codes(
        "class Node:\n"
        "    def __init__(self, overload=None):\n"
        "        self.overload = overload\n"
        "    def handle(self):\n"
        "        if self.overload is None:\n"
        "            self.overload.breakers.on_dispatch('b')\n")
    assert [c for c, _ in found] == ["GATE004"]


# -- registry ----------------------------------------------------------

def test_registry_is_one_table():
    attrs = [spec.attr for spec in GATES]
    assert "tracer" in attrs and "overload" in attrs
    assert len(attrs) == len(set(attrs))


def test_pragma_suppresses_gate_finding():
    src = ("class Node:\n"
           "    def __init__(self, tracer=None):\n"
           "        self.tracer = tracer\n"
           "    def handle(self):\n"
           "        self.tracer.point('a', 'b')  # det: allow[gate001]\n")
    assert analyze_source(src, "fixture.py") == []


# -- kernel telemetry plane gates (DESIGN §15) -------------------------

def test_kernel_stats_unguarded_hook_call_trips():
    found = codes(
        "class Simulator:\n"
        "    def __init__(self, kernel_stats=None):\n"
        "        self.kernel_stats = kernel_stats\n"
        "    def _enqueue(self, event):\n"
        "        self.kernel_stats.on_scheduled(event, 1)\n")
    assert [c for c, _ in found] == ["GATE002"]


def test_kernel_stats_alias_guard_is_clean():
    # the engine's actual idiom: snapshot to a local, guard, call
    assert codes(
        "class Simulator:\n"
        "    def __init__(self, kernel_stats=None):\n"
        "        self.kernel_stats = kernel_stats\n"
        "    def _enqueue(self, event):\n"
        "        ks = self.kernel_stats\n"
        "        if ks is not None:\n"
        "            ks.on_scheduled(event, 1)\n"
    ) == []


def test_kernel_stats_consumer_read_needs_no_guard():
    # report()/attribute reads are post-run consumer API, not hot hooks
    assert codes(
        "class Simulator:\n"
        "    def __init__(self, kernel_stats=None):\n"
        "        self.kernel_stats = kernel_stats\n"
        "    def summarize(self):\n"
        "        return self.kernel_stats.heap_high_water\n"
    ) == []


def test_telemetry_unguarded_on_event_trips():
    found = codes(
        "class Simulator:\n"
        "    def __init__(self):\n"
        "        self.telemetry = None\n"
        "    def step(self, when):\n"
        "        self.telemetry.on_event(when)\n")
    assert [c for c, _ in found] == ["GATE002"]


def test_telemetry_mutation_removing_guard_trips():
    good = ("class Simulator:\n"
            "    def __init__(self):\n"
            "        self.telemetry = None\n"
            "    def step(self, when):\n"
            "        tel = self.telemetry\n"
            "        if tel is not None:\n"
            "            tel.on_event(when)\n")
    assert codes(good) == []
    mutated = good.replace("        if tel is not None:\n"
                           "            tel.on_event(when)\n",
                           "        tel.on_event(when)\n")
    assert [c for c, _ in codes(mutated)] == ["GATE002"]


def test_telemetry_gates_registered():
    by_attr = {spec.attr: spec for spec in GATES}
    assert by_attr["kernel_stats"].api is not None
    assert "on_scheduled" in by_attr["kernel_stats"].api
    assert by_attr["telemetry"].api is not None
    assert "on_event" in by_attr["telemetry"].api
