"""End-to-end: `repro check --deep`, determinism, baseline, exit codes."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.__main__ import main as analysis_main
from repro.analysis.deep import (analyze_tree, apply_baseline,
                                 default_baseline_path, load_baseline,
                                 render_jsonl)

REPO = Path(__file__).resolve().parents[3]
SRC_ROOT = REPO / "src" / "repro"

BAD_MODULE = (
    "class Node:\n"
    "    def __init__(self, tracer=None):\n"
    "        self.tracer = tracer\n"
    "    def run(self):\n"
    "        self.tracer.point('a', 'b')\n"
    "        req = yield self.core.request()\n"
    "        yield self.sim.timeout(1.0)\n"
    "        self.core.release(req)\n")


def _run_deep(root: Path, seed: str, *extra: str):
    env = dict(os.environ, PYTHONHASHSEED=seed,
               PYTHONPATH=str(REPO / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--pass", "deep",
         "--root", str(root), "--format", "jsonl", *extra],
        capture_output=True, env=env, cwd=REPO)


def test_source_tree_is_clean():
    """The analyzer's own mandate: src/repro carries no deep findings."""
    violations = apply_baseline(
        analyze_tree(SRC_ROOT),
        load_baseline(default_baseline_path(SRC_ROOT)))
    assert violations == [], "\n".join(str(v) for v in violations)


def test_checked_in_baseline_is_empty():
    assert load_baseline(REPO / "deep-baseline.txt") == frozenset()


def test_exit_codes_and_jsonl(tmp_path):
    (tmp_path / "mod.py").write_text(BAD_MODULE)
    proc = _run_deep(tmp_path, "0")
    assert proc.returncode == 1
    lines = proc.stdout.decode().strip().splitlines()
    rules = [json.loads(line)["rule"] for line in lines]
    assert rules == ["GATE001", "LEAK001"]
    for line in lines:
        record = json.loads(line)
        assert set(record) == {"rule", "path", "line", "message", "pass"}


def test_output_byte_identical_across_hash_seeds(tmp_path):
    (tmp_path / "mod.py").write_text(BAD_MODULE)
    (tmp_path / "other.py").write_text(BAD_MODULE.replace("Node", "Peer"))
    runs = [_run_deep(tmp_path, seed) for seed in ("0", "1")]
    assert runs[0].returncode == runs[1].returncode == 1
    assert runs[0].stdout == runs[1].stdout
    assert runs[0].stdout  # non-trivial comparison


def test_baseline_suppresses_known_findings(tmp_path):
    (tmp_path / "mod.py").write_text(BAD_MODULE)
    findings = analyze_tree(tmp_path)
    assert findings
    baseline = tmp_path / "accepted.txt"
    baseline.write_text("# reviewed\n"
                        + "\n".join(str(v) for v in findings) + "\n")
    proc = _run_deep(tmp_path, "0", "--baseline", str(baseline))
    assert proc.returncode == 0
    assert proc.stdout.decode().strip() == ""


def test_default_baseline_lives_at_repo_root_for_src_layout():
    assert default_baseline_path(SRC_ROOT) == REPO / "deep-baseline.txt"


def test_render_jsonl_is_sorted_and_stable(tmp_path):
    (tmp_path / "mod.py").write_text(BAD_MODULE)
    violations = analyze_tree(tmp_path)
    text = render_jsonl(violations)
    assert text == render_jsonl(list(reversed(violations)))
    keys = [tuple(json.loads(line)[k] for k in ("path", "line", "rule"))
            for line in text.splitlines()]
    assert keys == sorted(keys)


def test_in_process_deep_pass_exit_code(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(BAD_MODULE)
    assert analysis_main(["--pass", "deep", "--root", str(tmp_path)]) == 1
    assert "GATE001" in capsys.readouterr().out
    assert analysis_main(["--pass", "deep",
                          "--root", str(SRC_ROOT)]) == 0
