"""Stale-state/yield-point hazards (YLD001-002): fixtures and mutations."""

import ast

from repro.analysis.deep import analyze_source
from repro.analysis.deep.staleness import analyze_staleness


def codes(src: str) -> list[tuple[str, int]]:
    tree = ast.parse(src)
    return [(v.rule, v.line) for v in analyze_staleness(tree, "fixture.py")]


# -- YLD001: stale handle mutation -------------------------------------

UPDATE_REVALIDATED = '''
class Controller:
    def update(self, path, size):
        record = self.url_table.lookup(path)
        yield self.sim.timeout(1.0)
        if record.path not in self.url_table:
            return
        record.size = size
'''


def test_yld001_removal_through_stale_handle():
    found = codes(
        "class Node:\n"
        "    def run(self, key):\n"
        "        entry = self.mapping.get(key)\n"
        "        yield self.sim.timeout(1.0)\n"
        "        self.mapping.delete(entry.client)\n")
    assert found == [("YLD001", 5)]


def test_yld001_write_through_stale_borrowed_handle():
    found = codes(
        "class Controller:\n"
        "    def update(self, path, size):\n"
        "        record = self.url_table.lookup(path)\n"
        "        yield self.sim.timeout(1.0)\n"
        "        record.size = size\n")
    assert found == [("YLD001", 5)]


def test_yld001_revalidated_is_clean():
    assert codes(UPDATE_REVALIDATED) == []


def test_yld001_mutation_removing_revalidation_trips():
    """Deleting the membership re-check fires YLD001 again."""
    mutated = UPDATE_REVALIDATED.replace(
        "        if record.path not in self.url_table:\n"
        "            return\n", "")
    assert mutated != UPDATE_REVALIDATED
    assert [c for c, _ in codes(mutated)] == ["YLD001"]


def test_yld001_no_yield_between_read_and_write_is_clean():
    assert codes(
        "class Controller:\n"
        "    def update(self, path, size):\n"
        "        yield self.sim.timeout(1.0)\n"
        "        record = self.url_table.lookup(path)\n"
        "        record.size = size\n"
    ) == []


def test_yld001_owned_handles_may_be_written():
    # a record this function just created is not someone else's to drop
    assert codes(
        "class Controller:\n"
        "    def update(self, client, size):\n"
        "        yield self.sim.timeout(1.0)\n"
        "        entry = self.mapping.create(client, 0.0)\n"
        "        entry.size = size\n"
    ) == []


# -- YLD002: live-view iteration ---------------------------------------

def test_yld002_live_view_iteration_with_yield():
    found = codes(
        "class Node:\n"
        "    def run(self):\n"
        "        for entry in self.mapping.records():\n"
        "            yield self.sim.timeout(1.0)\n")
    assert found == [("YLD002", 3)]


def test_yld002_snapshot_wrapper_is_clean():
    assert codes(
        "class Node:\n"
        "    def run(self):\n"
        "        for entry in list(self.mapping.records()):\n"
        "            yield self.sim.timeout(1.0)\n"
    ) == []


def test_yld002_loop_without_yield_is_clean():
    assert codes(
        "class Node:\n"
        "    def run(self):\n"
        "        yield self.sim.timeout(1.0)\n"
        "        for entry in self.mapping.records():\n"
        "            self.touch(entry)\n"
    ) == []


def test_yld002_mutation_removing_snapshot_trips():
    good = ("class Node:\n"
            "    def run(self):\n"
            "        for entry in sorted(self.registry.values()):\n"
            "            yield self.sim.timeout(1.0)\n")
    assert codes(good) == []
    mutated = good.replace("sorted(self.registry.values())",
                           "self.registry.values()")
    assert [c for c, _ in codes(mutated)] == ["YLD002"]


def test_pragma_suppresses_yld_finding():
    src = ("class Node:\n"
           "    def run(self):\n"
           "        for e in self.mapping.records():  # det: allow[yld002]\n"
           "            yield self.sim.timeout(1.0)\n")
    assert analyze_source(src, "fixture.py") == []
