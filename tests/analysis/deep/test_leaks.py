"""Resource-pairing analysis (LEAK001-003): fixtures and mutation tests."""

import ast

from repro.analysis.deep.leaks import RESOURCES, analyze_leaks


def codes(src: str) -> list[tuple[str, int]]:
    tree = ast.parse(src)
    return [(v.rule, v.line) for v in analyze_leaks(tree, "fixture.py")]


# -- LEAK001: leases ---------------------------------------------------

LEASE_PAIRED = '''
class Node:
    def run(self):
        req = yield self.core.request()
        try:
            yield self.sim.timeout(1.0)
        finally:
            self.core.release(req)
'''


def test_leak001_release_outside_finally():
    # the timeout yield can be interrupted; the release is never reached
    found = codes(
        "class Node:\n"
        "    def run(self):\n"
        "        req = yield self.core.request()\n"
        "        yield self.sim.timeout(1.0)\n"
        "        self.core.release(req)\n")
    assert found == [("LEAK001", 3)]


def test_leak001_finally_paired_is_clean():
    assert codes(LEASE_PAIRED) == []


def test_leak001_mutation_removing_finally_release_trips():
    """Deleting the finally release from a clean snippet fires LEAK001."""
    mutated = LEASE_PAIRED.replace(
        "            self.core.release(req)", "            pass")
    assert mutated != LEASE_PAIRED
    assert [c for c, _ in codes(mutated)] == ["LEAK001"]


def test_leak001_try_acquire_truthiness_refinement():
    # a failed conditional acquire holds nothing on the falsy edge
    assert codes(
        "class Node:\n"
        "    def run(self):\n"
        "        yield self.sim.timeout(1.0)\n"
        "        req = self.core.try_acquire()\n"
        "        if req is None:\n"
        "            return\n"
        "        self.core.release(req)\n"
    ) == []


def test_leak001_lambda_capture_is_ownership_transfer():
    # deferred-release closure: the scheduled callback owns the lease
    assert codes(
        "class Node:\n"
        "    def run(self):\n"
        "        yield self.sim.timeout(1.0)\n"
        "        req = self.core.try_acquire()\n"
        "        self.sim.schedule(1.0, lambda: self.core.release(req))\n"
    ) == []


def test_leak001_plain_request_call_is_not_an_acquire():
    # HTTP-style factories named "request" are unrelated to Resource
    # leases; only the yielded protocol form counts
    assert codes(
        "class Node:\n"
        "    def run(self):\n"
        "        yield self.sim.timeout(1.0)\n"
        "        http = self.sampler.request(client_id=1)\n"
        "        self.send(http)\n"
    ) == []


def test_leak001_sync_functions_are_out_of_scope():
    # pairing is only checked in process (generator) code
    assert codes(
        "class Node:\n"
        "    def run(self):\n"
        "        req = self.core.try_acquire()\n"
        "        self.pending = req\n"
    ) == []


# -- LEAK002: mapping entries ------------------------------------------

def test_leak002_entry_lost_on_early_return():
    found = codes(
        "class Node:\n"
        "    def run(self, client):\n"
        "        yield self.sim.timeout(1.0)\n"
        "        entry = self.mapping.create(client, 0.0)\n"
        "        if entry.state:\n"
        "            return\n"
        "        self.mapping.abort(entry.client)\n")
    assert found == [("LEAK002", 4)]


def test_leak002_membership_guarded_abort_is_clean():
    assert codes(
        "class Node:\n"
        "    def run(self, client):\n"
        "        entry = self.mapping.create(client, 0.0)\n"
        "        try:\n"
        "            yield self.sim.timeout(1.0)\n"
        "        except BaseException:\n"
        "            if entry.client in self.mapping:\n"
        "                self.mapping.abort(entry.client)\n"
        "            raise\n"
        "        self.mapping.delete(entry.client)\n"
    ) == []


def test_leak002_handoff_to_finisher_is_clean():
    # passing the entry to another component transfers ownership
    assert codes(
        "class Node:\n"
        "    def run(self, client):\n"
        "        yield self.sim.timeout(1.0)\n"
        "        entry = self.mapping.create(client, 0.0)\n"
        "        return self._finish(entry)\n"
    ) == []


# -- LEAK003: admission slots ------------------------------------------

def test_leak003_unprotected_window_after_admit():
    found = codes(
        "class Node:\n"
        "    def run(self):\n"
        "        admitted = yield from self.ctl.admission.admit()\n"
        "        if not admitted:\n"
        "            return\n"
        "        yield self.sim.timeout(1.0)\n"
        "        self.ctl.admission.release()\n")
    assert found == [("LEAK003", 3)]


def test_leak003_finally_paired_is_clean():
    assert codes(
        "class Node:\n"
        "    def run(self):\n"
        "        admitted = yield from self.ctl.admission.admit()\n"
        "        if not admitted:\n"
        "            return\n"
        "        try:\n"
        "            yield self.sim.timeout(1.0)\n"
        "        finally:\n"
        "            self.ctl.admission.release()\n"
    ) == []


def test_resource_registry():
    rules = [spec.rule for spec in RESOURCES]
    assert rules == ["LEAK001", "LEAK002", "LEAK003"]
