"""The determinism linter: seeded hazards are flagged, the tree is clean."""

import textwrap

from repro.analysis import lint_source, lint_tree


def lint(code: str, path: str = "module.py"):
    return lint_source(textwrap.dedent(code), path)


def rules(violations):
    return sorted(v.rule for v in violations)


# -- DET001: wall-clock reads ----------------------------------------------
def test_time_time_flagged():
    found = lint("""\
        import time

        def stamp():
            return time.time()
        """)
    assert rules(found) == ["DET001"]
    assert found[0].line == 4


def test_every_time_module_clock_flagged():
    for fn in ("time", "monotonic", "perf_counter", "time_ns"):
        found = lint(f"import time\nx = time.{fn}()\n")
        assert rules(found) == ["DET001"], fn


def test_from_time_import_flagged():
    found = lint("""\
        from time import perf_counter as pc
        x = pc()
        """)
    assert rules(found) == ["DET001"]


def test_datetime_now_flagged():
    found = lint("""\
        import datetime
        from datetime import datetime as dt
        a = datetime.datetime.now()
        b = dt.utcnow()
        """)
    assert rules(found) == ["DET001", "DET001"]


def test_time_sleep_not_flagged():
    assert lint("import time\ntime.sleep(1)\n") == []


# -- DET002: global random module ------------------------------------------
def test_global_random_flagged():
    found = lint("""\
        import random
        x = random.random()
        y = random.choice([1, 2])
        """)
    assert rules(found) == ["DET002", "DET002"]


def test_seeded_random_instance_allowed():
    assert lint("import random\nrng = random.Random(42)\n") == []


def test_from_random_import_flagged():
    found = lint("from random import shuffle\n")
    assert rules(found) == ["DET002"]


def test_os_urandom_and_uuid4_flagged():
    found = lint("""\
        import os
        import uuid
        a = os.urandom(8)
        b = uuid.uuid4()
        """)
    assert rules(found) == ["DET002", "DET002"]


def test_rng_module_is_the_sanctioned_seeding_point():
    code = "import random\nx = random.random()\n"
    assert rules(lint_source(code, "src/repro/sim/rng.py")) == []
    assert rules(lint_source(code, "src/repro/core/other.py")) == ["DET002"]


# -- DET003: unsorted set iteration ----------------------------------------
def test_unsorted_locations_iteration_flagged():
    found = lint("""\
        def pick(record):
            for node in record.locations:
                return node
        """)
    assert rules(found) == ["DET003"]


def test_sorted_locations_iteration_clean():
    assert lint("""\
        def pick(record):
            for node in sorted(record.locations):
                return node
        """) == []


def test_set_algebra_iteration_flagged():
    found = lint("""\
        def diff(a, b):
            return [p for p in set(a) | set(b)]
        """)
    assert rules(found) == ["DET003"]


def test_order_insensitive_consumers_clean():
    assert lint("""\
        def stats(record):
            return (len(record.locations),
                    min(set(record.locations)),
                    any(n for n in sorted(record.locations)))
        """) == []


# -- DET004: identity ordering ---------------------------------------------
def test_id_sort_key_flagged():
    found = lint("xs = sorted(items, key=id)\n")
    assert rules(found) == ["DET004"]
    found = lint("xs = min(items, key=lambda o: hash(o))\n")
    assert rules(found) == ["DET004"]


def test_value_sort_key_clean():
    assert lint("xs = sorted(items, key=lambda o: o.name)\n") == []


# -- pragma suppression -----------------------------------------------------
def test_pragma_suppresses_matching_tag():
    assert lint("""\
        import time
        x = time.perf_counter()  # det: allow[wall-clock]
        """) == []


def test_pragma_star_suppresses_everything():
    assert lint("""\
        import time
        x = time.time()  # det: allow[*]
        """) == []


def test_pragma_wrong_tag_does_not_suppress():
    found = lint("""\
        import time
        x = time.time()  # det: allow[rng]
        """)
    assert rules(found) == ["DET001"]


# -- the tree itself --------------------------------------------------------
def test_repro_tree_is_lint_clean():
    """Satellite: the whole simulator passes its own determinism lint."""
    assert lint_tree() == []
