"""The state-machine checker against the real tree and seeded defects."""

import textwrap

import pytest

from repro.analysis import (PAPER_SPLICE_TABLE, check_callsites,
                            check_machine, check_state_machines,
                            discover_machines)
from repro.analysis.determinism import DEFAULT_ROOT
from repro.core.mapping_table import _TRANSITIONS, MappingState


def rules(violations):
    return sorted(v.rule for v in violations)


def splice_machine():
    machines = [m for m in discover_machines(DEFAULT_ROOT)
                if m.enum_name == "MappingState"]
    assert len(machines) == 1
    return machines[0]


# -- discovery on the real tree ---------------------------------------------
def test_discovers_both_lifecycles():
    machines = discover_machines(DEFAULT_ROOT)
    names = {m.name for m in machines}
    assert "_TRANSITIONS" in names          # the splice machine
    assert "_LEG_TRANSITIONS" in names      # pre-forked backend legs


def test_extracted_table_matches_runtime_table():
    """The static extraction sees exactly what the interpreter executes."""
    machine = splice_machine()
    runtime = {s.name: frozenset(t.name for t in targets)
               for s, targets in _TRANSITIONS.items()}
    assert machine.table == runtime
    assert machine.initial == "SYN_RECEIVED"
    assert machine.terminals == {"CLOSED"}


def test_splice_table_is_the_papers_table():
    assert splice_machine().table == PAPER_SPLICE_TABLE


def test_real_tree_is_clean():
    assert check_state_machines() == []


def test_empty_tree_flags_sm000(tmp_path):
    assert rules(check_state_machines(tmp_path)) == ["SM000"]


# -- seeded structural defects (SM001-SM005) --------------------------------
BROKEN = textwrap.dedent("""\
    import enum

    class MappingState(enum.Enum):
        SYN_RECEIVED = "SYN_RECEIVED"
        ESTABLISHED = "ESTABLISHED"
        BOUND = "BOUND"
        FIN_RECEIVED = "FIN_RECEIVED"
        HALF_CLOSED = "HALF_CLOSED"
        CLOSED = "CLOSED"

    _TRANSITIONS = {
        MappingState.SYN_RECEIVED: frozenset({MappingState.ESTABLISHED}),
        MappingState.ESTABLISHED: frozenset({MappingState.FIN_RECEIVED}),
        MappingState.FIN_RECEIVED: frozenset({MappingState.CLOSED}),
        MappingState.HALF_CLOSED: frozenset({MappingState.CLOSED}),
        MappingState.CLOSED: frozenset(),
    }
    """)


def test_seeded_broken_table_is_flagged(tmp_path):
    (tmp_path / "broken.py").write_text(BROKEN)
    [machine] = discover_machines(tmp_path)
    found = check_machine(machine, expected_table=PAPER_SPLICE_TABLE)
    got = rules(found)
    assert "SM001" in got      # BOUND missing from the table
    assert "SM003" in got      # BOUND/HALF_CLOSED unreachable
    assert "SM005" in got      # deviates from the paper's table
    # the missing teardown edge is called out explicitly
    assert any("FIN_RECEIVED -> HALF_CLOSED" in v.message
               for v in found if v.rule == "SM005")


def test_table_without_terminal_flagged(tmp_path):
    (tmp_path / "loop.py").write_text(textwrap.dedent("""\
        _SPIN_TRANSITIONS = {
            "A": frozenset({"B"}),
            "B": frozenset({"A"}),
        }
        """))
    [machine] = discover_machines(tmp_path)
    assert "SM004" in rules(check_machine(machine))


# -- seeded call-site defects (SM006-SM008) ---------------------------------
def test_undeclared_transition_callsite_flagged(tmp_path):
    """SM006: the paper's table never targets SYN_RECEIVED."""
    (tmp_path / "bad_call.py").write_text(textwrap.dedent("""\
        def rewind(table, entry):
            table.transition(entry, MappingState.SYN_RECEIVED)
        """))
    found = check_callsites(splice_machine(), tmp_path)
    assert rules(found) == ["SM006"]
    assert "SYN_RECEIVED" in found[0].message


def test_declared_transition_callsite_clean(tmp_path):
    (tmp_path / "ok_call.py").write_text(textwrap.dedent("""\
        def finish(table, entry):
            table.transition(entry, MappingState.CLOSED)
        """))
    assert check_callsites(splice_machine(), tmp_path) == []


def test_dynamic_transition_target_flagged(tmp_path):
    (tmp_path / "dynamic.py").write_text(textwrap.dedent("""\
        def hop(table, entry, target):
            table.transition(entry, target)
        """))
    assert rules(check_callsites(splice_machine(), tmp_path)) == ["SM007"]


def test_direct_state_assignment_outside_declaring_module_flagged(tmp_path):
    (tmp_path / "poke.py").write_text(textwrap.dedent("""\
        def force(entry):
            entry.state = MappingState.CLOSED
        """))
    found = check_callsites(splice_machine(), tmp_path)
    assert rules(found) == ["SM008"]


def test_runtime_rejects_what_the_checker_would_flag():
    """The static rule and the runtime guard agree: SYN_RECEIVED is never
    a legal transition target."""
    from repro.core.mapping_table import MappingError, MappingTable
    from repro.net.packet import Address

    table = MappingTable()
    entry = table.create(Address("c", 1), now=0.0)
    with pytest.raises(MappingError):
        table.transition(entry, MappingState.SYN_RECEIVED)
