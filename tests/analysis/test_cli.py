"""The analysis CLI gates on violations: exit 0 clean, exit 1 dirty."""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.__main__ import main, run_passes

REPO = Path(__file__).resolve().parents[2]


def test_clean_tree_exits_zero(capsys):
    assert main(["--pass", "determinism"]) == 0
    assert "0 violations" in capsys.readouterr().out


def test_state_machine_pass_exits_zero_on_real_tree(capsys):
    assert main(["--pass", "state-machine"]) == 0


def test_seeded_defect_exits_one(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(
        "import time\nSTAMP = time.time()\n")
    assert main(["--pass", "determinism", "--root", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "1 violation" in out


def test_run_passes_aggregates(tmp_path):
    (tmp_path / "bad.py").write_text(
        "import random\nx = random.random()\n")
    found = run_passes("all", root=tmp_path, smoke_duration=0.4)
    rules = {v.rule for v in found}
    assert "DET002" in rules      # from the determinism pass
    assert "SM000" in rules       # no transition tables under tmp_path


def test_repro_check_subcommand():
    """``python -m repro check`` wires through to the analysis CLI."""
    from repro.__main__ import main as repro_main
    assert repro_main(["check", "--pass", "state-machine"]) == 0


# -- external toolchain (configured in pyproject.toml, optional here) -------
@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = subprocess.run(["ruff", "check", "src", "tests"], cwd=REPO,
                          capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_clean():
    proc = subprocess.run([sys.executable, "-m", "mypy"], cwd=REPO,
                          capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
