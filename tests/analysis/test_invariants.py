"""The runtime invariant verifier: clean deployments pass, seeded
incoherence in every direction is caught, and the engine hook fires."""

import pytest

from repro.analysis import (InvariantError, check_invariants, smoke_check,
                            verify_invariants)
from repro.core.mapping_table import MappingState
from repro.experiments import ExperimentConfig, build_deployment
from repro.net.packet import Address
from repro.sim import Simulator
from repro.workload import WORKLOAD_A


@pytest.fixture()
def deployment():
    config = ExperimentConfig(scheme="partition-ca", workload=WORKLOAD_A,
                              duration=1.0, warmup=0.25, n_objects=60,
                              n_client_machines=2, seed=7)
    return build_deployment(config)


def check(dep):
    return check_invariants(dep.url_table, servers=dep.servers,
                            frontend=dep.frontend, nfs=dep.nfs,
                            catalog=dep.catalog)


def rules(violations):
    return sorted({v.rule for v in violations})


def test_freshly_built_deployment_is_coherent(deployment):
    assert check(deployment) == []


# -- seeded incoherence ------------------------------------------------------
def test_dangling_location_flagged(deployment):
    """A URL-table record pointing at a node that does not exist."""
    record = next(iter(deployment.url_table.records()))
    record.locations.add("ghost-node")
    assert "INV001" in rules(check(deployment))


def test_location_without_bytes_flagged(deployment):
    """The table routes to a server whose store lost the copy."""
    record = next(iter(deployment.url_table.records()))
    node = sorted(record.locations)[0]
    deployment.servers[node].store.remove(record.item.path)
    assert "INV002" in rules(check(deployment))


def test_orphaned_store_item_flagged(deployment):
    """Bytes on a server the URL table does not route there."""
    record = next(iter(deployment.url_table.records()))
    holders = set(record.locations)
    stranger = sorted(set(deployment.servers) - holders)[0]
    deployment.servers[stranger].store.add(record.item)
    assert "INV003" in rules(check(deployment))


def test_empty_location_set_flagged(deployment):
    record = next(iter(deployment.url_table.records()))
    record.locations.clear()
    assert "INV004" in rules(check(deployment))


def test_catalog_item_missing_from_table_flagged(deployment):
    from repro.content import ContentItem, ContentType
    phantom = ContentItem(path="/phantom/x.html", ctype=ContentType.HTML,
                          size_bytes=100)
    found = check_invariants(deployment.url_table,
                             servers=deployment.servers,
                             frontend=deployment.frontend,
                             catalog=list(deployment.catalog) + [phantom])
    assert "INV008" in rules(found)


def test_bound_entry_without_lease_flagged(deployment):
    mapping = deployment.frontend.mapping
    entry = mapping.create(Address("client", 9999), now=0.0)
    mapping.transition(entry, MappingState.ESTABLISHED)
    mapping.bind(entry, object(), "node-1")
    entry.pooled_conn = None          # the defect: lease lost, still BOUND
    assert "INV006" in rules(check(deployment))
    mapping.abort(entry.client)


def test_pool_lease_imbalance_flagged(deployment):
    pools = deployment.frontend.pools
    backend = sorted(pools.pools())[0]
    pool = pools.pools()[backend]
    pool._leased[10**9] = object()    # a lease no mapping entry holds
    found = check(deployment)
    assert "INV007" in rules(found)


def test_pool_release_overflow_flagged(deployment):
    pools = deployment.frontend.pools
    backend = sorted(pools.pools())[0]
    pool = pools.pools()[backend]
    pool.released = pool.acquired + 1
    found = [v for v in check(deployment) if v.rule == "INV007"]
    assert any("released" in v.message for v in found)


def test_verify_invariants_raises(deployment):
    record = next(iter(deployment.url_table.records()))
    record.locations.add("ghost-node")
    with pytest.raises(InvariantError) as exc:
        verify_invariants(deployment.url_table, servers=deployment.servers)
    assert any(v.rule == "INV001" for v in exc.value.violations)


# -- the engine debug hook ---------------------------------------------------
def test_engine_runs_invariants_every_n_events():
    sim = Simulator()
    calls = []
    sim.add_invariant(lambda: calls.append(sim.now), every=3)

    def ticker():
        for _ in range(9):
            yield sim.timeout(1.0)

    sim.process(ticker())
    sim.run()
    assert len(calls) == 3   # 9 events / every 3


def test_engine_propagates_invariant_failure():
    sim = Simulator()

    def bomb():
        raise InvariantError([])

    def one_tick():
        yield sim.timeout(1.0)

    sim.add_invariant(bomb, every=1)
    sim.process(one_tick())
    with pytest.raises(InvariantError):
        sim.run()


def test_add_invariant_rejects_bad_interval():
    with pytest.raises(ValueError):
        Simulator().add_invariant(lambda: None, every=0)


# -- live end-to-end ---------------------------------------------------------
def test_live_deployment_stays_coherent_under_load():
    """Satellite: a driven partition-ca run with debug_invariants=True
    (checks firing during the simulation) finishes with zero violations."""
    assert smoke_check(duration=0.6, warmup=0.2, n_clients=3,
                       n_objects=60) == []
