"""Tests pinning the calibrated service-model behaviours the figures rest on."""

import pytest

from repro.cluster import (BackendServer, NfsServer, NodeSpec, IDE_DISK_4GB,
                           SCSI_DISK_8GB, ServiceCosts)
from repro.content import ContentItem, ContentType
from repro.net import HttpRequest, Lan
from repro.sim import Simulator


def run_one(sim, server, item):
    out = []

    def go():
        out.append((yield sim.process(server.serve(HttpRequest(item.path),
                                                   item))))

    sim.process(go())
    sim.run()
    return out[0]


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def lan(sim):
    return Lan(sim, latency=0.0)


class TestLowMemoryDynamicPenalty:
    """§5.3: dynamic requests on slow nodes take 'orders of magnitude more
    time' -- modelled as memory-pressure scaling on <96 MB nodes."""

    def make(self, sim, lan, mem_mb):
        spec = NodeSpec(f"n{mem_mb}", 350, mem_mb, SCSI_DISK_8GB)
        return BackendServer(sim, lan, spec)

    def test_low_memory_node_pays_penalty(self, sim, lan):
        cgi = ContentItem("/cgi-bin/q.cgi", 2048, ContentType.CGI,
                          cpu_work=0.030)
        small = self.make(sim, lan, 64)
        big = self.make(sim, lan, 128)
        r_small = run_one(sim, small, cgi)
        r_big = run_one(sim, big, cgi)
        costs = ServiceCosts()
        assert r_small.service_time == pytest.approx(
            r_big.service_time * costs.dynamic_low_mem_penalty)

    def test_penalty_is_orders_of_magnitude_on_slow_nodes(self, sim, lan):
        """150 MHz / 64 MB vs 350 MHz / 128 MB: the paper's claim."""
        cgi = ContentItem("/cgi-bin/q.cgi", 2048, ContentType.CGI,
                          cpu_work=0.030)
        slow = BackendServer(sim, lan,
                             NodeSpec("slow", 150, 64, IDE_DISK_4GB))
        fast = BackendServer(sim, lan,
                             NodeSpec("fast", 350, 128, SCSI_DISK_8GB))
        r_slow = run_one(sim, slow, cgi)
        r_fast = run_one(sim, fast, cgi)
        assert r_slow.service_time > 10 * r_fast.service_time

    def test_static_requests_unaffected_by_memory_penalty(self, sim, lan):
        page = ContentItem("/p.html", 2048, ContentType.HTML)
        small = self.make(sim, lan, 64)
        big = self.make(sim, lan, 128)
        small.place(page)
        big.place(page)
        run_one(sim, small, page)  # warm caches
        run_one(sim, big, page)
        r_small = run_one(sim, small, page)
        r_big = run_one(sim, big, page)
        assert r_small.service_time == pytest.approx(r_big.service_time)


class TestNfsServeThrough:
    """§5.3's NFS behaviour: remote content is never held in the web
    server's memory cache (close-to-open consistency)."""

    def test_every_request_goes_remote(self, sim, lan):
        nfs = NfsServer(sim, lan, NodeSpec("nfs", 350, 128, SCSI_DISK_8GB))
        item = ContentItem("/a.html", 8192, ContentType.HTML)
        nfs.export([item])
        server = BackendServer(
            sim, lan, NodeSpec("web", 350, 128, SCSI_DISK_8GB), nfs=nfs)
        for _ in range(3):
            resp = run_one(sim, server, item)
            assert resp.ok and not resp.cache_hit
        assert nfs.rpcs_served == 3
        assert len(server.cache) == 0  # nothing admitted locally

    def test_nfs_server_cache_still_works(self, sim, lan):
        nfs = NfsServer(sim, lan, NodeSpec("nfs", 350, 128, SCSI_DISK_8GB))
        item = ContentItem("/a.html", 8192, ContentType.HTML)
        nfs.export([item])
        server = BackendServer(
            sim, lan, NodeSpec("web", 350, 128, SCSI_DISK_8GB), nfs=nfs)
        run_one(sim, server, item)
        run_one(sim, server, item)
        assert nfs.disk.reads == 1  # second RPC hit the file server cache

    def test_local_copy_preferred_over_nfs(self, sim, lan):
        nfs = NfsServer(sim, lan, NodeSpec("nfs", 350, 128, SCSI_DISK_8GB))
        item = ContentItem("/a.html", 8192, ContentType.HTML)
        nfs.export([item])
        server = BackendServer(
            sim, lan, NodeSpec("web", 350, 128, SCSI_DISK_8GB), nfs=nfs)
        server.place(item)
        run_one(sim, server, item)
        assert nfs.rpcs_served == 0
        assert item.path in server.cache


class TestDiskMetadataAccesses:
    def test_per_file_accesses_factor(self, sim, lan):
        """Whole-file reads pay metadata + data positioning (~1.7 seeks)."""
        spec = NodeSpec("n", 350, 128, SCSI_DISK_8GB)
        server = BackendServer(sim, lan, spec)
        item = ContentItem("/big.html", 1024, ContentType.HTML)
        server.place(item)
        resp = run_one(sim, server, item)
        min_disk = spec.disk.per_file_accesses * spec.disk.avg_access_s
        assert resp.service_time >= min_disk
