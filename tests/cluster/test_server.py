"""Tests for the backend web server service model and the NFS path."""

import pytest

from repro.cluster import (BackendServer, NfsServer, NodeSpec, IDE_DISK_4GB,
                           SCSI_DISK_8GB, ServiceCosts, paper_testbed_specs)
from repro.content import ContentItem, ContentType
from repro.net import HttpRequest, Lan
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def lan(sim):
    return Lan(sim, latency=0.0)


def fast_spec(name="fast"):
    return NodeSpec(name, 350, 128, SCSI_DISK_8GB)


def slow_spec(name="slow"):
    return NodeSpec(name, 150, 64, IDE_DISK_4GB)


def run_one(sim, server, item, url=None):
    """Drive one request through a server, return the response."""
    request = HttpRequest(url or item.path)
    out = []

    def go():
        resp = yield sim.process(server.serve(request, item))
        out.append(resp)

    sim.process(go())
    sim.run()
    return out[0]


class TestStaticService:
    def test_static_hit_served_from_memory(self, sim, lan):
        server = BackendServer(sim, lan, fast_spec())
        item = ContentItem("/a.html", 8192, ContentType.HTML)
        server.place(item)
        first = run_one(sim, server, item)
        assert first.ok and not first.cache_hit
        second = run_one(sim, server, item)
        assert second.cache_hit
        assert second.service_time < first.service_time

    def test_miss_pays_disk_time(self, sim, lan):
        server = BackendServer(sim, lan, fast_spec())
        item = ContentItem("/a.html", 64 * 1024, ContentType.HTML)
        server.place(item)
        resp = run_one(sim, server, item)
        assert resp.service_time >= SCSI_DISK_8GB.avg_access_s

    def test_no_copy_anywhere_is_404(self, sim, lan):
        server = BackendServer(sim, lan, fast_spec())
        item = ContentItem("/a.html", 100, ContentType.HTML)
        resp = run_one(sim, server, item)  # never placed
        assert resp.status == 404
        assert server.failed_requests == 1
        assert server.completed_requests == 0

    def test_none_item_is_404(self, sim, lan):
        server = BackendServer(sim, lan, fast_spec())
        request = HttpRequest("/ghost.html")
        out = []

        def go():
            out.append((yield sim.process(server.serve(request, None))))

        sim.process(go())
        sim.run()
        assert out[0].status == 404

    def test_response_carries_metadata(self, sim, lan):
        server = BackendServer(sim, lan, fast_spec("nodeX"))
        item = ContentItem("/a.html", 5000, ContentType.HTML)
        server.place(item)
        resp = run_one(sim, server, item)
        assert resp.served_by == "nodeX"
        assert resp.content_length == 5000


class TestDynamicService:
    def test_dynamic_pays_cpu_work(self, sim, lan):
        server = BackendServer(sim, lan, fast_spec())
        cgi = ContentItem("/cgi-bin/q.cgi", 4096, ContentType.CGI,
                          cpu_work=0.050)
        server.place(cgi)
        resp = run_one(sim, server, cgi)
        assert resp.service_time >= 0.050

    def test_slow_node_much_slower_on_dynamic(self, sim, lan):
        cgi = ContentItem("/cgi-bin/q.cgi", 4096, ContentType.CGI,
                          cpu_work=0.050)
        fast = BackendServer(sim, lan, fast_spec())
        slow = BackendServer(sim, lan, slow_spec())
        fast.place(cgi)
        slow.place(cgi)
        fast_resp = run_one(sim, fast, cgi)
        slow_resp = run_one(sim, slow, cgi)
        # 350/150 = 2.33x CPU scaling dominates
        assert slow_resp.service_time > 2.0 * fast_resp.service_time

    def test_dynamic_needs_no_local_static_copy(self, sim, lan):
        """Dynamic responses are generated, not read from the store."""
        server = BackendServer(sim, lan, fast_spec())
        cgi = ContentItem("/cgi-bin/q.cgi", 4096, ContentType.CGI,
                          cpu_work=0.010)
        resp = run_one(sim, server, cgi)
        assert resp.ok


class TestInterference:
    def test_long_request_delays_short_one(self, sim, lan):
        """§1.1: CPU-intensive dynamic requests delay static delivery --
        the motivation for segregation (Figure 4)."""
        server = BackendServer(sim, lan, fast_spec())
        cgi = ContentItem("/cgi-bin/slow.cgi", 1024, ContentType.CGI,
                          cpu_work=0.200)
        page = ContentItem("/index.html", 2048, ContentType.HTML)
        server.place(cgi)
        server.place(page)
        # warm the page into cache
        run_one(sim, server, page)

        results = {}

        def issue(name, item, delay):
            yield sim.timeout(delay)
            resp = yield sim.process(server.serve(HttpRequest(item.path),
                                                  item))
            results[name] = resp

        sim.process(issue("cgi", cgi, 0.0))
        sim.process(issue("page", page, 0.001))
        sim.run()
        # the static hit should take ~0.3 ms alone but waits behind 200 ms CGI
        assert results["page"].service_time > 0.1

    def test_worker_slots_bound_concurrency(self, sim, lan):
        spec = NodeSpec("tiny", 350, 128, SCSI_DISK_8GB, max_workers=2)
        server = BackendServer(sim, lan, spec)
        item = ContentItem("/a.html", 1024, ContentType.HTML)
        server.place(item)
        peak = []

        def issue():
            resp = yield sim.process(server.serve(HttpRequest(item.path),
                                                  item))
            peak.append(server.workers.in_use)

        for _ in range(6):
            sim.process(issue())
        sim.run()
        assert server.workers.peak_queue_len >= 1  # some had to wait


class TestNfsPath:
    def make_nfs(self, sim, lan):
        nfs_spec = NodeSpec("nfs", 350, 128, SCSI_DISK_8GB)
        return NfsServer(sim, lan, nfs_spec)

    def test_remote_read_on_miss(self, sim, lan):
        nfs = self.make_nfs(sim, lan)
        item = ContentItem("/a.html", 16384, ContentType.HTML)
        nfs.export([item])
        server = BackendServer(sim, lan, fast_spec(), nfs=nfs)
        resp = run_one(sim, server, item)
        assert resp.ok
        assert nfs.rpcs_served == 1
        assert nfs.bytes_served == 16384

    def test_remote_read_slower_than_local(self, sim, lan):
        item = ContentItem("/a.html", 16384, ContentType.HTML)
        nfs = self.make_nfs(sim, lan)
        nfs.export([item])
        remote = BackendServer(sim, lan, fast_spec("remote"), nfs=nfs)
        local = BackendServer(sim, lan, fast_spec("local"))
        local.place(item)
        r_remote = run_one(sim, remote, item)
        r_local = run_one(sim, local, item)
        assert r_remote.service_time > r_local.service_time

    def test_nfs_cache_serves_repeat_reads_without_disk(self, sim, lan):
        nfs = self.make_nfs(sim, lan)
        item = ContentItem("/a.html", 16384, ContentType.HTML)
        nfs.export([item])
        server_spec = NodeSpec("web", 350, 1024 + 32, SCSI_DISK_8GB)
        # deliberately tiny web-server cache so every request goes remote
        server = BackendServer(sim, lan, fast_spec(), nfs=nfs)
        run_one(sim, server, item)
        server.cache.clear()
        run_one(sim, server, item)
        assert nfs.disk.reads == 1  # second RPC hit the NFS memory cache

    def test_unexported_item_raises(self, sim, lan):
        nfs = self.make_nfs(sim, lan)
        item = ContentItem("/a.html", 100, ContentType.HTML)
        server = BackendServer(sim, lan, fast_spec(), nfs=nfs)
        request = HttpRequest(item.path)

        def go():
            yield sim.process(server.serve(request, item))

        sim.process(go())
        with pytest.raises(KeyError):
            sim.run()


class TestFailureInjection:
    def test_crashed_server_raises(self, sim, lan):
        server = BackendServer(sim, lan, fast_spec())
        server.crash()
        item = ContentItem("/a.html", 100, ContentType.HTML)
        with pytest.raises(RuntimeError):
            # serve() raises synchronously before any yield
            next(iter(server.serve(HttpRequest(item.path), item)))

    def test_recover(self, sim, lan):
        server = BackendServer(sim, lan, fast_spec())
        server.crash()
        server.recover()
        item = ContentItem("/a.html", 100, ContentType.HTML)
        server.place(item)
        assert run_one(sim, server, item).ok


class TestOsPenalty:
    def test_nt_slower_than_linux_same_hardware(self, sim, lan):
        item = ContentItem("/a.html", 4096, ContentType.HTML)
        linux = BackendServer(
            sim, lan, NodeSpec("l", 350, 128, SCSI_DISK_8GB, os="linux"))
        nt = BackendServer(
            sim, lan, NodeSpec("n", 350, 128, SCSI_DISK_8GB, os="nt"))
        linux.place(item)
        nt.place(item)
        run_one(sim, linux, item)   # warm caches
        run_one(sim, nt, item)
        r_linux = run_one(sim, linux, item)
        r_nt = run_one(sim, nt, item)
        assert r_nt.service_time > r_linux.service_time
