"""Tests (including property-based) for the LRU content cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import LruCache


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            LruCache(0)
        with pytest.raises(ValueError):
            LruCache(100, bypass_fraction=0.0)
        with pytest.raises(ValueError):
            LruCache(100, bypass_fraction=1.5)

    def test_miss_then_hit(self):
        c = LruCache(1000)
        assert not c.access("/a")
        assert c.admit("/a", 100)
        assert c.access("/a")
        assert c.hits == 1 and c.misses == 1
        assert c.hit_rate == 0.5

    def test_used_bytes_tracking(self):
        c = LruCache(1000)
        c.admit("/a", 100)
        c.admit("/b", 200)
        assert c.used_bytes == 300
        assert len(c) == 2

    def test_admit_negative_size_rejected(self):
        c = LruCache(100)
        with pytest.raises(ValueError):
            c.admit("/a", -1)

    def test_hit_rate_empty(self):
        assert LruCache(10).hit_rate == 0.0


class TestEviction:
    def test_lru_eviction_order(self):
        c = LruCache(300, bypass_fraction=1.0)
        c.admit("/a", 100)
        c.admit("/b", 100)
        c.admit("/c", 100)
        c.access("/a")          # freshen /a; /b is now LRU
        c.admit("/d", 100)      # evicts /b
        assert "/b" not in c
        assert "/a" in c and "/c" in c and "/d" in c
        assert c.evictions == 1

    def test_eviction_frees_enough_space(self):
        c = LruCache(250, bypass_fraction=1.0)
        c.admit("/a", 100)
        c.admit("/b", 100)
        c.admit("/big", 200)    # must evict both /a and /b
        assert c.used_bytes == 200
        assert "/a" not in c and "/b" not in c

    def test_readmit_refreshes_size(self):
        c = LruCache(1000)
        c.admit("/a", 100)
        c.admit("/a", 150)
        assert c.used_bytes == 150
        assert len(c) == 1


class TestBypass:
    def test_oversized_object_bypasses(self):
        c = LruCache(1000, bypass_fraction=0.25)
        assert not c.admit("/video", 500)   # > 250 bypass threshold
        assert "/video" not in c
        assert c.bypasses == 1
        assert c.used_bytes == 0

    def test_bypass_does_not_evict(self):
        c = LruCache(1000, bypass_fraction=0.25)
        c.admit("/a", 200)
        c.admit("/video", 900)
        assert "/a" in c


class TestInvalidate:
    def test_invalidate_present(self):
        c = LruCache(1000)
        c.admit("/a", 100)
        assert c.invalidate("/a")
        assert "/a" not in c
        assert c.used_bytes == 0

    def test_invalidate_absent(self):
        assert not LruCache(10).invalidate("/nope")

    def test_clear(self):
        c = LruCache(1000)
        c.admit("/a", 10)
        c.admit("/b", 20)
        c.clear()
        assert len(c) == 0 and c.used_bytes == 0


class TestWorkingSetEffect:
    def test_small_working_set_high_hit_rate(self):
        """The Figure 2 mechanism: a working set within capacity converges
        to ~100 % hits; one far beyond capacity keeps missing."""
        small = LruCache(100 * 10, bypass_fraction=1.0)
        for round_ in range(5):
            for i in range(8):      # working set 8 x 100 = 800 <= 1000
                key = f"/f{i}"
                if not small.access(key):
                    small.admit(key, 100)
        assert small.hit_rate > 0.7

        big = LruCache(100 * 10, bypass_fraction=1.0)
        for round_ in range(5):
            for i in range(50):     # working set 5000 > 1000: LRU thrashes
                key = f"/f{i}"
                if not big.access(key):
                    big.admit(key, 100)
        assert big.hit_rate == 0.0  # cyclic scan defeats LRU entirely


class TestPropertyBased:
    @given(ops=st.lists(st.tuples(st.sampled_from(["a", "b", "c", "d", "e"]),
                                  st.integers(1, 400)),
                        min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold_under_any_sequence(self, ops):
        c = LruCache(1000, bypass_fraction=0.5)
        for key, size in ops:
            if not c.access(key):
                c.admit(key, size)
            assert c.used_bytes <= c.capacity_bytes
            assert c.used_bytes == sum(c._entries.values())
            assert all(s <= c.bypass_bytes for s in c._entries.values())

    @given(ops=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1,
                        max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, ops):
        c = LruCache(100)
        for key in ops:
            if not c.access(key):
                c.admit(key, 10)
        assert c.hits + c.misses == len(ops)
