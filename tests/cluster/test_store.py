"""Tests for the per-node local content store."""

import pytest

from repro.cluster import LocalStore, StoreFullError
from repro.content import ContentItem, ContentType


def item(path, size=100):
    return ContentItem(path, size, ContentType.HTML)


class TestLocalStore:
    def test_add_and_membership(self):
        s = LocalStore()
        s.add(item("/a", 50))
        assert "/a" in s
        assert s.get("/a").size_bytes == 50
        assert s.used_bytes == 50
        assert len(s) == 1

    def test_add_idempotent(self):
        s = LocalStore()
        s.add(item("/a", 50))
        s.add(item("/a", 50))
        assert len(s) == 1
        assert s.used_bytes == 50

    def test_capacity_enforced(self):
        s = LocalStore(capacity_bytes=100)
        s.add(item("/a", 80))
        with pytest.raises(StoreFullError):
            s.add(item("/b", 30))

    def test_remove_frees_space(self):
        s = LocalStore(capacity_bytes=100)
        s.add(item("/a", 80))
        s.remove("/a")
        assert s.used_bytes == 0
        s.add(item("/b", 90))  # now fits

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            LocalStore().get("/nope")

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            LocalStore().remove("/nope")

    def test_add_all_and_iteration(self):
        s = LocalStore()
        s.add_all([item("/a"), item("/b"), item("/c")])
        assert sorted(s.paths()) == ["/a", "/b", "/c"]
        assert sorted(i.path for i in s) == ["/a", "/b", "/c"]
