"""Tests for the CPU and disk service models."""

import pytest

from repro.cluster import Cpu, Disk, IDE_DISK_4GB, SCSI_DISK_8GB
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestCpu:
    def test_validation(self, sim):
        with pytest.raises(ValueError):
            Cpu(sim, 0)

    def test_reference_speed_unscaled(self, sim):
        cpu = Cpu(sim, 350)
        assert cpu.scaled(0.010) == pytest.approx(0.010)

    def test_slow_cpu_scales_up(self, sim):
        cpu = Cpu(sim, 150)
        assert cpu.scaled(0.010) == pytest.approx(0.010 * 350 / 150)

    def test_negative_work_rejected(self, sim):
        with pytest.raises(ValueError):
            Cpu(sim, 350).scaled(-1)

    def test_run_takes_scaled_time(self, sim):
        cpu = Cpu(sim, 175)  # half speed
        done = []

        def go():
            yield from cpu.run(0.010)
            done.append(sim.now)

        sim.process(go())
        sim.run()
        assert done[0] == pytest.approx(0.020)
        assert cpu.busy_seconds == pytest.approx(0.020)
        assert cpu.bursts == 1

    def test_bursts_serialize(self, sim):
        cpu = Cpu(sim, 350)
        done = []

        def go(name):
            yield from cpu.run(0.010)
            done.append((name, sim.now))

        sim.process(go("a"))
        sim.process(go("b"))
        sim.run()
        assert done == [("a", pytest.approx(0.010)),
                        ("b", pytest.approx(0.020))]

    def test_utilization(self, sim):
        cpu = Cpu(sim, 350)

        def go():
            yield from cpu.run(0.5)

        sim.process(go())
        sim.run(until=1.0)
        assert cpu.utilization() == pytest.approx(0.5)


class TestDisk:
    def test_read_time_includes_seek(self, sim):
        disk = Disk(sim, IDE_DISK_4GB)
        done = []

        def go():
            yield from disk.read(8 * 1024 * 1024)
            done.append(sim.now)

        sim.process(go())
        sim.run()
        expected = (IDE_DISK_4GB.per_file_accesses *
                    IDE_DISK_4GB.avg_access_s + 1.0)
        assert done[0] == pytest.approx(expected)
        assert disk.reads == 1
        assert disk.bytes_read == 8 * 1024 * 1024

    def test_reads_serialize_on_one_arm(self, sim):
        disk = Disk(sim, SCSI_DISK_8GB)
        done = []

        def go():
            yield from disk.read(0)
            done.append(sim.now)

        sim.process(go())
        sim.process(go())
        sim.run()
        assert done[1] == pytest.approx(
            2 * SCSI_DISK_8GB.per_file_accesses * SCSI_DISK_8GB.avg_access_s)

    def test_scsi_beats_ide_under_contention(self, sim):
        ide = Disk(sim, IDE_DISK_4GB)
        scsi = Disk(sim, SCSI_DISK_8GB)
        finish = {}

        def go(disk, name):
            for _ in range(10):
                yield from disk.read(64 * 1024)
            finish[name] = sim.now

        sim.process(go(ide, "ide"))
        sim.process(go(scsi, "scsi"))
        sim.run()
        assert finish["scsi"] < finish["ide"]
