"""Tests for hardware specs and the paper's testbed."""

import pytest

from repro.cluster import (IDE_DISK_4GB, SCSI_DISK_4GB, SCSI_DISK_8GB,
                           DiskSpec, NodeSpec, distributor_spec,
                           paper_testbed_specs)


class TestDiskSpec:
    def test_read_time_structure(self):
        d = DiskSpec("X", avg_access_s=0.01, transfer_mbps=10, capacity_gb=1,
                     per_file_accesses=1.0)
        assert d.read_time(0) == pytest.approx(0.01)
        assert d.read_time(10 * 1024 * 1024) == pytest.approx(1.01)

    def test_read_time_counts_metadata_accesses(self):
        d = DiskSpec("X", avg_access_s=0.01, transfer_mbps=10, capacity_gb=1,
                     per_file_accesses=1.7)
        assert d.read_time(0) == pytest.approx(0.017)

    def test_negative_read_rejected(self):
        with pytest.raises(ValueError):
            IDE_DISK_4GB.read_time(-1)

    def test_scsi_faster_than_ide(self):
        n = 64 * 1024
        assert SCSI_DISK_8GB.read_time(n) < SCSI_DISK_4GB.read_time(n) \
            < IDE_DISK_4GB.read_time(n)

    def test_capacity_bytes(self):
        assert IDE_DISK_4GB.capacity_bytes == 4 * 1024 ** 3


class TestNodeSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            NodeSpec("bad", cpu_mhz=0, mem_mb=64, disk=IDE_DISK_4GB)
        with pytest.raises(ValueError):
            NodeSpec("bad", cpu_mhz=100, mem_mb=0, disk=IDE_DISK_4GB)

    def test_speed_factor_reference(self):
        fast = NodeSpec("a", 350, 128, SCSI_DISK_8GB)
        slow = NodeSpec("b", 150, 64, IDE_DISK_4GB)
        assert fast.speed_factor == pytest.approx(1.0)
        assert slow.speed_factor == pytest.approx(150 / 350)

    def test_cache_bytes_reserves_os_memory(self):
        small = NodeSpec("a", 150, 64, IDE_DISK_4GB)
        big = NodeSpec("b", 350, 128, SCSI_DISK_8GB)
        assert small.cache_bytes == 20 * 1024 * 1024
        assert big.cache_bytes == 84 * 1024 * 1024

    def test_weight_reference_node_is_one(self):
        ref = NodeSpec("ref", 350, 128, SCSI_DISK_8GB)
        assert ref.weight == pytest.approx(1.0)

    def test_weight_orders_by_capacity(self):
        specs = {s.name: s for s in paper_testbed_specs()}
        assert specs["s150-0"].weight < specs["s200-0"].weight \
            < specs["s350-0"].weight


class TestPaperTestbed:
    def test_nine_backends(self):
        specs = paper_testbed_specs()
        assert len(specs) == 9

    def test_exact_configuration_from_section_5_1(self):
        specs = paper_testbed_specs()
        by_mhz = {}
        for s in specs:
            by_mhz.setdefault(s.cpu_mhz, []).append(s)
        assert len(by_mhz[150]) == 3
        assert len(by_mhz[200]) == 2
        assert len(by_mhz[350]) == 4
        for s in by_mhz[150]:
            assert s.mem_mb == 64 and s.disk.kind == "IDE" \
                and s.disk.capacity_gb == 4
        for s in by_mhz[200]:
            assert s.mem_mb == 128 and s.disk.kind == "SCSI" \
                and s.disk.capacity_gb == 4
        for s in by_mhz[350]:
            assert s.mem_mb == 128 and s.disk.kind == "SCSI" \
                and s.disk.capacity_gb == 8

    def test_heterogeneous_oses(self):
        oses = {s.os for s in paper_testbed_specs()}
        assert oses == {"linux", "nt"}

    def test_all_fast_ethernet(self):
        assert all(s.nic_mbps == 100.0 for s in paper_testbed_specs())

    def test_unique_names(self):
        names = [s.name for s in paper_testbed_specs()]
        assert len(set(names)) == len(names)

    def test_distributor_spec(self):
        d = distributor_spec()
        assert d.cpu_mhz == 350 and d.mem_mb == 128
