"""Contention tests for the shared NFS file server (the Figure 2 bottleneck)."""

import pytest

from repro.cluster import (BackendServer, NfsServer, NodeSpec,
                           SCSI_DISK_8GB, paper_testbed_specs)
from repro.content import ContentItem, ContentType
from repro.net import HttpRequest, Lan
from repro.sim import Simulator


def build_nfs_cluster(n_webs=4, n_items=50, item_size=32 * 1024):
    sim = Simulator()
    lan = Lan(sim)
    nfs = NfsServer(sim, lan, NodeSpec("nfs", 350, 128, SCSI_DISK_8GB))
    items = [ContentItem(f"/f{i:03d}.html", item_size, ContentType.HTML)
             for i in range(n_items)]
    nfs.export(items)
    webs = [BackendServer(sim, lan, spec, nfs=nfs)
            for spec in paper_testbed_specs()[:n_webs]]
    return sim, lan, nfs, webs, items


def serve_all(sim, server, items, done, start_at=0.0):
    def go():
        if start_at:
            yield sim.timeout(start_at)
        for item in items:
            resp = yield sim.process(server.serve(HttpRequest(item.path),
                                                  item))
            assert resp.ok
        done.append(sim.now)

    sim.process(go())


class TestNfsContention:
    def test_concurrent_web_servers_serialize_on_the_file_server(self):
        """Doubling the web servers does not double NFS-backed capacity:
        every miss funnels through one disk arm."""
        finish = {}
        for n_webs in (1, 4):
            sim, lan, nfs, webs, items = build_nfs_cluster(n_webs=n_webs)
            done = []
            per_web = len(items) // n_webs
            for i, web in enumerate(webs):
                serve_all(sim, web, items[i * per_web:(i + 1) * per_web],
                          done)
            sim.run()
            finish[n_webs] = max(done)
        # 4 servers each did 1/4 of the work, but the shared disk
        # prevents a 4x speedup (cold cache: every read hits the disk)
        speedup = finish[1] / finish[4]
        assert speedup < 2.5

    def test_nfs_disk_is_the_busy_resource(self):
        sim, lan, nfs, webs, items = build_nfs_cluster(n_webs=4)
        done = []
        for i, web in enumerate(webs):
            # staggered starts: later servers find content already cached
            serve_all(sim, web, items, done, start_at=i * 2.0)
        sim.run()
        # the file server cache absorbs repeats once an object has landed;
        # concurrent first touches may race (no read coalescing), so the
        # disk does between 1x and the concurrency's worth of reads
        assert len(items) <= nfs.disk.reads <= 4 * len(items)
        assert nfs.disk.reads < nfs.rpcs_served
        assert nfs.rpcs_served == 4 * len(items)

    def test_nfs_nic_carries_all_content_bytes(self):
        sim, lan, nfs, webs, items = build_nfs_cluster(n_webs=2, n_items=20)
        done = []
        serve_all(sim, webs[0], items, done)
        serve_all(sim, webs[1], items, done)
        sim.run()
        expected = 2 * sum(i.size_bytes for i in items)
        assert nfs.nic.bytes_sent >= expected

    def test_web_server_count_does_not_add_nfs_capacity(self):
        """The single-point-of-scaling problem §1.1 describes: adding web
        servers leaves aggregate NFS throughput nearly flat once the file
        server saturates."""
        rates = {}
        for n_webs in (2, 6):
            sim, lan, nfs, webs, items = build_nfs_cluster(
                n_webs=n_webs, n_items=120, item_size=64 * 1024)
            done = []
            # every server reads a disjoint shard: all cold, all misses
            per_web = len(items) // n_webs
            for i, web in enumerate(webs):
                serve_all(sim, web, items[i * per_web:(i + 1) * per_web],
                          done)
            sim.run()
            rates[n_webs] = (per_web * n_webs) / max(done)
        assert rates[6] < 1.5 * rates[2]
