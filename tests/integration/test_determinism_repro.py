"""Satellite regression: same seed => bit-identical metrics.

Two layers of protection: (1) two in-process runs of the same cell produce
identical summary dicts; (2) two *subprocesses with different
PYTHONHASHSEED values* produce identical JSON -- the property the
determinism linter (DET003/DET004) exists to protect.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.experiments import ExperimentConfig, build_deployment
from repro.workload import WORKLOAD_A

SRC = str(Path(__file__).resolve().parents[2] / "src")

CELL = dict(scheme="partition-ca", duration=1.5, warmup=0.5,
            n_objects=120, n_client_machines=4, seed=1234)
N_CLIENTS = 4


def run_cell() -> dict:
    config = ExperimentConfig(workload=WORKLOAD_A, **CELL)
    return build_deployment(config).run(N_CLIENTS)


def test_same_seed_same_metrics_in_process():
    first = run_cell()
    second = run_cell()
    assert first["completed"] > 0
    assert first == second


_SUBPROCESS_SCRIPT = """\
import json
from repro.experiments import ExperimentConfig, build_deployment
from repro.workload import WORKLOAD_A

config = ExperimentConfig(workload=WORKLOAD_A, scheme="partition-ca",
                          duration=1.5, warmup=0.5, n_objects=120,
                          n_client_machines=4, seed=1234)
summary = build_deployment(config).run(4)
print(json.dumps(summary, sort_keys=True))
"""


def _run_with_hashseed(seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=SRC)
    proc = subprocess.run([sys.executable, "-c", _SUBPROCESS_SCRIPT],
                          capture_output=True, text=True, env=env,
                          timeout=300)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_metrics_identical_across_hash_seeds():
    out_a = _run_with_hashseed("0")
    out_b = _run_with_hashseed("31337")
    assert json.loads(out_a)["completed"] > 0
    assert out_a == out_b
