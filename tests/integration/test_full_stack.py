"""End-to-end integration: distributor + management plane + load.

These tests wire the complete system the way the paper deploys it -- the
content-aware distributor routing live traffic while the controller/broker
management plane mutates content placement underneath it -- and check that
the two planes stay consistent.
"""

import pytest

from repro.cluster import distributor_spec, paper_testbed_specs, BackendServer
from repro.content import ContentItem, ContentType
from repro.core import (AutoReplicator, ContentAwareDistributor,
                        LoadAccountant, UrlTable)
from repro.experiments import ExperimentConfig, build_deployment
from repro.mgmt import Broker, Controller, RemoteConsole
from repro.net import HttpRequest, Lan, Nic
from repro.sim import RngStream, Simulator
from repro.workload import WORKLOAD_A, WorkloadSpec


def wire_management(deployment):
    """Attach controller + brokers to a built deployment."""
    controller = Controller(deployment.sim, deployment.frontend.nic,
                            deployment.url_table, deployment.doctree)
    registry = {}
    for server in deployment.servers.values():
        broker = Broker(deployment.sim, deployment.lan, server,
                        deployment.frontend.nic, registry)
        controller.register_broker(broker)
    return controller


def small_config(**kw):
    defaults = dict(scheme="partition-ca", workload=WORKLOAD_A,
                    n_objects=400, duration=4.0, warmup=1.0,
                    n_client_machines=4)
    defaults.update(kw)
    return ExperimentConfig(**defaults)


class TestManagementUnderLoad:
    def test_insert_new_document_while_serving(self):
        deployment = build_deployment(small_config())
        controller = wire_management(deployment)
        console = RemoteConsole(controller)
        sim = deployment.sim
        new_doc = ContentItem("/launch/announce.html", 4096,
                              ContentType.HTML)
        target = sorted(deployment.servers)[0]
        outcomes = []

        def admin():
            yield sim.timeout(1.5)
            yield from console.insert_file(new_doc, {target})

        def late_client():
            yield sim.timeout(3.0)  # after the insert completes
            outcome = yield sim.process(deployment.frontend.submit(
                HttpRequest(new_doc.path), deployment.rig.machine_nics[0]))
            outcomes.append(outcome)

        sim.process(admin())
        sim.process(late_client())
        deployment.rig.start_clients(8)
        sim.run(until=4.0)
        deployment.rig.stop_clients()
        assert outcomes and outcomes[0].response.ok
        assert outcomes[0].backend == target
        assert deployment.servers[target].holds(new_doc.path)

    def test_offload_under_load_keeps_service_consistent(self):
        deployment = build_deployment(small_config())
        controller = wire_management(deployment)
        sim = deployment.sim
        # replicate one popular document, then offload the original copy
        item = sorted(deployment.catalog.static_items(),
                      key=lambda i: i.size_bytes)[0]
        original = sorted(deployment.url_table.locations(item.path))[0]
        other = next(n for n in sorted(deployment.servers)
                     if n != original)

        def admin():
            yield sim.timeout(1.0)
            yield from controller.replicate(item.path, other)
            yield sim.timeout(0.5)
            yield from controller.offload(item.path, original)

        sim.process(admin())
        deployment.rig.start_clients(8)
        sim.run(until=4.0)
        deployment.rig.stop_clients()
        assert deployment.rig.errors == 0
        assert deployment.url_table.locations(item.path) == {other}
        assert not deployment.servers[original].holds(item.path)
        # management log recorded both actions
        ops = [op for _, op, path, _ in controller.log
               if path == item.path]
        assert ops == ["replicate", "offload"]

    def test_mutable_content_update_invalidates_caches(self):
        """§4: mutable documents -- a push updates every replica and the
        next request serves the new version."""
        deployment = build_deployment(small_config())
        controller = wire_management(deployment)
        sim = deployment.sim
        item = sorted(deployment.catalog.static_items(),
                      key=lambda i: i.size_bytes)[0]
        new_version = ContentItem(item.path, item.size_bytes + 1000,
                                  item.ctype, mutable=True)
        sizes = []

        def admin():
            yield sim.timeout(1.0)
            yield from controller.update_content(new_version)
            outcome = yield sim.process(deployment.frontend.submit(
                HttpRequest(item.path), deployment.rig.machine_nics[0]))
            sizes.append(outcome.response.content_length)

        sim.process(admin())
        deployment.rig.start_clients(4)
        sim.run(until=4.0)
        deployment.rig.stop_clients()
        assert sizes == [item.size_bytes]  # item object mutated in place
        # every replica's store now has the new size
        for node in deployment.url_table.locations(item.path):
            assert deployment.servers[node].store.get(
                item.path).size_bytes == item.size_bytes

    def test_verify_placement_consistent_after_churn(self):
        deployment = build_deployment(small_config())
        controller = wire_management(deployment)
        sim = deployment.sim
        item = sorted(deployment.catalog.static_items(),
                      key=lambda i: i.size_bytes)[1]
        other = next(n for n in sorted(deployment.servers)
                     if n not in deployment.url_table.locations(item.path))
        bad = []

        def admin():
            yield from controller.replicate(item.path, other)
            result = yield from controller.verify_placement(item.path)
            bad.extend(result)

        sim.process(admin())
        sim.run(until=5.0)
        assert bad == []


class TestAutoReplicationIntegration:
    def test_hotspot_triggers_real_replication(self):
        hotspot = WorkloadSpec(name="hot", catalog_mix=WORKLOAD_A.catalog_mix,
                               request_mix=WORKLOAD_A.request_mix,
                               zipf_alpha=1.4, n_objects=300)
        deployment = build_deployment(small_config(
            workload=hotspot, duration=8.0))
        controller = wire_management(deployment)
        accountant = LoadAccountant(
            {n: s.spec.weight for n, s in deployment.servers.items()})
        deployment.frontend.on_response = accountant.record
        replicator = AutoReplicator(
            deployment.sim, accountant, deployment.url_table, controller,
            interval=1.0, threshold=0.25, max_actions_per_interval=2)
        replicator.start()
        deployment.rig.start_clients(20)
        deployment.sim.run(until=8.0)
        deployment.rig.stop_clients()
        replicator.stop()
        assert replicator.history, "hot spot must trigger actions"
        assert any(a.kind == "replicate" for a in replicator.history)
        # after arbitrary churn (replications may later be offloaded), the
        # URL table and the physical stores must agree exactly
        for record in deployment.url_table.records():
            assert record.locations, record.path
            for node in record.locations:
                assert deployment.servers[node].holds(record.path), \
                    f"{record.path} routed to {node} but not present"

    def test_no_actions_on_balanced_load(self):
        deployment = build_deployment(small_config(duration=6.0))
        controller = wire_management(deployment)
        accountant = LoadAccountant(
            {n: s.spec.weight for n, s in deployment.servers.items()})
        deployment.frontend.on_response = accountant.record
        replicator = AutoReplicator(
            deployment.sim, accountant, deployment.url_table, controller,
            interval=1.0, threshold=3.0,  # huge threshold: nothing qualifies
            max_actions_per_interval=2)
        replicator.start()
        deployment.rig.start_clients(10)
        deployment.sim.run(until=6.0)
        deployment.rig.stop_clients()
        replicator.stop()
        assert replicator.history == []


class TestEndToEndDeterminism:
    def test_full_stack_run_is_reproducible(self):
        r1 = build_deployment(small_config(seed=11)).run(10)
        r2 = build_deployment(small_config(seed=11)).run(10)
        assert r1["completed"] == r2["completed"]
        assert r1["throughput_rps"] == r2["throughput_rps"]

    def test_different_seeds_differ(self):
        r1 = build_deployment(small_config(seed=11)).run(10)
        r2 = build_deployment(small_config(seed=12)).run(10)
        assert r1["completed"] != r2["completed"]
