"""Every example script must run clean (they assert their own outcomes)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = ["quickstart.py", "content_hosting_qos.py",
                 "flash_crowd.py", "failover_drill.py",
                 "mutable_content.py"]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    assert "OK" in result.stdout


def test_reproduce_paper_script_importable():
    """The full reproduction driver is slow; check it compiles and its
    entry point exists (the benchmarks exercise the same code paths)."""
    source = (EXAMPLES / "reproduce_paper.py").read_text()
    compiled = compile(source, "reproduce_paper.py", "exec")
    assert "main" in compiled.co_names
