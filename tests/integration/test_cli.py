"""Tests for the ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import build_parser, main


def run_cli(*argv):
    return main(list(argv))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_clients_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--clients", "abc"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--clients", "0"])

    def test_bad_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "magic"])


class TestCommands:
    def test_schemes(self, capsys):
        assert run_cli("schemes") == 0
        out = capsys.readouterr().out
        assert "partition-ca" in out
        assert "config 3" in out

    def test_overhead(self, capsys):
        assert run_cli("overhead", "--objects", "500",
                       "--lookups", "500") == 0
        out = capsys.readouterr().out
        assert "URL table overhead" in out
        assert "260 KB" in out  # the paper reference line

    def test_run_cell(self, capsys):
        assert run_cli("run", "--scheme", "partition-ca",
                       "--workload", "A", "--clients", "8",
                       "--duration", "2.5", "--warmup", "0.5",
                       "--objects", "300") == 0
        out = capsys.readouterr().out
        assert "throughput req/s" in out
        assert "partition-ca / workload A / 8 clients" in out

    def test_figures_single(self, capsys):
        assert run_cli("figures", "--figure", "4", "--clients", "6,10",
                       "--duration", "2.5", "--warmup", "0.5") == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "Figure 2" not in out

    def test_bench_single_stage(self, tmp_path, capsys):
        import json
        target = tmp_path / "bench.json"
        assert run_cli("bench", "--scale", "quick",
                       "--stages", "openloop_latency",
                       "--output", str(target)) == 0
        out = capsys.readouterr().out
        assert "fast path vs segment path" in out
        payload = json.loads(target.read_text())
        assert payload["schema_version"] == 1
        stage = payload["stages"]["openloop_latency"]
        assert stage["identical"] is True
        assert stage["events"]["fast"] < stage["events"]["segment"]
        # wall-clock speedup itself is asserted in benchmarks/perf (the
        # bench marker), not in tier-1 where host load would flake it
        assert set(payload["target"]) == {"met", "min_speedup", "stage"}

    def test_bench_rejects_unknown_stage(self, tmp_path, capsys):
        assert run_cli("bench", "--stages", "nope",
                       "--output", str(tmp_path / "x.json")) == 2
        assert "unknown stages" in capsys.readouterr().err

    def test_sweep_clients_writes_csv(self, tmp_path, capsys):
        target = tmp_path / "out.csv"
        assert run_cli("sweep-clients", "--scheme", "partition-ca",
                       "--workload", "A", "--clients", "4,8",
                       "--duration", "2.5", "--warmup", "0.5",
                       "--objects", "300", "--output", str(target)) == 0
        lines = target.read_text().splitlines()
        assert lines[0].startswith("scheme,workload,n_clients")
        assert len(lines) == 3

    def test_sweep_runs_spec_and_resumes(self, tmp_path, capsys):
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "schema_version": 1, "name": "cli-tiny",
            "blocks": [{
                "target": "openloop",
                "base": {"rate": 150.0, "duration": 0.4, "seed": 42},
                "axes": {"fast_path": [False, True]},
            }],
        }))
        out = tmp_path / "sweeps"
        assert run_cli("sweep", "--spec", str(spec_path),
                       "--out", str(out)) == 0
        first = capsys.readouterr().out
        assert "sweep cli-tiny" in first
        (sweep,) = out.iterdir()
        report = json.loads((sweep / "report.json").read_text())
        assert report["aggregates"]["runs"] == 2
        # resuming a complete sweep runs nothing and reports the same
        assert run_cli("sweep", "--spec", str(spec_path),
                       "--out", str(out), "--resume") == 0
        second = capsys.readouterr().out
        assert "0 executed, 2 resumed" in second

    def test_sweep_list_shows_matrix(self, tmp_path, capsys):
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "schema_version": 1, "name": "cli-tiny",
            "blocks": [{"target": "openloop",
                        "base": {"rate": 150.0, "duration": 0.4},
                        "axes": {"seed": [1, 2, 3]}}],
        }))
        assert run_cli("sweep", "--spec", str(spec_path), "--list") == 0
        out = capsys.readouterr().out
        assert out.count("openloop[") == 3

    def test_sweep_rejects_bad_spec(self, tmp_path, capsys):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text("{not json")
        assert run_cli("sweep", "--spec", str(spec_path)) == 1
        assert "not valid JSON" in capsys.readouterr().err


class TestEntryPoint:
    def test_module_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "schemes"],
            capture_output=True, text=True, timeout=120)
        assert result.returncode == 0
        assert "replication-lard" in result.stdout
