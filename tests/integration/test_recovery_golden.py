"""Golden recovery regression: one baseline episode plus crash episodes
at pinned WAL boundaries must reproduce the committed fixture exactly --
WAL replay counts, resolved-intent actions, audit outcome, the lot.

The episodes are seeded and fully simulated, so this is an equality
check.  If a change legitimately moves the numbers (a new WAL record
kind, a different resolution policy), regenerate and review the diff:

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \\
        tests/integration/test_recovery_golden.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.golden import diff_metrics
from repro.experiments.recovery import (GOLDEN_RECOVERY_SCALE,
                                        collect_recovery_golden)

pytestmark = pytest.mark.recovery

FIXTURE = (Path(__file__).parent.parent / "fixtures" /
           "recovery_golden.json")


def test_recovery_matches_golden_fixture():
    actual = collect_recovery_golden()
    if os.environ.get("REPRO_UPDATE_GOLDEN") == "1":
        FIXTURE.parent.mkdir(parents=True, exist_ok=True)
        FIXTURE.write_text(json.dumps(actual, indent=2, sort_keys=True)
                           + "\n")
        return
    assert FIXTURE.exists(), (
        f"{FIXTURE} missing; regenerate with REPRO_UPDATE_GOLDEN=1")
    expected = json.loads(FIXTURE.read_text())
    drift = diff_metrics(expected, actual)
    assert not drift, (
        "recovery golden drifted (REPRO_UPDATE_GOLDEN=1 regenerates "
        "after review):\n  " + "\n  ".join(drift))


def test_fixture_pins_the_interesting_resolutions():
    # the pinned boundaries must keep exercising both resolution
    # directions; a fixture where every crash rolls the same way has
    # quietly lost its coverage
    expected = json.loads(FIXTURE.read_text())
    actions = set()
    for episode in expected["crashes"].values():
        assert episode["crashed"]
        assert episode["converged"]
        assert episode["consistency"] == []
        actions.update(episode["resolutions"])
    assert "rolled-back" in actions
    assert "rolled-forward" in actions


def test_fixture_scale_matches_code_constant():
    expected = json.loads(FIXTURE.read_text())
    scale = GOLDEN_RECOVERY_SCALE
    assert expected["scale"] == {
        "seed": scale["seed"], "n_objects": scale["n_objects"],
        "checkpoint_every": scale["checkpoint_every"],
        "crash_boundaries": list(scale["crash_boundaries"])}
