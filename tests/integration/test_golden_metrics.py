"""Golden-metrics regression: the reduced-scale experiment numbers must
match the committed fixture exactly.

The simulation is seeded and deterministic, so this is an equality check,
not a tolerance band.  If a change legitimately moves the numbers
(a model fix, a new cost term), regenerate the fixture and review the diff
like any other behavioural change:

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \\
        tests/integration/test_golden_metrics.py
"""

import json
import os
from pathlib import Path

from repro.experiments.golden import collect_golden_metrics, diff_metrics

FIXTURE = Path(__file__).parent.parent / "fixtures" / "golden_metrics.json"


def test_metrics_match_golden_fixture():
    actual = collect_golden_metrics()
    if os.environ.get("REPRO_UPDATE_GOLDEN") == "1":
        FIXTURE.parent.mkdir(parents=True, exist_ok=True)
        FIXTURE.write_text(json.dumps(actual, indent=2, sort_keys=True)
                           + "\n")
        return
    assert FIXTURE.exists(), (
        f"{FIXTURE} missing; regenerate with REPRO_UPDATE_GOLDEN=1")
    expected = json.loads(FIXTURE.read_text())
    drift = diff_metrics(expected, actual)
    assert not drift, (
        "golden metrics drifted (REPRO_UPDATE_GOLDEN=1 regenerates "
        "after review):\n  " + "\n  ".join(drift))


def test_diff_reports_readable_paths():
    expected = {"figure2": {"series": {"nfs-l4": [1.0, 2.0]}},
                "url_table": {"memory_bytes": 100}}
    actual = {"figure2": {"series": {"nfs-l4": [1.0, 2.5]}},
              "url_table": {"memory_bytes": 110}}
    drift = diff_metrics(expected, actual)
    assert "figure2.series.nfs-l4[1]: 2.0 -> 2.5 (+25.00%)" in drift
    assert "url_table.memory_bytes: 100 -> 110 (+10.00%)" in drift


def test_diff_flags_missing_and_extra_keys():
    drift = diff_metrics({"a": 1, "b": 2}, {"b": 2, "c": 3})
    assert any(line.startswith("a: missing") for line in drift)
    assert any(line.startswith("c: unexpected") for line in drift)
