"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figures``   reproduce the paper's Figures 2/3/4 (all by default)
``overhead``  the §5.2 URL-table overhead table
``run``       one experiment cell (scheme x workload x clients)
``schemes``   list available placement/routing schemes
``check``     run the repro.analysis correctness passes (exit 1 on findings)
``chaos``     seeded fault-injection episodes (exit 1 if any fails)
``overload``  flash-crowd + slow-disk overload episode (exit 1 on failure)
``trace``     traced overload episode: summary, waterfall, JSONL/Chrome export
``telemetry`` sampled overload episode: windowed series as JSONL or
              Prometheus text format (DESIGN §15)
``top``       telemetry dashboard for the overload episode: totals, gauges,
              scheduler introspection, SLO verdicts
``bench``     kernel fast-path wall-clock benchmark -> BENCH_kernel.json
``recover``   controller crash/recovery episode; ``--explore`` crashes the
              controller at every WAL/dispatch boundary (DESIGN §14)
``sweep``     run a SweepSpec matrix across worker processes and merge the
              per-run artifacts into one deterministic report (DESIGN §13)
``sweep-clients``  sweep client counts for one cell, write CSV
"""

from __future__ import annotations

import argparse
import sys

from .experiments import (SCHEMES, ExperimentConfig, build_deployment,
                          figure2, figure3, figure4, render_table,
                          sweep_clients, url_table_overhead, write_csv)
from .workload import WORKLOAD_A, WORKLOAD_B


def _parse_clients(text: str) -> tuple[int, ...]:
    try:
        counts = tuple(int(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}")
    if not counts or any(c < 1 for c in counts):
        raise argparse.ArgumentTypeError("client counts must be >= 1")
    return counts


def cmd_figures(args: argparse.Namespace) -> int:
    wanted = args.figure
    if wanted in ("2", "all"):
        print(figure2(clients=args.clients, duration=args.duration,
                      warmup=args.warmup, seed=args.seed)["rendered"], "\n")
    if wanted in ("3", "all"):
        print(figure3(clients=args.clients, duration=args.duration,
                      warmup=args.warmup, seed=args.seed)["rendered"], "\n")
    if wanted in ("4", "all"):
        print(figure4(n_clients=args.clients[-1], duration=args.duration,
                      warmup=args.warmup, seed=args.seed)["rendered"])
    return 0


def cmd_overhead(args: argparse.Namespace) -> int:
    result = url_table_overhead(n_objects=args.objects,
                                lookups=args.lookups, seed=args.seed)
    print(result["rendered"])
    print("paper reports: ~8700 objects, ~260 KB, ~4.32 us")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    workload = WORKLOAD_A if args.workload == "A" else WORKLOAD_B
    config = ExperimentConfig(scheme=args.scheme, workload=workload,
                              duration=args.duration, warmup=args.warmup,
                              seed=args.seed, n_objects=args.objects,
                              debug_invariants=args.debug_invariants)
    deployment = build_deployment(config)
    result = deployment.run(args.clients[-1])
    rows = [["throughput req/s", round(result["throughput_rps"], 1)],
            ["completed", result["completed"]],
            ["errors", result["errors"]],
            ["latency p50 ms", round(result["latency_p50"] * 1000, 1)],
            ["latency p95 ms", round(result["latency_p95"] * 1000, 1)],
            ["mean cache hit rate",
             round(result["mean_cache_hit_rate"], 3)]]
    for klass, rps in sorted(result["by_class"].items()):
        rows.append([f"  {klass} req/s", round(rps, 1)])
    print(render_table(
        f"{args.scheme} / workload {workload.name} / "
        f"{args.clients[-1]} clients", ["metric", "value"], rows))
    return 0


def cmd_sweep_clients(args: argparse.Namespace) -> int:
    workload = WORKLOAD_A if args.workload == "A" else WORKLOAD_B
    result = sweep_clients(args.scheme, workload, args.clients,
                           seed=args.seed, duration=args.duration,
                           warmup=args.warmup, n_objects=args.objects)
    write_csv(result, args.output)
    print(f"wrote {len(result.rows)} rows to {args.output}")
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    import json

    from .chaos import explore_crash_points, render_exploration
    from .experiments.recovery import (recovery_episode_fn, render_recovery,
                                       run_recovery_episode)
    from .mgmt import CrashPlan
    kwargs = dict(n_objects=args.objects, restart_delay=args.restart_delay,
                  checkpoint_every=args.checkpoint_every)
    if args.explore:
        report = explore_crash_points(
            recovery_episode_fn(args.seed, **kwargs),
            offset=args.offset, limit=args.limit)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(render_exploration(report, verbose=args.verbose))
        return 0 if report["all_converged"] else 1
    plan = (CrashPlan(at_boundary=args.boundary)
            if args.boundary is not None else None)
    outcome = run_recovery_episode(args.seed, crash_plan=plan, **kwargs)
    if args.json:
        print(json.dumps(outcome, indent=2, sort_keys=True))
    else:
        print(render_recovery(outcome))
    return 0 if outcome["converged"] else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from .experiments.sweep import (SweepEngine, SweepError, compare_reports,
                                    load_spec, merge_sweep, render_compare,
                                    render_report, write_report)
    try:
        spec = load_spec(args.spec)
        engine = SweepEngine(spec, args.out, workers=args.workers,
                             resume=args.resume, cell_filter=args.filter,
                             limit=args.limit)
        if args.list:
            for cell in engine.selected_cells():
                print(f"{cell.run_id}  {cell.cell_id}")
            return 0
        if args.workers == 1:
            # serial runs narrate per cell; parallel completion order is
            # nondeterministic, so only the merged report speaks for it
            engine.on_progress = \
                lambda cell_id, kind: print(f"  [{kind:>7s}] {cell_id}")
        status = engine.run()
        print(f"sweep {spec.name} [{spec.spec_hash}] -> {status.directory}")
        print(f"  {len(status.executed)} executed, "
              f"{len(status.resumed)} resumed, "
              f"{len(status.invalidated)} re-run (corrupt artifact)")
        if not status.complete:
            print(f"  partial: {len(status.pending)} cells pending; "
                  f"continue with --resume")
            return 0
        report = merge_sweep(spec, args.out, cell_filter=args.filter)
        path = write_report(spec, args.out, cell_filter=args.filter,
                            report=report)
        print(render_report(report))
        print(f"report: {path}")
        if args.compare is not None:
            try:
                with open(args.compare, encoding="utf-8") as fh:
                    prior = json.load(fh)
            except (OSError, json.JSONDecodeError) as exc:
                print(f"cannot read prior report {args.compare}: {exc}",
                      file=sys.stderr)
                return 1
            comparison = compare_reports(report, prior)
            print(render_compare(comparison))
            if comparison["regressed"]:
                return 1
    except SweepError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from .analysis.__main__ import main as analysis_main
    passes = "deep" if args.deep else args.passes
    argv = ["--pass", passes]
    if args.smoke_duration is not None:
        argv += ["--smoke-duration", str(args.smoke_duration)]
    if args.baseline is not None:
        argv += ["--baseline", args.baseline]
    if args.format != "text":
        argv += ["--format", args.format]
    return analysis_main(argv)


def cmd_chaos(args: argparse.Namespace) -> int:
    from .experiments.chaos import ChaosRunner
    runner = ChaosRunner(seed=args.seed, episodes=args.episodes,
                         duration=args.duration, clients=args.clients,
                         n_objects=args.objects, settle=args.settle)
    runner.run()
    print(runner.report())
    return 0 if runner.all_survived else 1


def cmd_overload(args: argparse.Namespace) -> int:
    from .experiments.chaos import run_overload_episode
    result = run_overload_episode(
        seed=args.seed, duration=args.duration, clients=args.clients,
        n_objects=args.objects, settle=args.settle,
        multiplier=args.multiplier, enabled=not args.disabled)
    print(result.report())
    return 0 if result.survived else 1


def cmd_trace(args: argparse.Namespace) -> int:
    from .experiments.chaos import run_overload_episode
    from .obs import (TraceSummary, format_event, pick_waterfall_trace,
                      render_waterfall, to_chrome_trace, to_jsonl)
    result = run_overload_episode(
        seed=args.seed, duration=args.duration, clients=args.clients,
        n_objects=args.objects, settle=args.settle,
        multiplier=args.multiplier, trace=True)
    tracer = result.tracer
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as fh:
            fh.write(to_jsonl(tracer))
        print(f"wrote {len(tracer.events)} events / {len(tracer.spans)} "
              f"spans to {args.jsonl}")
    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as fh:
            fh.write(to_chrome_trace(tracer))
        print(f"wrote Chrome trace-event file to {args.chrome}")
    if args.kind or args.node:
        events = tracer.find_events(kind=args.kind, node=args.node,
                                    trace_id=args.request)
        for event in events:
            print(format_event(event))
        print(f"{len(events)} events matched")
        return 0 if result.survived else 1
    print(TraceSummary.from_tracer(tracer).render())
    trace_id = args.request if args.request is not None \
        else pick_waterfall_trace(tracer)
    if trace_id is not None:
        print()
        print(render_waterfall(tracer, trace_id))
    return 0 if result.survived else 1


def cmd_telemetry(args: argparse.Namespace) -> int:
    from .experiments.chaos import run_overload_episode
    from .obs import (render_windows, telemetry_to_jsonl,
                      telemetry_to_prometheus)
    result = run_overload_episode(
        seed=args.seed, duration=args.duration, clients=args.clients,
        n_objects=args.objects, settle=args.settle,
        multiplier=args.multiplier, telemetry=args.window)
    sampler = result.telemetry
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as fh:
            fh.write(telemetry_to_jsonl(sampler, include_host=args.host))
        print(f"wrote {len(sampler.windows)} windows + summary "
              f"to {args.jsonl}")
    if args.prom:
        with open(args.prom, "w", encoding="utf-8") as fh:
            fh.write(telemetry_to_prometheus(sampler))
        print(f"wrote Prometheus text format to {args.prom}")
    if args.per_window or not (args.jsonl or args.prom):
        print(render_windows(sampler))
    summary = sampler.summary()
    print(f"{summary['windows']} windows x {summary['window_s']:g}s, "
          f"{summary['events_total']} events, "
          f"peak {summary['peak_events_per_sec']:.0f} ev/s")
    return 0 if result.survived else 1


def cmd_top(args: argparse.Namespace) -> int:
    from .experiments.chaos import run_overload_episode
    from .obs import render_top, render_windows
    result = run_overload_episode(
        seed=args.seed, duration=args.duration, clients=args.clients,
        n_objects=args.objects, settle=args.settle,
        multiplier=args.multiplier, telemetry=args.window,
        kernel_stats=True)
    if args.watch:
        print(render_windows(result.telemetry))
        print()
    print(render_top(result.telemetry, kernel_stats=result.kernel_stats,
                     slo_results=result.slo_results,
                     title=f"overload episode seed={args.seed}"))
    return 0 if result.survived and result.slo_ok else 1


def cmd_bench(args: argparse.Namespace) -> int:
    import json

    from .experiments.bench import BENCH_STAGES, render_bench, run_bench
    stages = None if args.stages == "all" else args.stages.split(",")
    if stages is not None:
        unknown = [s for s in stages if s not in BENCH_STAGES]
        if unknown:
            print(f"unknown stages: {', '.join(unknown)} "
                  f"(available: {', '.join(BENCH_STAGES)})", file=sys.stderr)
            return 2
    payload = run_bench(stages=stages, scale=args.scale, seed=args.seed,
                        profile=args.profile)
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(render_bench(payload))
    print(f"\nwrote {args.output}")
    if args.profile:
        print(f"profiled stage {payload['profile']['stage']} (fast path) "
              f"-> {args.profile}; inspect with: python -m pstats "
              f"{args.profile}")
    ok = all(s["identical"] for s in payload["stages"].values()) and \
        (args.smoke or payload["target"]["met"] is not False)
    return 0 if ok else 1


def cmd_schemes(args: argparse.Namespace) -> int:
    descriptions = {
        "replication-l4": "full replication + L4 router (WLC) -- config 1",
        "nfs-l4": "shared NFS + L4 router (WLC) -- config 2",
        "partition-ca": "content partition + content-aware distributor "
                        "-- config 3 (the paper's proposal)",
        "replication-lard": "full replication + LARD (extension)",
    }
    for scheme in SCHEMES:
        print(f"{scheme:18s} {descriptions.get(scheme, '')}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Yang & Luo, ICDCS 2000: content "
                    "placement and management for distributed web servers")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--seed", type=int, default=42)
        p.add_argument("--duration", type=float, default=14.0,
                       help="simulated seconds per point")
        p.add_argument("--warmup", type=float, default=4.0)
        p.add_argument("--clients", type=_parse_clients,
                       default=(15, 30, 60, 90, 120),
                       help="comma-separated client counts")

    p_fig = sub.add_parser("figures", help="reproduce Figures 2/3/4")
    p_fig.add_argument("--figure", choices=("2", "3", "4", "all"),
                       default="all")
    common(p_fig)
    p_fig.set_defaults(func=cmd_figures)

    p_ovh = sub.add_parser("overhead", help="the §5.2 URL-table table")
    p_ovh.add_argument("--objects", type=int, default=8700)
    p_ovh.add_argument("--lookups", type=int, default=20000)
    p_ovh.add_argument("--seed", type=int, default=42)
    p_ovh.set_defaults(func=cmd_overhead)

    p_run = sub.add_parser("run", help="run one experiment cell")
    p_run.add_argument("--scheme", choices=SCHEMES, default="partition-ca")
    p_run.add_argument("--workload", choices=("A", "B"), default="A")
    p_run.add_argument("--objects", type=int, default=None)
    p_run.add_argument("--debug-invariants", action="store_true",
                       help="run the repro.analysis coherence checks "
                            "periodically during the simulation")
    common(p_run)
    p_run.set_defaults(func=cmd_run)

    p_swc = sub.add_parser("sweep-clients",
                           help="sweep client counts for one cell, "
                                "write CSV")
    p_swc.add_argument("--scheme", choices=SCHEMES, default="partition-ca")
    p_swc.add_argument("--workload", choices=("A", "B"), default="A")
    p_swc.add_argument("--objects", type=int, default=None)
    p_swc.add_argument("--output", default="sweep.csv")
    common(p_swc)
    p_swc.set_defaults(func=cmd_sweep_clients)

    p_swp = sub.add_parser("sweep",
                           help="run a SweepSpec matrix across worker "
                                "processes, write per-run artifacts, and "
                                "merge them into one deterministic report")
    p_swp.add_argument("--spec", required=True,
                       help="SweepSpec JSON file (e.g. "
                            "specs/sweep_smoke.json)")
    p_swp.add_argument("--out", default="sweeps",
                       help="output root; artifacts land under "
                            "OUT/<name>-<spec_hash>/runs/")
    p_swp.add_argument("--workers", type=int, default=1,
                       help="worker processes (default 1: serial, "
                            "in-process)")
    p_swp.add_argument("--resume", action="store_true",
                       help="keep valid artifacts from a previous "
                            "(interrupted) sweep; re-run missing or "
                            "corrupt ones")
    p_swp.add_argument("--filter", default=None,
                       help="only run/merge cells whose cell id contains "
                            "this substring")
    p_swp.add_argument("--limit", type=int, default=None,
                       help="run at most N pending cells, then stop "
                            "without merging (finish with --resume)")
    p_swp.add_argument("--list", action="store_true",
                       help="print the expanded run matrix and exit")
    p_swp.add_argument("--compare", default=None, metavar="PRIOR_REPORT",
                       help="after merging, diff the report against this "
                            "prior report.json (per-cell and per-axis "
                            "deltas; exit 1 on regression)")
    p_swp.set_defaults(func=cmd_sweep)

    p_rec = sub.add_parser("recover",
                           help="controller crash/recovery episode; "
                                "--explore crashes it at every WAL/"
                                "dispatch boundary and checks convergence")
    p_rec.add_argument("--seed", type=int, default=1)
    p_rec.add_argument("--objects", type=int, default=60)
    p_rec.add_argument("--restart-delay", type=float, default=0.6,
                       help="simulated seconds the controller stays down")
    p_rec.add_argument("--checkpoint-every", type=int, default=24,
                       help="WAL records between checkpoints")
    p_rec.add_argument("--boundary", type=int, default=None,
                       help="crash at this single boundary (1-based)")
    p_rec.add_argument("--explore", action="store_true",
                       help="crash at every boundary; exit 1 unless every "
                            "crash point converges")
    p_rec.add_argument("--offset", type=int, default=0,
                       help="with --explore: skip the first N boundaries")
    p_rec.add_argument("--limit", type=int, default=None,
                       help="with --explore: explore at most N boundaries")
    p_rec.add_argument("--verbose", action="store_true",
                       help="with --explore: list every crash point, not "
                            "just failures")
    p_rec.add_argument("--json", action="store_true",
                       help="emit the raw report as JSON")
    p_rec.set_defaults(func=cmd_recover)

    p_sch = sub.add_parser("schemes", help="list placement/routing schemes")
    p_sch.set_defaults(func=cmd_schemes)

    p_cha = sub.add_parser("chaos",
                           help="run seeded fault-injection episodes and "
                                "check the survival properties")
    p_cha.add_argument("--seed", type=int, default=1)
    p_cha.add_argument("--episodes", type=int, default=20)
    p_cha.add_argument("--duration", type=float, default=6.0,
                       help="simulated seconds of load per episode")
    p_cha.add_argument("--clients", type=int, default=10,
                       help="closed-loop clients per episode")
    p_cha.add_argument("--objects", type=int, default=300)
    p_cha.add_argument("--settle", type=float, default=2.5,
                       help="drain window after the load stops")
    p_cha.set_defaults(func=cmd_chaos)

    p_ovl = sub.add_parser("overload",
                           help="run the flash-crowd + slow-disk overload "
                                "episode and check the graceful-degradation "
                                "properties")
    p_ovl.add_argument("--seed", type=int, default=1)
    p_ovl.add_argument("--duration", type=float, default=6.0,
                       help="simulated seconds of load")
    p_ovl.add_argument("--clients", type=int, default=10,
                       help="steady closed-loop clients (the flash crowd "
                            "multiplies this)")
    p_ovl.add_argument("--multiplier", type=float, default=4.0,
                       help="flash-crowd client multiplier")
    p_ovl.add_argument("--objects", type=int, default=300)
    p_ovl.add_argument("--settle", type=float, default=2.5,
                       help="drain window after the load stops")
    p_ovl.add_argument("--disabled", action="store_true",
                       help="run the same episode with overload control "
                            "off (the unprotected baseline)")
    p_ovl.set_defaults(func=cmd_overload)

    p_trc = sub.add_parser("trace",
                           help="run the overload episode with tracing on "
                                "and inspect the resulting timeline")
    p_trc.add_argument("--seed", type=int, default=1)
    p_trc.add_argument("--duration", type=float, default=6.0,
                       help="simulated seconds of load")
    p_trc.add_argument("--clients", type=int, default=10)
    p_trc.add_argument("--multiplier", type=float, default=4.0,
                       help="flash-crowd client multiplier")
    p_trc.add_argument("--objects", type=int, default=300)
    p_trc.add_argument("--settle", type=float, default=2.5)
    p_trc.add_argument("--request", type=int, default=None,
                       help="waterfall this trace id (default: the trace "
                            "with the most events)")
    p_trc.add_argument("--kind", default=None,
                       help="list raw events of this kind (e.g. breaker, "
                            "shed) instead of the summary")
    p_trc.add_argument("--node", default=None,
                       help="list raw events for this node instead of the "
                            "summary")
    p_trc.add_argument("--jsonl", default=None,
                       help="write the full trace to this JSONL file")
    p_trc.add_argument("--chrome", default=None,
                       help="write a Chrome trace-event file (load in "
                            "chrome://tracing or Perfetto)")
    p_trc.set_defaults(func=cmd_trace)

    def episode_opts(p):
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--duration", type=float, default=6.0,
                       help="simulated seconds of load")
        p.add_argument("--clients", type=int, default=10)
        p.add_argument("--multiplier", type=float, default=4.0,
                       help="flash-crowd client multiplier")
        p.add_argument("--objects", type=int, default=300)
        p.add_argument("--settle", type=float, default=2.5)
        p.add_argument("--window", type=float, default=0.5,
                       help="telemetry window length (sim seconds)")

    p_tel = sub.add_parser("telemetry",
                           help="run the overload episode with windowed "
                                "telemetry sampling and export the series")
    episode_opts(p_tel)
    p_tel.add_argument("--jsonl", default=None,
                       help="write one JSON object per window (plus a "
                            "summary record) to this file")
    p_tel.add_argument("--prom", default=None,
                       help="write Prometheus text exposition format "
                            "to this file")
    p_tel.add_argument("--per-window", action="store_true",
                       help="also print the per-window dump when writing "
                            "export files")
    p_tel.add_argument("--host", action="store_true",
                       help="include host RSS readings in the JSONL "
                            "(breaks byte-determinism across machines)")
    p_tel.set_defaults(func=cmd_telemetry)

    p_top = sub.add_parser("top",
                           help="telemetry dashboard for the overload "
                                "episode: totals, gauges, scheduler "
                                "introspection, SLO verdicts")
    episode_opts(p_top)
    p_top.add_argument("--watch", action="store_true",
                       help="print the per-window dump above the "
                            "dashboard (a --watch-style timeline)")
    p_top.set_defaults(func=cmd_top)

    p_bch = sub.add_parser("bench",
                           help="benchmark the kernel fast path against "
                                "the segment-accurate path")
    p_bch.add_argument("--scale", choices=("quick", "default", "full"),
                       default="default")
    p_bch.add_argument("--stages", default="all",
                       help="comma-separated stage names (default: all); "
                            "see repro.experiments.bench.BENCH_STAGES")
    p_bch.add_argument("--seed", type=int, default=42)
    p_bch.add_argument("--output", default="BENCH_kernel.json",
                       help="where to write the results JSON")
    p_bch.add_argument("--profile", default=None, metavar="PSTATS",
                       help="re-run the slowest stage on the fast path "
                            "under cProfile and dump pstats here")
    p_bch.add_argument("--smoke", action="store_true",
                       help="equivalence-only verdict: exit 0 when every "
                            "stage is byte-identical, ignoring the "
                            "wall-clock speedup target (CI hosts are "
                            "slow and noisy)")
    p_bch.set_defaults(func=cmd_bench)

    p_chk = sub.add_parser("check",
                           help="determinism lint + state-machine check + "
                                "runtime invariants + deep gate/leak/"
                                "stale-state analysis")
    p_chk.add_argument("--pass", dest="passes",
                       choices=("determinism", "state-machine",
                                "invariants", "deep", "all"),
                       default="all")
    p_chk.add_argument("--deep", action="store_true",
                       help="shorthand for --pass deep (the whole-program "
                            "gate/leak/stale-state analyzer)")
    p_chk.add_argument("--baseline", default=None,
                       help="baseline file of accepted deep findings")
    p_chk.add_argument("--format", choices=("text", "jsonl"),
                       default="text")
    p_chk.add_argument("--smoke-duration", type=float, default=None)
    p_chk.set_defaults(func=cmd_check)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
