"""The paper's contribution: content-aware routing, placement, management
hooks, load balancing, and distributor fault tolerance."""

from .conn_pool import ConnectionPool, PoolManager, PooledConnection
from .distributor import ContentAwareDistributor
from .failover import DistributorLease, FrontendDown, HaDistributorPair
from .frontend import Frontend, FrontendCosts, RequestOutcome
from .l4router import L4Router, l4_costs
from .lard import LardRouter
from .loadbalance import (AutoReplicator, LoadAccountant, LoadAwareReplica,
                          RebalanceAction, ReplicationActuator)
from .mapping_table import (MappingEntry, MappingError, MappingState,
                            MappingTable)
from .overload import (AdmissionController, BreakerBoard, CircuitBreaker,
                       OverloadConfig, OverloadControl, RequestTimeout,
                       RetryBudget)
from .placement import (PlacementPlan, apply_plan, full_replication,
                        partial_replication, partition_by_priority,
                        partition_by_type, shared_nfs)
from .policies import (LeastConnections, LeastLoadedReplica, Policy,
                       RandomChoice, RoundRobin, RoutingView,
                       WeightedLeastConnection)
from .redirector import HttpRedirector, redirect_costs
from .splicer import PoolLeg, SplicingDistributor
from .url_table import UrlRecord, UrlTable, UrlTableError

__all__ = [
    "UrlTable", "UrlRecord", "UrlTableError",
    "MappingTable", "MappingEntry", "MappingState", "MappingError",
    "ConnectionPool", "PooledConnection", "PoolManager",
    "Policy", "RoutingView", "WeightedLeastConnection", "LeastConnections",
    "RoundRobin", "RandomChoice", "LeastLoadedReplica",
    "Frontend", "FrontendCosts", "RequestOutcome",
    "ContentAwareDistributor", "L4Router", "l4_costs", "LardRouter",
    "LoadAwareReplica", "HttpRedirector", "redirect_costs",
    "PlacementPlan", "full_replication", "shared_nfs", "partition_by_type",
    "partition_by_priority", "partial_replication", "apply_plan",
    "LoadAccountant", "AutoReplicator", "RebalanceAction",
    "ReplicationActuator",
    "FrontendDown", "HaDistributorPair", "DistributorLease",
    "SplicingDistributor", "PoolLeg",
    "OverloadConfig", "OverloadControl", "AdmissionController",
    "CircuitBreaker", "BreakerBoard", "RetryBudget", "RequestTimeout",
]
