"""The content-blind TCP connection router (the paper's baseline).

§5.3: configurations 1 and 2 are "front-ended by a TCP connection router
(performs Layer-4 routing), which is the implementation in our previous
work [2].  In the TCP connection router, we implemented 'Weight Least
Connection' mechanism for load distribution."

A layer-4 router picks the backend from the TCP SYN alone -- before the
HTTP request exists -- so it cannot see *what* is being asked for.  It
therefore needs every backend to be able to serve every document (full
replication or a shared NFS volume).  The backend resolves the URL against
its own filesystem; the router only forwards bytes.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..cluster import BackendServer, NodeSpec
from ..content import ContentItem
from ..net import HttpRequest, Lan
from ..sim import Simulator
from .frontend import Frontend, FrontendCosts
from .overload import OverloadConfig
from .policies import Policy, WeightedLeastConnection

__all__ = ["L4Router", "l4_costs"]


def l4_costs() -> FrontendCosts:
    """L4 routing is cheaper per request: no HTTP parse, no URL lookup."""
    return FrontendCosts(conn_setup_cpu=90e-6, http_parse_cpu=0.0,
                         lookup_cache_hit_cpu=0.0, lookup_per_level_cpu=0.0,
                         relay_cpu_per_kb=9e-6, teardown_cpu=40e-6)


class L4Router(Frontend):
    """Weighted-least-connection layer-4 front end."""

    def __init__(self, sim: Simulator, lan: Lan, spec: NodeSpec,
                 servers: dict[str, BackendServer],
                 resolver: Callable[[str], Optional[ContentItem]],
                 policy: Optional[Policy] = None,
                 costs: Optional[FrontendCosts] = None,
                 warmup: float = 0.0,
                 overload: Optional[OverloadConfig] = None,
                 tracer=None,
                 name: Optional[str] = None):
        super().__init__(sim, lan, spec, servers,
                         policy=policy or WeightedLeastConnection(),
                         costs=costs or l4_costs(), warmup=warmup,
                         overload=overload, tracer=tracer, name=name)
        self.resolver = resolver

    def route(self, request: HttpRequest) -> Generator:
        """Pick any alive backend; the router never reads the URL.

        The *resolver* stands in for the backend's own filesystem lookup --
        the item must be resolved somewhere, just not at the router, and
        the backend already pays CPU for request handling in ``serve``.
        """
        backend = self.policy.select(sorted(self.servers), self.view)
        if backend is None:
            self.metrics.counter("route/no-backend-alive").increment()
            return None, None
        item = self.resolver(request.url)
        return backend, item
        yield  # pragma: no cover -- L4 routing does no simulated work here
