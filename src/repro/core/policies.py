"""Backend-selection policies for the front ends.

Two policy families:

* **Replica policies** pick among the nodes that *hold the requested
  document* -- used by the content-aware distributor when content is
  replicated on several nodes.
* **Server policies** pick among *all* alive nodes -- used by the
  content-blind layer-4 router.  The paper's baseline is "Weighted Least
  Connection" (§5.3: "In the TCP connection router, we implemented 'Weight
  Least Connection' mechanism for load distribution").

Both families see a :class:`RoutingView`: per-node live connection counts,
static capacity weights, and liveness.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

from ..sim import RngStream

__all__ = ["RoutingView", "Policy", "WeightedLeastConnection",
           "LeastConnections", "RoundRobin", "RandomChoice",
           "LeastLoadedReplica"]


class RoutingView:
    """What a policy may observe about the backends."""

    def __init__(self, weights: dict[str, float]):
        if not weights:
            raise ValueError("need at least one backend")
        for node, w in weights.items():
            if w <= 0:
                raise ValueError(f"weight for {node} must be positive")
        self.weights = dict(weights)
        self.active: dict[str, int] = {n: 0 for n in weights}
        self.alive: dict[str, bool] = {n: True for n in weights}
        self.dispatched: dict[str, int] = {n: 0 for n in weights}

    def nodes(self) -> list[str]:
        return list(self.weights)

    def alive_nodes(self) -> list[str]:
        return [n for n, up in self.alive.items() if up]

    def connection_started(self, node: str) -> None:
        self.active[node] += 1
        self.dispatched[node] += 1

    def connection_finished(self, node: str) -> None:
        if self.active[node] <= 0:
            raise ValueError(f"no active connections on {node}")
        self.active[node] -= 1

    def mark_down(self, node: str) -> None:
        self.alive[node] = False

    def mark_up(self, node: str) -> None:
        self.alive[node] = True


class Policy(abc.ABC):
    """Chooses one node from a candidate list."""

    @abc.abstractmethod
    def select(self, candidates: Sequence[str],
               view: RoutingView) -> Optional[str]:
        """Return the chosen node, or None if no candidate is usable."""

    @staticmethod
    def _usable(candidates: Sequence[str], view: RoutingView) -> list[str]:
        return [c for c in candidates if view.alive.get(c, False)]


class WeightedLeastConnection(Policy):
    """The paper's L4 baseline: fewest active connections per unit weight."""

    def select(self, candidates, view):
        usable = self._usable(candidates, view)
        if not usable:
            return None
        return min(usable,
                   key=lambda n: ((view.active[n] + 1) / view.weights[n],
                                  n))


class LeastConnections(Policy):
    """Unweighted least-connections (ablation: ignores heterogeneity)."""

    def select(self, candidates, view):
        usable = self._usable(candidates, view)
        if not usable:
            return None
        return min(usable, key=lambda n: (view.active[n], n))


class RoundRobin(Policy):
    """Cycle through candidates in order."""

    def __init__(self):
        self._next = 0

    def select(self, candidates, view):
        usable = self._usable(candidates, view)
        if not usable:
            return None
        choice = usable[self._next % len(usable)]
        self._next += 1
        return choice


class RandomChoice(Policy):
    """Uniform random choice (ablation baseline)."""

    def __init__(self, rng: Optional[RngStream] = None):
        self._rng = rng or RngStream(0, "policy/random")

    def select(self, candidates, view):
        usable = self._usable(candidates, view)
        if not usable:
            return None
        return usable[self._rng.choice(range(len(usable)))]


class LeastLoadedReplica(WeightedLeastConnection):
    """Replica selection at the content-aware distributor: weighted least
    connections *restricted to the replica set* -- the distributor knows the
    locations from the URL table and balances across them."""
