"""Backend-selection policies for the front ends.

Two policy families:

* **Replica policies** pick among the nodes that *hold the requested
  document* -- used by the content-aware distributor when content is
  replicated on several nodes.
* **Server policies** pick among *all* alive nodes -- used by the
  content-blind layer-4 router.  The paper's baseline is "Weighted Least
  Connection" (§5.3: "In the TCP connection router, we implemented 'Weight
  Least Connection' mechanism for load distribution").

Both families see a :class:`RoutingView`: per-node live connection counts,
static capacity weights, and liveness.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional, Sequence

from ..sim import RngStream

__all__ = ["RoutingView", "Policy", "WeightedLeastConnection",
           "LeastConnections", "RoundRobin", "RandomChoice",
           "LeastLoadedReplica"]


class RoutingView:
    """What a policy may observe about the backends."""

    def __init__(self, weights: dict[str, float]):
        if not weights:
            raise ValueError("need at least one backend")
        for node, w in weights.items():
            if w <= 0:
                raise ValueError(f"weight for {node} must be positive")
        self.weights = dict(weights)
        self.active: dict[str, int] = {n: 0 for n in weights}
        self.alive: dict[str, bool] = {n: True for n in weights}
        self.dispatched: dict[str, int] = {n: 0 for n in weights}
        #: optional health gate (circuit breakers) consulted on top of
        #: liveness; ``None`` preserves the plain alive-only behaviour
        self.gate: Optional[Callable[[str], bool]] = None
        # slow-start reintroduction (repro.core.overload): a node marked up
        # ramps from a fraction of its weight back to full weight
        self._clock: Optional[Callable[[], float]] = None
        self._slow_start_window = 0.0
        self._slow_start_fraction = 1.0
        self._ramps: dict[str, float] = {}

    def nodes(self) -> list[str]:
        return list(self.weights)

    def alive_nodes(self) -> list[str]:
        return [n for n, up in self.alive.items() if up]

    def routable(self, node: str) -> bool:
        """Alive *and* admitted by the health gate (if one is wired)."""
        if not self.alive.get(node, False):
            return False
        return self.gate is None or self.gate(node)

    def connection_started(self, node: str) -> None:
        self.active[node] += 1
        self.dispatched[node] += 1

    def connection_finished(self, node: str) -> None:
        if self.active[node] <= 0:
            raise ValueError(f"no active connections on {node}")
        self.active[node] -= 1

    def mark_down(self, node: str) -> None:
        self.alive[node] = False

    def mark_up(self, node: str) -> None:
        self.alive[node] = True
        self.begin_slow_start(node)

    # -- slow-start reintroduction ----------------------------------------
    def configure_slow_start(self, window: float, fraction: float,
                             clock: Callable[[], float]) -> None:
        """Ramp recovered nodes from ``fraction`` x weight to full weight
        over ``window`` seconds of ``clock`` time."""
        if window <= 0:
            raise ValueError("slow-start window must be positive")
        if not 0.0 < fraction <= 1.0:
            raise ValueError("slow-start fraction must be in (0, 1]")
        self._slow_start_window = window
        self._slow_start_fraction = fraction
        self._clock = clock

    def begin_slow_start(self, node: str) -> None:
        """Start (or restart) the reintroduction ramp for ``node``."""
        if self._clock is not None and self._slow_start_window > 0:
            self._ramps[node] = self._clock()

    def effective_weight(self, node: str) -> float:
        """The node's weight, scaled down while its slow-start ramp runs."""
        weight = self.weights[node]
        started = self._ramps.get(node)
        if started is None:
            return weight
        progress = (self._clock() - started) / self._slow_start_window
        if progress >= 1.0:
            del self._ramps[node]
            return weight
        floor = self._slow_start_fraction
        return weight * (floor + (1.0 - floor) * max(0.0, progress))


class Policy(abc.ABC):
    """Chooses one node from a candidate list."""

    @abc.abstractmethod
    def select(self, candidates: Sequence[str],
               view: RoutingView) -> Optional[str]:
        """Return the chosen node, or None if no candidate is usable."""

    @staticmethod
    def _usable(candidates: Sequence[str], view: RoutingView) -> list[str]:
        return [c for c in candidates if view.routable(c)]


class WeightedLeastConnection(Policy):
    """The paper's L4 baseline: fewest active connections per unit weight.

    Uses :meth:`RoutingView.effective_weight`, so a backend in its
    slow-start window looks proportionally smaller and receives a ramped
    share of new connections instead of its full WLC share at once.
    """

    def select(self, candidates, view):
        usable = self._usable(candidates, view)
        if not usable:
            return None
        return min(usable,
                   key=lambda n: ((view.active[n] + 1) /
                                  view.effective_weight(n), n))


class LeastConnections(Policy):
    """Unweighted least-connections (ablation: ignores heterogeneity)."""

    def select(self, candidates, view):
        usable = self._usable(candidates, view)
        if not usable:
            return None
        return min(usable, key=lambda n: (view.active[n], n))


class RoundRobin(Policy):
    """Cycle through candidates in order."""

    def __init__(self):
        self._next = 0

    def select(self, candidates, view):
        usable = self._usable(candidates, view)
        if not usable:
            return None
        choice = usable[self._next % len(usable)]
        self._next += 1
        return choice


class RandomChoice(Policy):
    """Uniform random choice (ablation baseline)."""

    def __init__(self, rng: Optional[RngStream] = None):
        self._rng = rng or RngStream(0, "policy/random")

    def select(self, candidates, view):
        usable = self._usable(candidates, view)
        if not usable:
            return None
        return usable[self._rng.choice(range(len(usable)))]


class LeastLoadedReplica(WeightedLeastConnection):
    """Replica selection at the content-aware distributor: weighted least
    connections *restricted to the replica set* -- the distributor knows the
    locations from the URL table and balances across them."""
