"""Primary/backup fault tolerance for the distributor (§2.3).

"We noticed that the distributor represents a single-point-of-failure in
our system ... We implemented the primary/backup(s) mechanism to achieve
fault tolerance of the distributor.  While the *primary* distributor is
providing service normally, the *backup* distributor remains in a monitor
state, continuing to monitor the primary and replicate the primary's state.
If the primary distributor fails, the backup takes over the job of the
primary and creates its own backup."

Model: the backup probes the primary every heartbeat interval; after
``misses_to_fail`` consecutive missed heartbeats it promotes itself.  On
each successful heartbeat it replicates the primary's URL table (version-
checked, so unchanged tables cost nothing).  Requests submitted while no
distributor is active fail with :class:`FrontendDown` -- clients retry,
which is how the outage window becomes visible in the failover benchmark.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..net import HttpRequest, Nic
from ..sim import Simulator
from .distributor import ContentAwareDistributor
from .frontend import Frontend

__all__ = ["FrontendDown", "HaDistributorPair"]


class FrontendDown(Exception):
    """No distributor is currently able to accept the request."""


class HaDistributorPair:
    """A primary distributor with a hot backup."""

    def __init__(self, sim: Simulator,
                 primary: Frontend,
                 backup: Frontend,
                 heartbeat_interval: float = 0.25,
                 misses_to_fail: int = 3):
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if misses_to_fail < 1:
            raise ValueError("misses_to_fail must be >= 1")
        self.sim = sim
        self.primary = primary
        self.backup = backup
        self.heartbeat_interval = heartbeat_interval
        self.misses_to_fail = misses_to_fail
        self.active = primary
        self.failed_over = False
        self.failover_at: Optional[float] = None
        self.heartbeats = 0
        self.state_syncs = 0
        self._monitor = sim.process(self._monitor_loop(), name="ha-monitor")

    def stop(self) -> None:
        """Stop the monitor loop (end of experiment)."""
        if self._monitor.is_alive:
            self._monitor.interrupt("stopped")

    # -- the backup's monitor state ---------------------------------------
    def _monitor_loop(self) -> Generator:
        missed = 0
        while not self.failed_over:
            yield self.sim.timeout(self.heartbeat_interval)
            self.heartbeats += 1
            if self.primary.alive:
                missed = 0
                self._replicate_state()
            else:
                missed += 1
                if missed >= self.misses_to_fail:
                    self._take_over()

    def _replicate_state(self) -> None:
        """Copy primary state to the backup (URL table, version-gated)."""
        if (isinstance(self.primary, ContentAwareDistributor) and
                isinstance(self.backup, ContentAwareDistributor)):
            if self.backup.url_table.sync_from(self.primary.url_table):
                self.state_syncs += 1

    def _take_over(self) -> None:
        self.failed_over = True
        self.failover_at = self.sim.now
        self.backup.recover()
        self.active = self.backup

    # -- client-facing API ---------------------------------------------------
    def submit(self, request: HttpRequest, client_nic: Nic) -> Generator:
        """Route a request to whichever distributor is active.

        Raises :class:`FrontendDown` during the outage window (primary
        dead, backup not yet promoted).
        """
        if not self.active.alive:
            raise FrontendDown(
                f"active distributor {self.active.name} is down")
        return self.active.submit(request, client_nic)

    @property
    def outage_duration(self) -> Optional[float]:
        """Length of the window with no active distributor, if known.

        Meaningful only after a failover; measured from the crash (the
        primary stops answering) to the backup's promotion.
        """
        if self.failover_at is None:
            return None
        return self.misses_to_fail * self.heartbeat_interval
