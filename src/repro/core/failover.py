"""Primary/backup fault tolerance for the distributor (§2.3).

"We noticed that the distributor represents a single-point-of-failure in
our system ... We implemented the primary/backup(s) mechanism to achieve
fault tolerance of the distributor.  While the *primary* distributor is
providing service normally, the *backup* distributor remains in a monitor
state, continuing to monitor the primary and replicate the primary's state.
If the primary distributor fails, the backup takes over the job of the
primary and creates its own backup."

Model: the backup probes the primary every heartbeat interval; after
``misses_to_fail`` consecutive missed heartbeats it promotes itself.  On
each successful heartbeat it replicates the primary's URL table (version-
checked, so unchanged tables cost nothing).  Requests submitted while no
distributor is active wait out the takeover window with a bounded
exponential backoff (the default budget covers the worst-case detection
window); only when the budget is exhausted do they fail with
:class:`FrontendDown`.  Constructing the pair with ``retry_attempts=0``
restores the raw fail-fast behaviour the failover benchmark measures.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..net import HttpRequest, Nic
from ..sim import Simulator
from .distributor import ContentAwareDistributor
from .frontend import Frontend
from .overload import RetryBudget

__all__ = ["DistributorLease", "FrontendDown", "HaDistributorPair"]


class FrontendDown(Exception):
    """No distributor is currently able to accept the request."""


class DistributorLease:
    """A time-bound claim on the distributor role.

    The primary holds the lease; the backup renews it on every healthy
    heartbeat and may only promote itself once the lease has *expired*.
    This closes the split-brain window of the raw missed-heartbeat rule:
    a slow-but-alive primary keeps its lease refreshed, so the backup
    waits it out instead of promoting a second authority.  With
    durability enabled, lease expiry is also the signal that the
    recovered WAL state -- not a from-scratch table -- is the one the
    standby must take over.
    """

    def __init__(self, sim: Simulator, term: float = 1.0):
        if term <= 0:
            raise ValueError("lease term must be positive")
        self.sim = sim
        self.term = term
        self.expires_at = sim.now + term
        self.renewals = 0

    def renew(self) -> None:
        """Extend the lease for one more term from now."""
        self.expires_at = self.sim.now + self.term
        self.renewals += 1

    @property
    def expired(self) -> bool:
        return self.sim.now >= self.expires_at

    @property
    def remaining(self) -> float:
        return max(0.0, self.expires_at - self.sim.now)


class HaDistributorPair:
    """A primary distributor with a hot backup."""

    def __init__(self, sim: Simulator,
                 primary: Frontend,
                 backup: Frontend,
                 heartbeat_interval: float = 0.25,
                 misses_to_fail: int = 3,
                 retry_attempts: int = 4,
                 retry_backoff: float = 0.1,
                 retry_budget: Optional[RetryBudget] = None,
                 on_failover: Optional[
                     Callable[["HaDistributorPair"], None]] = None,
                 lease: Optional[DistributorLease] = None,
                 recover_state: Optional[Callable[[], None]] = None,
                 tracer=None):
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if misses_to_fail < 1:
            raise ValueError("misses_to_fail must be >= 1")
        if retry_attempts < 0:
            raise ValueError("retry_attempts must be >= 0")
        if retry_attempts and retry_backoff <= 0:
            raise ValueError("retry_backoff must be positive")
        self.sim = sim
        self.primary = primary
        self.backup = backup
        self.heartbeat_interval = heartbeat_interval
        self.misses_to_fail = misses_to_fail
        self.retry_attempts = retry_attempts
        self.retry_backoff = retry_backoff
        #: optional cap on retry volume (repro.core.overload): when the
        #: budget is exhausted, outage-window waits fail fast instead of
        #: piling a retry storm on top of the takeover
        self.retry_budget = retry_budget
        self.budget_denied = 0
        self.on_failover = on_failover
        #: lease-based promotion (None = classic missed-heartbeat rule,
        #: byte-identical to the original behaviour)
        self.lease = lease
        #: hook run at takeover, *before* the backup starts serving:
        #: restores the backup's tables from recovered (WAL) state so the
        #: standby takes over from durable truth, not from scratch
        self.recover_state = recover_state
        self.lease_waits = 0
        #: repro.obs tracer; heartbeat/takeover activity becomes "ha" points
        self.tracer = tracer
        self.active = primary
        self.failed_over = False
        self.failover_at: Optional[float] = None
        self.heartbeats = 0
        self.state_syncs = 0
        self.retries = 0
        self._monitor = sim.process(self._monitor_loop(), name="ha-monitor")

    def stop(self) -> None:
        """Stop the monitor loop (end of experiment)."""
        if self._monitor.is_alive:
            self._monitor.interrupt("stopped")

    # -- the backup's monitor state ---------------------------------------
    def _monitor_loop(self) -> Generator:
        missed = 0
        while not self.failed_over:
            yield self.sim.timeout(self.heartbeat_interval)
            self.heartbeats += 1
            if self.primary.alive:
                missed = 0
                if self.lease is not None:
                    self.lease.renew()
                if self.tracer is not None:
                    self.tracer.point("ha", "heartbeat",
                                      node=self.primary.name)
                self._replicate_state()
            else:
                missed += 1
                if self.tracer is not None:
                    self.tracer.point("ha", "heartbeat-miss",
                                      node=self.primary.name, missed=missed)
                if missed >= self.misses_to_fail:
                    if self.lease is not None and not self.lease.expired:
                        # the primary's claim on the role is still live:
                        # promoting now would risk two authorities
                        self.lease_waits += 1
                        if self.tracer is not None:
                            self.tracer.point(
                                "ha", "lease-wait",
                                node=self.primary.name,
                                remaining=self.lease.remaining)
                        continue
                    self._take_over()

    def _replicate_state(self) -> None:
        """Copy primary state to the backup (URL table, version-gated)."""
        if (isinstance(self.primary, ContentAwareDistributor) and
                isinstance(self.backup, ContentAwareDistributor)):
            if self.backup.url_table.sync_from(self.primary.url_table):
                self.state_syncs += 1

    def _take_over(self) -> None:
        self.failed_over = True
        self.failover_at = self.sim.now
        if self.recover_state is not None:
            # rebuild the backup's routing state from durable truth
            # before it serves a single request
            self.recover_state()
        self.backup.recover()
        self.active = self.backup
        reason = ("missed-heartbeats" if self.lease is None
                  else "lease-expired")
        if self.tracer is not None:
            self.tracer.point("ha", "takeover", node=self.backup.name,
                              failed=self.primary.name,
                              reason=reason)
        if self.on_failover is not None:
            self.on_failover(self)

    # -- client-facing API ---------------------------------------------------
    def submit(self, request: HttpRequest, client_nic: Nic) -> Generator:
        """Route a request to whichever distributor is active.

        During the outage window (primary dead, backup not yet promoted)
        the request waits with bounded exponential backoff -- up to
        ``retry_attempts`` sleeps starting at ``retry_backoff`` seconds and
        doubling -- which outlasts the detection window at the default
        settings, so clients ride out a failover without seeing an error.
        Raises :class:`FrontendDown` once the budget is exhausted.
        """
        if self.retry_budget is not None:
            self.retry_budget.on_request()
        delay = self.retry_backoff
        attempts = 0
        while not self.active.alive:
            if attempts >= self.retry_attempts:
                raise FrontendDown(
                    f"active distributor {self.active.name} is down")
            if (self.retry_budget is not None and
                    not self.retry_budget.try_spend()):
                self.budget_denied += 1
                if self.tracer is not None:
                    self.tracer.point("ha", "budget-denied",
                                      node=self.active.name,
                                      reason="retry-budget-exhausted")
                raise FrontendDown(
                    f"active distributor {self.active.name} is down "
                    f"(retry budget exhausted)")
            attempts += 1
            self.retries += 1
            if self.tracer is not None:
                self.tracer.point("ha", "outage-retry",
                                  node=self.active.name, attempt=attempts,
                                  backoff=delay)
            yield self.sim.timeout(delay)
            delay *= 2
        return (yield from self.active.submit(request, client_nic))

    @property
    def outage_duration(self) -> Optional[float]:
        """Length of the window with no active distributor, if known.

        Meaningful only after a failover; measured from the crash (the
        primary stops answering) to the backup's promotion.
        """
        if self.failover_at is None:
            return None
        return self.misses_to_fail * self.heartbeat_interval
