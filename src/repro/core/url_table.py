"""The URL table: the distributor's content-location directory.

§2.2: "Based on the content requested, the distributor consults an internal
data structure called URL table to select the server that is best suited to
this request.  The URL table holds content-related information (e.g.,
location of the document, document sizes, priority, hits, etc.)."

§5.2: "we implemented the URL table as a multi-level hash table, in which
each level corresponds to a level in the content tree. ... we also
implemented a mechanism to cache recently accessed entries, which is a
proven technique for demultiplexing speedup."  At the authors' site scale
(~8 700 objects) the table consumed ~260 KB and lookups averaged 4.32 us.

This module reproduces that structure exactly: a tree of per-directory hash
tables, one level per path segment, with an LRU cache of recently resolved
full URLs in front of it, plus an analytic memory-footprint estimator that
the §5.2 benchmark reports.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Iterator, Optional

from ..content import ContentItem, Priority
from ..net.http import split_path

__all__ = ["UrlRecord", "UrlTable", "UrlTableError"]


class UrlTableError(Exception):
    """Invalid URL-table operation (unknown path, duplicate insert, ...)."""


@dataclasses.dataclass(slots=True)
class UrlRecord:
    """One content entry: everything the distributor needs per document."""

    item: ContentItem
    locations: set[str]
    hits: int = 0

    @property
    def path(self) -> str:
        return self.item.path

    @property
    def size_bytes(self) -> int:
        return self.item.size_bytes

    @property
    def priority(self) -> Priority:
        return self.item.priority


class _Level:
    """One directory level: a hash table over child names."""

    __slots__ = ("children",)

    def __init__(self):
        self.children: dict[str, "_Level | UrlRecord"] = {}


class UrlTable:
    """Multi-level hash table over URL paths with an entry cache."""

    def __init__(self, cache_entries: int = 512):
        if cache_entries < 0:
            raise ValueError("cache_entries must be >= 0")
        self._root = _Level()
        self._count = 0
        self._cache_capacity = cache_entries
        self._cache: OrderedDict[str, UrlRecord] = OrderedDict()
        # instrumentation (what §5.2 measures)
        self.lookups = 0
        self.cache_hits = 0
        self.levels_touched = 0
        #: bumped on every mutation; lets a backup distributor sync cheaply
        self.version = 0

    def __len__(self) -> int:
        return self._count

    def __contains__(self, url: str) -> bool:
        try:
            self._find(split_path(url))
            return True
        except UrlTableError:
            return False

    # -- mutation --------------------------------------------------------
    def insert(self, item: ContentItem, locations: set[str]) -> UrlRecord:
        """Register a document and the nodes holding it."""
        if not locations:
            raise UrlTableError(f"{item.path}: a document needs >=1 location")
        segments = split_path(item.path)
        if not segments:
            raise UrlTableError("cannot insert the root path")
        level = self._root
        for seg in segments[:-1]:
            child = level.children.get(seg)
            if child is None:
                child = _Level()
                level.children[seg] = child
            elif isinstance(child, UrlRecord):
                raise UrlTableError(
                    f"{item.path}: {seg!r} is a document, not a directory")
            level = child
        leaf = segments[-1]
        if leaf in level.children:
            raise UrlTableError(f"duplicate document {item.path}")
        record = UrlRecord(item=item, locations=set(locations))
        level.children[leaf] = record
        self._count += 1
        self.version += 1
        return record

    def remove(self, url: str) -> UrlRecord:
        """Delete a document entry (and prune empty directory levels)."""
        segments = split_path(url)
        if not segments:
            raise UrlTableError("cannot remove the root path")
        trail: list[tuple[_Level, str]] = []
        level = self._root
        for seg in segments[:-1]:
            child = level.children.get(seg)
            if not isinstance(child, _Level):
                raise UrlTableError(f"no such document {url}")
            trail.append((level, seg))
            level = child
        leaf = segments[-1]
        record = level.children.get(leaf)
        if not isinstance(record, UrlRecord):
            raise UrlTableError(f"no such document {url}")
        del level.children[leaf]
        self._count -= 1
        self._cache.pop(url, None)
        # prune now-empty intermediate levels
        for parent, seg in reversed(trail):
            child = parent.children[seg]
            if isinstance(child, _Level) and not child.children:
                del parent.children[seg]
            else:
                break
        self.version += 1
        return record

    def add_location(self, url: str, node: str) -> UrlRecord:
        """Record a new replica (after the controller copies content)."""
        record = self._find(split_path(url))
        record.locations.add(node)
        self.version += 1
        return record

    def remove_location(self, url: str, node: str) -> UrlRecord:
        """Drop a replica; refuses to drop the last copy."""
        record = self._find(split_path(url))
        if node not in record.locations:
            raise UrlTableError(f"{url} has no copy on {node}")
        if len(record.locations) == 1:
            raise UrlTableError(
                f"{url}: refusing to remove the last copy (on {node})")
        record.locations.discard(node)
        self.version += 1
        return record

    # -- lookup ----------------------------------------------------------
    def _find(self, segments: tuple[str, ...]) -> UrlRecord:
        node: "_Level | UrlRecord" = self._root
        for seg in segments:
            if isinstance(node, UrlRecord):
                break
            nxt = node.children.get(seg)
            if nxt is None:
                raise UrlTableError("/" + "/".join(segments))
            node = nxt
        if not isinstance(node, UrlRecord):
            raise UrlTableError("/" + "/".join(segments))
        return node

    def lookup(self, url: str) -> UrlRecord:
        """Resolve a request URL to its record (counting the hit).

        Checks the recently-accessed entry cache first; on a cache miss,
        walks one hash level per path segment and caches the result.
        Raises :class:`UrlTableError` for unknown documents.
        """
        self.lookups += 1
        cached = self._cache.get(url)
        if cached is not None:
            self._cache.move_to_end(url)
            self.cache_hits += 1
            cached.hits += 1
            return cached
        segments = split_path(url)
        self.levels_touched += len(segments)
        record = self._find(segments)
        record.hits += 1
        if self._cache_capacity:
            self._cache[url] = record
            if len(self._cache) > self._cache_capacity:
                self._cache.popitem(last=False)
        return record

    def lookup_cost_levels(self, url: str) -> int:
        """How many hash levels a (cache-miss) lookup of ``url`` touches."""
        return len(split_path(url))

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.lookups if self.lookups else 0.0

    # -- iteration / reporting ---------------------------------------------
    def records(self) -> Iterator[UrlRecord]:
        stack: list[_Level] = [self._root]
        while stack:
            level = stack.pop()
            # deliberately a live generator: callers (top_by_hits, sweep
            # candidates) materialize it immediately and never yield to
            # the simulator mid-iteration
            for child in level.children.values():  # det: allow[yld002]
                if isinstance(child, UrlRecord):
                    yield child
                else:
                    stack.append(child)

    def top_by_hits(self, n: int) -> list[UrlRecord]:
        """The hottest documents (drives auto-replication candidate choice)."""
        return sorted(self.records(), key=lambda r: r.hits, reverse=True)[:n]

    def locations(self, url: str) -> set[str]:
        return set(self._find(split_path(url)).locations)

    def record(self, url: str) -> UrlRecord:
        """Resolve a path *without* counting a hit (management-plane
        reads must not perturb the hit counters §3.3 replication acts
        on)."""
        return self._find(split_path(url))

    def sync_from(self, other: "UrlTable") -> bool:
        """Replicate another table's content into this one (backup state
        replication, §2.3).  Returns True if anything changed; a no-op when
        versions already match, so heartbeat-driven syncs are cheap."""
        if self.version == other.version and len(self) == len(other):
            return False
        self._root = _Level()
        self._count = 0
        self._cache.clear()
        for record in other.records():
            self.insert(record.item, set(record.locations))
        self.version = other.version
        return True

    def memory_footprint_bytes(self) -> int:
        """Estimate of the table's memory use, as a C implementation in the
        kernel would pay it (the paper reports ~260 KB for 8 700 objects,
        i.e. ~30 B/object):

        * per directory level: a small hash header,
        * per child slot: pointer + hashed-name cost,
        * per record: sizes/priority/hits fields plus location list.
        """
        LEVEL_HEADER = 16
        SLOT = 12
        RECORD = 16
        PER_LOCATION = 2
        total = 0
        stack: list[_Level] = [self._root]
        while stack:
            level = stack.pop()
            total += LEVEL_HEADER + SLOT * len(level.children)
            for child in level.children.values():
                if isinstance(child, UrlRecord):
                    total += RECORD + PER_LOCATION * len(child.locations)
                else:
                    stack.append(child)
        return total
