"""Overload control & graceful degradation on the data plane.

The paper's distributor (§2.2) accepts every client connection and binds
it to a pre-forked backend connection; §3.3 reacts to imbalance only by
replicating content.  Under a flash crowd that means unbounded accept
queues, and a sick backend keeps receiving its URL-table share of traffic
until auto-replication catches up.  This module adds the four mechanisms a
production serving stack layers on top of placement (cf. the QoS-aware
replica-management line of work, arXiv:0912.2296):

* **admission control** -- a bounded accept window per front end
  (``max_inflight`` concurrent requests, ``max_queue`` waiting); excess
  requests are shed deterministically with a clean 503 + ``Retry-After``
  instead of queueing forever;
* **circuit breakers** -- per-backend health scored from request timeouts
  and errors observed on the splice path; a tripped backend is removed
  from the routing candidates while the URL table still lists it;
* **retry budgets** -- retries are capped as a fraction of recent request
  volume, so retry storms cannot amplify an overload;
* **slow-start reintroduction** -- a recovered backend re-enters routing
  at a ramped weight (see :meth:`RoutingView.effective_weight`) instead of
  instantly receiving its full weighted-least-connection share.

Everything is driven by the simulation clock and plain counters -- no wall
clock, no global RNG -- so overload behaviour is a pure function of the
seed, byte-identical across ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Callable, Generator, Optional

from ..sim import SimEvent, Simulator

__all__ = ["OverloadConfig", "AdmissionController", "BREAKER_TRANSITIONS",
           "CircuitBreaker", "BreakerBoard", "RetryBudget", "RequestTimeout",
           "OverloadControl"]


class RequestTimeout(Exception):
    """A backend did not produce its response within the request timeout."""

    def __init__(self, node: str, timeout: float):
        super().__init__(f"backend {node} exceeded the {timeout:.3g}s "
                         f"request timeout")
        self.node = node
        self.timeout = timeout


@dataclasses.dataclass(frozen=True)
class OverloadConfig:
    """Tunables for the overload-control subsystem (one per front end)."""

    # -- admission control -------------------------------------------------
    #: concurrent requests past the accept stage
    max_inflight: int = 32
    #: requests allowed to wait for an admission slot; beyond this, shed
    max_queue: int = 16
    #: Retry-After seconds attached to every shed / degraded 503
    retry_after: float = 0.5
    # -- request timeouts / circuit breakers -------------------------------
    #: per-request backend service timeout (0 disables timeouts)
    request_timeout: float = 2.0
    #: consecutive failures that trip a breaker from CLOSED to OPEN
    breaker_failures: int = 4
    #: rolling window of recent outcomes scored per backend
    breaker_window: int = 16
    #: failure fraction over the window that also trips the breaker ...
    breaker_error_rate: float = 0.5
    #: ... once at least this many outcomes are in the window
    breaker_min_samples: int = 8
    #: seconds an OPEN breaker blocks traffic before probing (HALF_OPEN)
    breaker_open_duration: float = 1.0
    #: consecutive probe successes that close a HALF_OPEN breaker
    breaker_probes: int = 2
    #: concurrent probe requests a HALF_OPEN breaker admits
    breaker_probe_inflight: int = 2
    # -- retry budgets -----------------------------------------------------
    #: budget tokens earned per submitted request (retries per request)
    retry_budget_ratio: float = 0.1
    #: tokens available before any traffic has been seen
    retry_budget_initial: float = 4.0
    #: token accumulation cap ("recent volume", not all-time volume)
    retry_budget_cap: float = 32.0
    #: replica-failover attempts per request (each also costs budget)
    max_replica_retries: int = 2
    # -- slow-start reintroduction -----------------------------------------
    #: seconds over which a recovered backend ramps to full weight
    slow_start_window: float = 2.0
    #: fraction of full weight a recovered backend starts at
    slow_start_fraction: float = 0.2

    def __post_init__(self):
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if self.retry_after < 0:
            raise ValueError("retry_after must be >= 0")
        if self.request_timeout < 0:
            raise ValueError("request_timeout must be >= 0")
        if self.breaker_failures < 1:
            raise ValueError("breaker_failures must be >= 1")
        if self.breaker_window < 1:
            raise ValueError("breaker_window must be >= 1")
        if not 0.0 < self.breaker_error_rate <= 1.0:
            raise ValueError("breaker_error_rate must be in (0, 1]")
        if self.breaker_min_samples < 1:
            raise ValueError("breaker_min_samples must be >= 1")
        if self.breaker_open_duration <= 0:
            raise ValueError("breaker_open_duration must be positive")
        if self.breaker_probes < 1:
            raise ValueError("breaker_probes must be >= 1")
        if self.breaker_probe_inflight < 1:
            raise ValueError("breaker_probe_inflight must be >= 1")
        if self.retry_budget_ratio < 0:
            raise ValueError("retry_budget_ratio must be >= 0")
        if self.retry_budget_initial < 0:
            raise ValueError("retry_budget_initial must be >= 0")
        if self.retry_budget_cap < self.retry_budget_initial:
            raise ValueError("retry_budget_cap must be >= initial")
        if self.max_replica_retries < 0:
            raise ValueError("max_replica_retries must be >= 0")
        if self.slow_start_window < 0:
            raise ValueError("slow_start_window must be >= 0")
        if not 0.0 < self.slow_start_fraction <= 1.0:
            raise ValueError("slow_start_fraction must be in (0, 1]")


class AdmissionController:
    """A bounded accept window: at most ``max_inflight`` requests past the
    accept stage, at most ``max_queue`` waiting for a slot, everyone else
    shed immediately.

    Admission happens *before* a mapping-table entry or pooled connection
    exists, so a shed request touches no per-connection state at all --
    there is nothing to leak.  Waiters are granted strictly FIFO when a
    slot frees, which keeps the event order a pure function of the seed.
    """

    def __init__(self, sim: Simulator, config: OverloadConfig):
        self.sim = sim
        self.config = config
        self.submitted = 0
        self.admitted = 0
        self.shed = 0
        self.released = 0
        self.inflight = 0
        self.peak_inflight = 0
        self.peak_queue = 0
        self._waiters: deque[SimEvent] = deque()

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def admit(self) -> Generator:
        """Yield-from generator returning True (admitted) or False (shed)."""
        self.submitted += 1
        if self.inflight < self.config.max_inflight:
            self._grant()
            return True
        if len(self._waiters) >= self.config.max_queue:
            self.shed += 1
            return False
        slot = SimEvent(self.sim)
        self._waiters.append(slot)
        self.peak_queue = max(self.peak_queue, len(self._waiters))
        yield slot
        return True

    def _grant(self) -> None:
        self.admitted += 1
        self.inflight += 1
        self.peak_inflight = max(self.peak_inflight, self.inflight)

    def release(self) -> None:
        """Free one admission slot; hands it to the oldest waiter."""
        if self.inflight <= 0:
            raise ValueError("release without a matching admit")
        self.inflight -= 1
        self.released += 1
        if self._waiters and self.inflight < self.config.max_inflight:
            slot = self._waiters.popleft()
            self._grant()
            slot.succeed()


#: The circuit-breaker state machine.  ``closed`` (the initial state)
#: passes traffic and scores outcomes; ``open`` blocks the backend until
#: the cooldown elapses; ``half-open`` admits a bounded number of probe
#: requests whose outcomes decide between re-closing and re-opening;
#: ``disabled`` is the terminal administrative off-switch (the breaker
#: stops gating traffic permanently).
BREAKER_TRANSITIONS: dict[str, tuple[str, ...]] = {
    "closed": ("open", "disabled"),
    "open": ("half-open", "disabled"),
    "half-open": ("closed", "open", "disabled"),
    "disabled": (),
}


class CircuitBreaker:
    """Per-backend health gate fed by splice-path outcomes.

    Driven entirely by the simulation clock passed in as ``clock`` -- the
    OPEN -> HALF_OPEN transition happens lazily on the first routability
    check past the cooldown, which is deterministic because candidates are
    always iterated in sorted order.
    """

    def __init__(self, node: str, config: OverloadConfig,
                 clock: Callable[[], float],
                 on_transition: Optional[
                     Callable[[str, str, str, str], None]] = None):
        self.node = node
        self.config = config
        self.clock = clock
        self.on_transition = on_transition
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.opened_count = 0
        self.reclosed_count = 0
        self.probe_successes = 0
        self.probes_in_flight = 0
        self.successes = 0
        self.failures = 0
        self._window: deque[bool] = deque(maxlen=config.breaker_window)

    def _shift(self, to: str, reason: str = "") -> None:
        if to not in BREAKER_TRANSITIONS[self.state]:
            raise ValueError(f"breaker {self.node}: illegal transition "
                             f"{self.state} -> {to}")
        origin, self.state = self.state, to
        if self.on_transition is not None:
            self.on_transition(self.node, origin, to, reason)

    # -- the gate the routing view consults --------------------------------
    def routable(self) -> bool:
        if self.state == "closed" or self.state == "disabled":
            return True
        if self.state == "open":
            if (self.opened_at is not None and
                    self.clock() - self.opened_at >=
                    self.config.breaker_open_duration):
                self._shift("half-open", "cooldown-elapsed")
                self.probe_successes = 0
                self.probes_in_flight = 0
            else:
                return False
        return self.probes_in_flight < self.config.breaker_probe_inflight

    def on_dispatch(self) -> None:
        """A request was bound to this backend (probe accounting)."""
        if self.state == "half-open":
            self.probes_in_flight += 1

    # -- outcome scoring ----------------------------------------------------
    def record_success(self) -> None:
        self.successes += 1
        self.consecutive_failures = 0
        self._window.append(True)
        if self.state == "half-open":
            self.probes_in_flight = max(0, self.probes_in_flight - 1)
            self.probe_successes += 1
            if self.probe_successes >= self.config.breaker_probes:
                self._shift("closed", "probes-passed")
                self.reclosed_count += 1
                self.probe_successes = 0
                self.probes_in_flight = 0
                self._window.clear()

    def record_failure(self) -> None:
        self.failures += 1
        self.consecutive_failures += 1
        self._window.append(False)
        if self.state == "half-open":
            self.probes_in_flight = max(0, self.probes_in_flight - 1)
            self._open("probe-failed")
        elif self.state == "closed":
            reason = self._trip_reason()
            if reason:
                self._open(reason)

    def _open(self, reason: str = "") -> None:
        self._shift("open", reason)
        self.opened_at = self.clock()
        self.opened_count += 1
        self.probe_successes = 0
        self.probes_in_flight = 0

    def _should_trip(self) -> bool:
        return bool(self._trip_reason())

    def _trip_reason(self) -> str:
        """Why a CLOSED breaker should open now ("" = it should not)."""
        if self.consecutive_failures >= self.config.breaker_failures:
            return "consecutive-failures"
        if len(self._window) >= self.config.breaker_min_samples:
            bad = sum(1 for ok in self._window if not ok)
            if bad / len(self._window) >= self.config.breaker_error_rate:
                return "error-rate"
        return ""

    def disable(self) -> None:
        """Administrative off-switch: stop gating this backend forever."""
        if self.state != "disabled":
            self._shift("disabled", "administrative")


class BreakerBoard:
    """All per-backend breakers for one front end, created lazily.

    Also the sink for the management plane's health signal: a controller
    dispatch timeout (:class:`repro.mgmt.Controller`) counts as a data-
    plane failure via :meth:`record_mgmt_timeout`, so the two planes agree
    on which node is sick.
    """

    def __init__(self, config: OverloadConfig, clock: Callable[[], float],
                 on_close: Optional[Callable[[str], None]] = None,
                 tracer=None):
        self.config = config
        self.clock = clock
        self.on_close = on_close
        #: repro.obs tracer; every transition becomes a "breaker" point
        #: event carrying the machine-readable reason
        self.tracer = tracer
        self._breakers: dict[str, CircuitBreaker] = {}
        #: every transition, for audits: (time, node, from, to, reason)
        self.transitions: list[tuple[float, str, str, str, str]] = []
        self.mgmt_timeouts: dict[str, int] = {}

    def breaker(self, node: str) -> CircuitBreaker:
        if node not in self._breakers:
            self._breakers[node] = CircuitBreaker(
                node, self.config, self.clock,
                on_transition=self._record_transition)
        return self._breakers[node]

    def _record_transition(self, node: str, origin: str, to: str,
                           reason: str) -> None:
        self.transitions.append((self.clock(), node, origin, to, reason))
        if self.tracer is not None:
            self.tracer.point("breaker", f"{origin}->{to}", node=node,
                              reason=reason)
        if to == "closed" and self.on_close is not None:
            self.on_close(node)

    def routable(self, node: str) -> bool:
        return self.breaker(node).routable()

    def on_dispatch(self, node: str) -> None:
        self.breaker(node).on_dispatch()

    def record_success(self, node: str) -> None:
        self.breaker(node).record_success()

    def record_failure(self, node: str) -> None:
        self.breaker(node).record_failure()

    def record_mgmt_timeout(self, node: str) -> None:
        """Management-plane health signal (controller dispatch timeout)."""
        self.mgmt_timeouts[node] = self.mgmt_timeouts.get(node, 0) + 1
        self.breaker(node).record_failure()

    def state_of(self, node: str) -> str:
        """A breaker's state *without* creating it (absent = "closed").

        Telemetry probes sample through here: a read-only observer must
        never materialize a breaker, or enabling telemetry would change
        :meth:`snapshot` and the lazy-creation event flow.
        """
        b = self._breakers.get(node)
        return b.state if b is not None else "closed"

    def open_count(self) -> int:
        """How many breakers are currently open or probing (non-creating)."""
        return sum(1 for b in self._breakers.values()
                   if b.state in ("open", "half-open"))

    def all_closed(self) -> bool:
        return all(b.state in ("closed", "disabled")
                   for b in self._breakers.values())

    def open_nodes(self) -> list[str]:
        return sorted(n for n, b in self._breakers.items()
                      if b.state in ("open", "half-open"))

    def opened_total(self) -> int:
        return sum(b.opened_count for b in self._breakers.values())

    def reclosed_total(self) -> int:
        return sum(b.reclosed_count for b in self._breakers.values())

    def snapshot(self) -> dict:
        """JSON-friendly per-node breaker counters (sorted, deterministic)."""
        return {node: {"state": b.state, "opened": b.opened_count,
                       "reclosed": b.reclosed_count,
                       "successes": b.successes, "failures": b.failures}
                for node, b in sorted(self._breakers.items())}


class RetryBudget:
    """A deterministic token bucket capping retries by request volume.

    Every submitted request deposits ``ratio`` tokens (clamped to ``cap``,
    so the budget tracks *recent* volume); every retry spends one.  When
    the bucket is empty the retry is denied and the caller fails fast --
    retries can never amplify an overload beyond ``ratio`` of traffic.
    """

    def __init__(self, ratio: float = 0.1, initial: float = 4.0,
                 cap: float = 32.0):
        if ratio < 0 or initial < 0 or cap < initial:
            raise ValueError("need ratio >= 0 and cap >= initial >= 0")
        self.ratio = ratio
        self.cap = cap
        self.tokens = initial
        self.requests = 0
        self.granted = 0
        self.denied = 0

    def on_request(self) -> None:
        self.requests += 1
        self.tokens = min(self.cap, self.tokens + self.ratio)

    def try_spend(self, cost: float = 1.0) -> bool:
        if self.tokens >= cost:
            self.tokens -= cost
            self.granted += 1
            return True
        self.denied += 1
        return False


class OverloadControl:
    """The composite a front end owns: admission + breakers + retry budget,
    wired into the front end's :class:`~repro.core.policies.RoutingView`
    (breaker gate + slow-start ramp)."""

    def __init__(self, sim: Simulator, config: OverloadConfig, view,
                 tracer=None):
        self.sim = sim
        self.config = config
        self.admission = AdmissionController(sim, config)
        # a backend whose breaker re-closes ramps back in just like one the
        # monitor marks up: slow-start covers both recovery paths
        self.breakers = BreakerBoard(config, clock=lambda: sim.now,
                                     on_close=view.begin_slow_start,
                                     tracer=tracer)
        self.retry_budget = RetryBudget(ratio=config.retry_budget_ratio,
                                        initial=config.retry_budget_initial,
                                        cap=config.retry_budget_cap)
        view.gate = self.breakers.routable
        if config.slow_start_window > 0:
            view.configure_slow_start(config.slow_start_window,
                                      config.slow_start_fraction,
                                      clock=lambda: sim.now)
