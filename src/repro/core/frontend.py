"""Request-level front-end machinery shared by both routers.

The packet-level splicing mechanism lives in :mod:`repro.core.splicer` and
is exercised by its own tests.  For the throughput experiments (Figures
2-4) we drive requests at *request granularity*: the front end still pays
CPU for connection handling/lookup/relaying, still moves every byte of the
request and response through its own NIC in both directions (§2.2: packets
are relayed between the user connection and the pre-forked connection), and
still tracks every client connection in the mapping table -- but a request
is one simulation activity instead of ~30 packet events, which keeps
9-server x 120-client sweeps tractable.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable, Generator, Optional

from ..cluster import BackendServer, Cpu, NodeSpec
from ..content import ContentItem, ContentType
from ..net import HttpRequest, HttpResponse, Lan, Nic
from ..net.packet import Address
from ..sim import (Counter, Histogram, Interrupt, MetricSet, Simulator,
                   ThroughputMeter)
from .mapping_table import MappingState, MappingTable
from .overload import OverloadConfig, OverloadControl, RequestTimeout
from .policies import Policy, RoutingView, WeightedLeastConnection

__all__ = ["FrontendCosts", "Frontend", "RequestOutcome"]

_client_ports = itertools.count(40000)


@dataclasses.dataclass(frozen=True)
class FrontendCosts:
    """Front-end CPU costs (seconds on the front end's own CPU clock).

    The content-aware distributor pays the handshake + HTTP parse + URL
    lookup; the L4 router only inspects the TCP header.  §5.2 reports the
    URL-table lookup averaging 4.32 us at 8 700 objects -- three orders of
    magnitude below the per-request handling cost, i.e. "insignificant".
    """

    conn_setup_cpu: float = 120e-6        # SYN handling + mapping entry
    http_parse_cpu: float = 80e-6         # read + parse the request (CA only)
    lookup_cache_hit_cpu: float = 1.5e-6  # URL-table entry-cache hit
    lookup_per_level_cpu: float = 1.8e-6  # per hash level on a cache miss
    relay_cpu_per_kb: float = 9e-6        # header-rewrite forwarding per KB
    teardown_cpu: float = 40e-6           # FIN handling, entry deletion


@dataclasses.dataclass(slots=True)
class RequestOutcome:
    """What the client observes for one request."""

    response: Optional[HttpResponse]
    latency: float
    backend: Optional[str]
    #: True when the front end refused or degraded the request (503)
    shed: bool = False
    #: Retry-After seconds the client should honour before retrying
    retry_after: float = 0.0


class Frontend:
    """Base class: owns the NIC/CPU, the mapping table, and the metrics."""

    def __init__(self, sim: Simulator, lan: Lan, spec: NodeSpec,
                 servers: dict[str, BackendServer],
                 policy: Optional[Policy] = None,
                 costs: FrontendCosts = FrontendCosts(),
                 warmup: float = 0.0,
                 client_latency: float = 0.0,
                 overload: Optional[OverloadConfig] = None,
                 tracer=None,
                 name: Optional[str] = None):
        if not servers:
            raise ValueError("a front end needs at least one backend")
        if client_latency < 0:
            raise ValueError("client_latency must be non-negative")
        self.sim = sim
        self.lan = lan
        self.spec = spec
        #: extra one-way delay between clients and the cluster.  The §5.1
        #: testbed has LAN clients (0); real deployments serve WAN clients,
        #: where every extra client round trip (§2.1's complaint about
        #: HTTP redirection) costs tens of milliseconds.
        self.client_latency = client_latency
        self.name = name or spec.name
        self.servers = dict(servers)
        self.policy = policy or WeightedLeastConnection()
        self.costs = costs
        self.nic = Nic(sim, spec.nic_mbps, name=f"{self.name}.nic")
        self.cpu = Cpu(sim, spec.cpu_mhz, name=self.name)
        self.view = RoutingView(
            {nm: srv.spec.weight for nm, srv in servers.items()})
        self.mapping = MappingTable()
        self.metrics = MetricSet()
        self.meter = ThroughputMeter(warmup=warmup, name=self.name)
        self.class_meters: dict[ContentType, ThroughputMeter] = {
            t: ThroughputMeter(warmup=warmup, name=t.value)
            for t in ContentType}
        self.alive = True
        self.on_response: Optional[
            Callable[[Optional[ContentItem], HttpResponse], None]] = None
        self._vip_isns = itertools.count(7_000_000, 104729)
        #: raw concurrency accounting (always on, no events): without
        #: admission control this is the unbounded queue the overload
        #: regression test measures
        self.inflight = 0
        self.peak_inflight = 0
        #: repro.obs tracer; None = tracing off, and -- exactly like
        #: ``overload=None`` -- a byte-identical event sequence to the
        #: uninstrumented front end (the tracer is purely passive)
        self.tracer = tracer
        if tracer is not None:
            self.mapping.on_transition = self._trace_splice
        #: the overload-control subsystem; None = the paper's unprotected
        #: data plane (and a byte-identical event sequence to it)
        self.overload: Optional[OverloadControl] = None
        if overload is not None:
            self.overload = OverloadControl(sim, overload, self.view,
                                            tracer=tracer)
        # Interned per-request collectors: _finish runs once per request,
        # and rebuilding the f-string keys + registry probes dominated its
        # cost.  Entries are created lazily through the registry on first
        # use, so the snapshot key set is exactly what it always was.
        self._status_counters: dict[int, Counter] = {}
        self._latency_hists: dict[ContentType, Histogram] = {}
        self._latency_all: Optional[Histogram] = None

    def _trace_splice(self, entry, old: MappingState,
                      new: MappingState) -> None:
        """Mapping-table observation hook: one point per state change."""
        self.tracer.point("splice", f"{old.value}->{new.value}",
                          trace_id=entry.trace_id or None, node=self.name)

    # -- hooks subclasses implement ------------------------------------------
    def route(self, request: HttpRequest) -> Generator:
        """Yield-from generator returning (backend_name, item | None)."""
        raise NotImplementedError

    def release_backend(self, backend: str, token) -> None:
        """Return any per-request backend resource (e.g. pooled conn)."""

    def acquire_backend(self, backend: str) -> Generator:
        """Yield-from generator returning an opaque token (or None)."""
        return None
        yield  # pragma: no cover

    # -- the request path ---------------------------------------------------
    def submit(self, request: HttpRequest, client_nic: Nic,
               client_addr: Optional[Address] = None) -> Generator:
        """Serve one client request end to end; returns RequestOutcome.

        Models: client handshake + request transfer in, routing decision,
        backend binding, request relay, backend service, response relay
        back out, teardown.  All bytes cross this front end's NIC.

        With overload control wired (``self.overload``), the request first
        passes admission (bounded inflight + bounded queue, deterministic
        shed beyond that) and failures on the splice path feed the
        per-backend circuit breakers.
        """
        if not self.alive:
            raise RuntimeError(f"front end {self.name} is down")
        started = self.sim.now
        tracer = self.tracer
        span = None
        if tracer is not None:
            request.trace_id = tracer.new_trace()
            span = tracer.begin("request", request.url,
                                trace_id=request.trace_id, node=self.name,
                                client=request.client_id,
                                request_id=request.request_id)
        self.inflight += 1
        if self.inflight > self.peak_inflight:
            self.peak_inflight = self.inflight
        try:
            ctl = self.overload
            if ctl is None:
                return (yield from self._serve_spliced(request, client_nic,
                                                       client_addr, started,
                                                       span))
            ctl.retry_budget.on_request()
            admitted = yield from ctl.admission.admit()
            if not admitted:
                # shed at the accept stage: no mapping entry, no pooled
                # connection -- nothing allocated, nothing to leak
                return self._shed(request, started, "overload/shed",
                                  span=span, reason="admission-queue-full")
            try:
                if tracer is not None:
                    tracer.point("admission", "admitted",
                                 trace_id=span.trace_id, node=self.name)
                return (yield from self._serve_spliced(request, client_nic,
                                                       client_addr, started,
                                                       span))
            finally:
                ctl.admission.release()
        finally:
            self.inflight -= 1
            # RST / interrupt path: the request span must not stay open
            if span is not None and span.end is None:
                tracer.end(span, status="error")

    def _serve_spliced(self, request: HttpRequest, client_nic: Nic,
                       client_addr: Optional[Address],
                       started: float, span=None) -> Generator:
        """The §2.2 splice: bind, relay, serve, relay back, tear down."""
        tracer = self.tracer
        tid = span.trace_id if span is not None else None
        client = client_addr or Address("client", next(_client_ports))
        entry = self.mapping.create(client, started,
                                    vip_isn=next(self._vip_isns))
        backend: Optional[str] = None
        token = None
        attempts = 0
        stage = None
        try:
            # from here on the entry is covered by the RST handler below:
            # a raising transition hook must not strand it in the table
            if tid is not None:
                entry.trace_id = tid
            self.mapping.transition(entry, MappingState.ESTABLISHED)
            # TCP handshake with the client (one WAN round trip), then the
            # request bytes ride client -> front end
            if tracer is not None:
                stage = tracer.begin("stage", "handshake", trace_id=tid,
                                     node=self.name)
            if self.client_latency:
                yield self.sim.timeout(3 * self.client_latency)
            yield from self.lan.transfer(client_nic, self.nic,
                                         request.wire_bytes)
            yield from self.cpu.run(self.costs.conn_setup_cpu)
            if stage is not None:
                tracer.end(stage)
                stage = None
            while True:
                if tracer is not None:
                    stage = tracer.begin("stage", "route", trace_id=tid,
                                         node=self.name)
                backend, item = yield from self.route(request)
                if stage is not None:
                    tracer.end(stage, backend=backend or "")
                    stage = None
                if backend is None:
                    response = HttpResponse(request=request, status=503,
                                            completed_at=self.sim.now)
                    return self._finish(entry, request, response, started,
                                        None, span=span)
                if tracer is not None:
                    stage = tracer.begin("stage", "bind", trace_id=tid,
                                         node=self.name, backend=backend)
                token = yield from self.acquire_backend(backend)
                self.mapping.bind(entry,
                                  token if token is not None else object(),
                                  backend)
                if stage is not None:
                    tracer.end(stage)
                    stage = None
                self.view.connection_started(backend)
                if self.overload is not None:
                    self.overload.breakers.on_dispatch(backend)
                failure: Optional[Exception] = None
                if tracer is not None:
                    stage = tracer.begin("stage", "serve", trace_id=tid,
                                         node=self.name, backend=backend)
                try:
                    server = self.servers[backend]
                    # relay the request to the backend
                    relay_kb = request.wire_bytes / 1024.0
                    yield from self.cpu.run(
                        self.costs.relay_cpu_per_kb * relay_kb)
                    yield from self.lan.transfer(self.nic, server.nic,
                                                 request.wire_bytes)
                    response = yield from self._backend_serve(server, request,
                                                              item)
                    entry.requests_relayed += 1
                    entry.bytes_to_server += request.wire_bytes
                    # relay the response back to the client
                    resp_kb = response.wire_bytes / 1024.0
                    yield from self.lan.transfer(server.nic, self.nic,
                                                 response.wire_bytes)
                    yield from self.cpu.run(
                        self.costs.relay_cpu_per_kb * resp_kb)
                    yield from self.lan.transfer(self.nic, client_nic,
                                                 response.wire_bytes)
                    if self.client_latency:
                        yield self.sim.timeout(self.client_latency)
                    entry.bytes_to_client += response.wire_bytes
                except Interrupt:
                    raise
                except Exception as exc:
                    failure = exc
                finally:
                    self.view.connection_finished(backend)
                if stage is not None:
                    tracer.end(stage, status="ok" if failure is None
                               else type(failure).__name__)
                    stage = None
                if failure is None:
                    if self.overload is not None:
                        self.overload.breakers.record_success(backend)
                    break
                # the backend failed mid-splice: score its breaker, drop
                # the lease, and retry on a replica if the budget allows
                if self.overload is not None:
                    self.overload.breakers.record_failure(backend)
                if token is not None:
                    self.release_backend(backend, token)
                    token = None
                if self.overload is None:
                    raise failure
                if not self._may_retry(attempts, tid):
                    if entry.client in self.mapping:
                        self.mapping.abort(entry.client)
                    return self._shed(request, started, "overload/degraded",
                                      span=span,
                                      reason=type(failure).__name__)
                attempts += 1
                self.metrics.counter("overload/replica-retry").increment()
                if tracer is not None:
                    tracer.point("retry", "replica-retry", trace_id=tid,
                                 node=self.name, attempt=attempts,
                                 failed=backend,
                                 reason=type(failure).__name__)
                # SM005: BOUND never returns to ESTABLISHED -- the splice
                # is torn down (RST) and the client connection re-enters
                # the table as a fresh entry before the re-route
                if entry.client in self.mapping:
                    self.mapping.abort(entry.client)
                entry = self.mapping.create(client, self.sim.now,
                                            vip_isn=next(self._vip_isns))
                if tid is not None:
                    entry.trace_id = tid
                self.mapping.transition(entry, MappingState.ESTABLISHED)
                backend = None
            # FIN handling happens after the response reaches the client;
            # it consumes front-end CPU but adds nothing to user latency
            if self.costs.teardown_cpu:
                core = self.cpu._core
                if self.sim.fast_path and core.can_acquire:
                    # collapse the fire-and-forget teardown process (4
                    # events) into a synchronous grant plus one scheduled
                    # release: the CPU is held for the identical window
                    duration = self.cpu.scaled(self.costs.teardown_cpu)
                    req = core.try_acquire()
                    self.sim.schedule(
                        duration,
                        lambda: self._teardown_done(req, duration))
                elif self.sim.fast_path:
                    # Busy core: the teardown still may not jump the queue
                    # -- the event path's process joins the core's FIFO
                    # only when its _Initialize fires, after every event
                    # already scheduled for this instant.  A 0-delay
                    # callback lands at the identical batch position, then
                    # queues a grant-and-hold request; no process, no
                    # generator, one event less.
                    duration = self.cpu.scaled(self.costs.teardown_cpu)
                    self.sim.schedule(
                        0.0, lambda: self._teardown_enqueue(duration))
                else:
                    self.sim.process(self.cpu.run(self.costs.teardown_cpu),
                                     name="teardown")
            return self._finish(entry, request, response, started, item,
                                span=span)
        except BaseException:
            # RST path: a failed or interrupted request must not leak its
            # mapping entry (the invariant verifier checks lease balance),
            # even if closing the stage span itself raises
            try:
                if stage is not None and stage.end is None:
                    tracer.end(stage, status="interrupted")
            finally:
                if entry.client in self.mapping:
                    self.mapping.abort(entry.client)
            raise
        finally:
            if token is not None:
                self.release_backend(backend, token)

    def _teardown_done(self, req, duration: float) -> None:
        self.cpu._core.release(req)
        self.cpu.busy_seconds += duration
        self.cpu.bursts += 1

    def _teardown_enqueue(self, duration: float) -> None:
        """Deferred half of the processless teardown (fast path only).

        Runs where the event path's teardown process would have started;
        the bookkeeping below mirrors Cpu.run exactly.
        """
        core = self.cpu._core
        req = core.try_acquire()
        if req is not None:
            self.sim.schedule(duration,
                              lambda: self._teardown_done(req, duration))
            return
        req = core.request(hold=duration)
        req.add_callback(lambda ev: self._teardown_done(req, duration))

    def _backend_serve(self, server: BackendServer, request: HttpRequest,
                       item: Optional[ContentItem]) -> Generator:
        """Await the backend's response, bounded by the request timeout."""
        ctl = self.overload
        if (ctl is None or ctl.config.request_timeout <= 0) \
                and self.sim.fast_path:
            # no timeout race to arbitrate: run the serve inline instead of
            # spawning a join-able process (nothing ever interrupts a
            # submit mid-serve, so the spawn bought only isolation that the
            # exception handling in _serve_spliced already provides)
            return (yield from server.serve(request, item))
        proc = self.sim.process(server.serve(request, item))
        if ctl is None or ctl.config.request_timeout <= 0:
            return (yield proc)
        if self.sim.fast_path:
            # pooled race: same two events and the same arbitration, but
            # the timer and the AnyOf come from (and return to) the
            # kernel's recycling pools instead of being allocated per race
            timer = self.sim.hot_timeout(ctl.config.request_timeout)
            cond = self.sim.hot_any_of((proc, timer))
            yield cond
            self.sim.recycle_any_of(cond)
        else:
            timer = self.sim.timeout(ctl.config.request_timeout)
            yield self.sim.any_of([proc, timer])
        if proc.triggered:
            return proc.value
        # the backend is still chewing: abandon the splice (the distributor
        # RSTs its side) and let the serve drain in the background -- the
        # no-op callback marks the process observed so a late failure in it
        # cannot take down the whole simulation
        proc.add_callback(lambda ev: None)
        self.metrics.counter("overload/timeout").increment()
        raise RequestTimeout(server.name, ctl.config.request_timeout)

    def _may_retry(self, attempts: int, trace_id=None) -> bool:
        ctl = self.overload
        if ctl is None:
            return False
        if attempts >= ctl.config.max_replica_retries:
            if self.tracer is not None:
                self.tracer.point("retry", "denied", trace_id=trace_id,
                                  node=self.name, reason="max-attempts")
            return False
        if ctl.retry_budget.try_spend():
            return True
        if self.tracer is not None:
            self.tracer.point("retry", "denied", trace_id=trace_id,
                              node=self.name, reason="budget-exhausted")
        return False

    def _shed(self, request: HttpRequest, started: float, counter: str,
              span=None, reason: str = "") -> RequestOutcome:
        """A clean 503 + Retry-After without touching per-connection state."""
        response = HttpResponse(request=request, status=503,
                                completed_at=self.sim.now)
        self.metrics.counter(counter).increment()
        self._count_status(response.status)
        if self.tracer is not None:
            name = counter.split("/", 1)[1]  # "shed" | "degraded"
            why = reason or name
            self.tracer.point("shed", name,
                              trace_id=span.trace_id if span else None,
                              node=self.name, reason=why)
            if span is not None:
                self.tracer.end(span, status="503", shed=True, reason=why)
        return RequestOutcome(response=response,
                              latency=self.sim.now - started, backend=None,
                              shed=True,
                              retry_after=(self.overload.config.retry_after
                                           if self.overload is not None
                                           else 0.0))

    def _count_status(self, status: int) -> None:
        counter = self._status_counters.get(status)
        if counter is None:
            counter = self.metrics.counter(f"status/{status}")
            self._status_counters[status] = counter
        counter.increment()

    def _finish(self, entry, request: HttpRequest, response: HttpResponse,
                started: float, item: Optional[ContentItem],
                span=None) -> RequestOutcome:
        # teardown: FIN from the client, distributor ACKs, final ACK
        # (the fused close applies the same transition chain)
        self.mapping.close(entry)
        latency = self.sim.now - started
        self.meter.record(self.sim.now, nbytes=response.content_length)
        if item is not None and response.ok:
            self.class_meters[item.ctype].record(
                self.sim.now, nbytes=response.content_length)
            hist = self._latency_hists.get(item.ctype)
            if hist is None:
                hist = self.metrics.histogram(f"latency/{item.ctype.value}",
                                              low=1e-5, high=100.0)
                self._latency_hists[item.ctype] = hist
            hist.observe(latency)
        hist = self._latency_all
        if hist is None:
            hist = self._latency_all = self.metrics.histogram(
                "latency/all", low=1e-5, high=100.0)
        hist.observe(latency)
        self._count_status(response.status)
        if self.on_response is not None:
            self.on_response(item, response)
        if self.tracer is not None and span is not None:
            self.tracer.end(span, status=str(response.status),
                            backend=response.served_by or "")
        outcome = RequestOutcome(response=response, latency=latency,
                                 backend=response.served_by or None)
        if self.overload is not None and response.status == 503:
            # no healthy replica (all holders down or breaker-tripped):
            # degrade cleanly and tell the client when to come back
            outcome.shed = True
            outcome.retry_after = self.overload.config.retry_after
        return outcome

    # -- introspection --------------------------------------------------------
    def throughput(self, horizon: float) -> float:
        return self.meter.requests_per_second(horizon)

    def class_throughput(self, ctype: ContentType, horizon: float) -> float:
        return self.class_meters[ctype].requests_per_second(horizon)

    def crash(self) -> None:
        self.alive = False

    def recover(self) -> None:
        self.alive = True
