"""Load metrics and the auto-replication facility (§3.3).

The paper's load model, implemented verbatim:

    l_i = (load_CPU + load_Disk) x processing_time

with the constants CPU=1/Disk=9 for static and CPU=10/Disk=5 for dynamic
content ("a somewhat heuristic constant that makes intuitive sense works
well"), and per-server

    L_j = (sum over contents of l_i x access_frequency) / Weight

accumulated by the distributor over an interval.  ``Weight`` is the node's
static capacity weight.  Periodically: a node whose L_j exceeds the cluster
average by a threshold is *overloaded* (the controller decreases its
content copies); a node below the average by the threshold is
*underutilized* (the controller replicates popular content onto it).
"""

from __future__ import annotations

import dataclasses
from typing import Generator, Optional, Protocol

from ..content import ContentItem
from ..net import HttpResponse
from ..sim import Simulator
from .url_table import UrlRecord, UrlTable

__all__ = ["LoadAccountant", "RebalanceAction", "AutoReplicator",
           "ReplicationActuator", "LoadAwareReplica"]


class ReplicationActuator(Protocol):
    """What the auto-replicator asks the management plane to do.

    Both methods are simulation generators (they take time: agents travel
    the LAN, content is copied).  :class:`repro.mgmt.Controller` satisfies
    this protocol.
    """

    def replicate(self, path: str, node: str) -> Generator: ...

    def offload(self, path: str, node: str) -> Generator: ...


class LoadAccountant:
    """Accumulates per-server load over the current interval.

    The distributor feeds it every response (it is the distributor that
    measures processing time, §3.3); ``interval_loads`` divides by the
    static weights to produce the L_j values.
    """

    def __init__(self, weights: dict[str, float]):
        if not weights:
            raise ValueError("need at least one server weight")
        for node, w in weights.items():
            if w <= 0:
                raise ValueError(f"weight for {node} must be positive")
        self.weights = dict(weights)
        self._accum: dict[str, float] = {n: 0.0 for n in weights}
        self.requests_seen = 0

    def record(self, item: Optional[ContentItem],
               response: HttpResponse) -> None:
        """Add one request's l_i to the serving node's accumulator."""
        if item is None or not response.ok or not response.served_by:
            return
        server = response.served_by
        if server not in self._accum:
            return
        l_i = item.load_weights.total * response.service_time
        self._accum[server] += l_i
        self.requests_seen += 1

    def interval_loads(self) -> dict[str, float]:
        """L_j for every server over the interval so far."""
        return {n: self._accum[n] / self.weights[n] for n in self._accum}

    def reset(self) -> None:
        for n in self._accum:
            self._accum[n] = 0.0
        self.requests_seen = 0


class LoadAwareReplica:
    """Replica selection driven by the §3.3 load metric itself.

    Instead of weighted connection counts, pick the candidate with the
    lowest *accumulated interval load* ``L_j`` -- the paper suggests the
    weighted-parameter space as "an area of further research"; this policy
    closes the loop between the measurement and the routing decision.
    Falls back to connection counts when no load has accumulated yet.
    """

    def __init__(self, accountant: "LoadAccountant"):
        self.accountant = accountant

    def select(self, candidates, view):
        usable = [c for c in candidates if view.alive.get(c, False)]
        if not usable:
            return None
        loads = self.accountant.interval_loads()
        if all(loads.get(c, 0.0) == 0.0 for c in usable):
            return min(usable,
                       key=lambda n: ((view.active[n] + 1) / view.weights[n],
                                      n))
        return min(usable, key=lambda n: (loads.get(n, 0.0), n))


@dataclasses.dataclass(frozen=True)
class RebalanceAction:
    """One auto-replication decision, kept for reporting and tests."""

    at: float
    kind: str          # "replicate" | "offload"
    path: str
    node: str


class AutoReplicator:
    """The periodic rebalancing loop the distributor runs (§3.3)."""

    def __init__(self, sim: Simulator,
                 accountant: LoadAccountant,
                 url_table: UrlTable,
                 actuator: ReplicationActuator,
                 interval: float = 2.0,
                 threshold: float = 0.30,
                 max_actions_per_interval: int = 2,
                 min_requests: int = 20):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.sim = sim
        self.accountant = accountant
        self.url_table = url_table
        self.actuator = actuator
        self.interval = interval
        self.threshold = threshold
        self.max_actions = max_actions_per_interval
        self.min_requests = min_requests
        self.history: list[RebalanceAction] = []
        self.intervals_run = 0
        self._process = None

    def start(self) -> None:
        """Begin the periodic loop as a simulation process."""
        self._process = self.sim.process(self._run(), name="auto-replicator")

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stopped")

    def _run(self) -> Generator:
        while True:
            yield self.sim.timeout(self.interval)
            yield from self.rebalance_once()

    # -- one rebalancing round --------------------------------------------
    def classify(self) -> tuple[list[str], list[str], dict[str, float]]:
        """Split servers into (overloaded, underutilized) by L_j vs avg."""
        loads = self.accountant.interval_loads()
        avg = sum(loads.values()) / len(loads)
        if avg <= 0:
            return [], [], loads
        over = [n for n, l in loads.items()
                if l > avg * (1 + self.threshold)]
        under = [n for n, l in loads.items()
                 if l < avg * (1 - self.threshold)]
        over.sort(key=lambda n: loads[n], reverse=True)
        under.sort(key=lambda n: loads[n])
        return over, under, loads

    def _replication_candidates(self, target: str,
                                prefer_from: list[str]) -> list[UrlRecord]:
        """Popular documents not yet on ``target``, hottest first,
        preferring ones hosted on overloaded nodes."""
        ranked = self.url_table.top_by_hits(64)
        preferred = [r for r in ranked
                     if target not in r.locations
                     and r.locations & set(prefer_from)]
        fallback = [r for r in ranked if target not in r.locations]
        seen: set[str] = set()
        out = []
        for r in preferred + fallback:
            if r.path not in seen:
                seen.add(r.path)
                out.append(r)
        return out

    def _offload_candidates(self, node: str) -> list[UrlRecord]:
        """Documents on ``node`` that have other copies, hottest first --
        removing a hot document's copy sheds the most load."""
        return [r for r in self.url_table.top_by_hits(64)
                if node in r.locations and len(r.locations) > 1]

    def rebalance_once(self) -> Generator:
        """One interval's decisions: §3.3's replicate/offload step."""
        self.intervals_run += 1
        if self.accountant.requests_seen < self.min_requests:
            self.accountant.reset()
            return
        over, under, _loads = self.classify()
        actions = 0
        for node in under:
            for record in self._replication_candidates(node, over):
                if actions >= self.max_actions:
                    break
                yield from self.actuator.replicate(record.path, node)
                self.history.append(RebalanceAction(
                    at=self.sim.now, kind="replicate",
                    path=record.path, node=node))
                actions += 1
                break  # one document per underutilized node per interval
        for node in over:
            if actions >= self.max_actions:
                break
            for record in self._offload_candidates(node):
                if actions >= self.max_actions:
                    break
                yield from self.actuator.offload(record.path, node)
                self.history.append(RebalanceAction(
                    at=self.sim.now, kind="offload",
                    path=record.path, node=node))
                actions += 1
                break  # one offload per overloaded node per interval
        self.accountant.reset()
