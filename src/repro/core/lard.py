"""LARD: Locality-Aware Request Distribution (Pai et al., ASPLOS 1998).

The paper's conclusion promises to "further investigate more sophisticated
load-balancing algorithm[s]"; LARD is the canonical contemporaneous one and
makes an instructive comparison point for the evaluation harness:

* like the content-aware distributor, LARD routes on the *requested
  content* (it needs the same front-end mechanism -- §2's splicing);
* unlike static partitioning, LARD builds the content-to-server mapping
  *dynamically*: the first request for a document is assigned to the
  least-loaded node, and later requests stick to that node (cache
  locality) unless it is overloaded, in which case the document is
  reassigned (or served by a replica set in LARD/R).

This implementation follows the basic LARD algorithm of the ASPLOS paper:

    if server[target] is None:
        server[target] = least_loaded_node
    elif load(server[target]) > T_high and exists node with load < T_low,
         or load(server[target]) >= 2 * T_high:
        server[target] = least_loaded_node

with node load measured in active connections (the paper's metric).

It plugs into the same front-end machinery as the other routers, and works
over *full replication* -- every node can serve every document; LARD's
point is that locality makes the per-node working sets small without any
static placement decisions.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..cluster import BackendServer, NodeSpec
from ..content import ContentItem
from ..net import HttpRequest, Lan
from ..sim import Simulator
from .frontend import Frontend, FrontendCosts
from .overload import OverloadConfig

__all__ = ["LardRouter"]


class LardRouter(Frontend):
    """Locality-aware request distribution over a replicated cluster."""

    def __init__(self, sim: Simulator, lan: Lan, spec: NodeSpec,
                 servers: dict[str, BackendServer],
                 resolver: Callable[[str], Optional[ContentItem]],
                 t_low: int = 2, t_high: int = 8,
                 weighted: bool = True,
                 costs: FrontendCosts = FrontendCosts(),
                 warmup: float = 0.0,
                 overload: Optional[OverloadConfig] = None,
                 tracer=None,
                 name: Optional[str] = None):
        if not 0 <= t_low < t_high:
            raise ValueError("need 0 <= t_low < t_high")
        super().__init__(sim, lan, spec, servers, costs=costs,
                         warmup=warmup, overload=overload, tracer=tracer,
                         name=name)
        self.resolver = resolver
        self.t_low = t_low
        self.t_high = t_high
        #: ASPLOS LARD assumed a homogeneous cluster and counted raw
        #: connections; on the paper's heterogeneous testbed that drowns
        #: the 150 MHz nodes.  ``weighted=True`` divides by the §3.3
        #: capacity weight (our adaptation); ``False`` is the original.
        self.weighted = weighted
        #: the dynamically built content -> server assignment
        self.assignment: dict[str, str] = {}
        self.reassignments = 0
        self.first_assignments = 0

    def _node_load(self, node: str) -> float:
        if self.weighted:
            return (self.view.active[node] + 1) / self.view.weights[node]
        return float(self.view.active[node])

    def _least_loaded(self) -> Optional[str]:
        alive = self.view.alive_nodes()
        if not alive:
            return None
        return min(alive, key=lambda n: (self._node_load(n), n))

    def _lard_pick(self, key: str) -> Optional[str]:
        current = self.assignment.get(key)
        if current is None or not self.view.alive.get(current, False):
            target = self._least_loaded()
            if target is None:
                return None
            self.assignment[key] = target
            self.first_assignments += 1
            return target
        load = self._node_load(current)
        least = self._least_loaded()
        if least is None:
            return None
        least_load = self._node_load(least)
        if (load > self.t_high and least_load < self.t_low) or \
                load >= 2 * self.t_high:
            # the assigned node is overloaded: move the document
            self.assignment[key] = least
            self.reassignments += 1
            return least
        return current

    def route(self, request: HttpRequest) -> Generator:
        """Parse the request (LARD is content-aware) and pick per LARD."""
        yield from self.cpu.run(self.costs.http_parse_cpu)
        key = request.url.split("?", 1)[0]
        backend = self._lard_pick(key)
        if backend is None:
            self.metrics.counter("route/no-backend-alive").increment()
            return None, None
        return backend, self.resolver(request.url)
