"""The content-aware distributor (request-level front end).

§2.2's mechanism, at request granularity: terminate the client connection
(mapping-table entry), *parse the HTTP request*, consult the URL table for
the document's locations, pick the best replica, bind the client connection
to an idle pre-forked backend connection, relay bytes both ways, and on
teardown release the pooled connection back to the available list.

The packet-level version of the same mechanism (explicit SYN/FIN handling
and header rewriting) is :class:`repro.core.splicer.SplicingDistributor`.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..cluster import BackendServer, NodeSpec
from ..content import ContentItem
from ..net import HttpRequest, Lan
from ..sim import Simulator
from .conn_pool import PoolManager, PooledConnection
from .frontend import Frontend, FrontendCosts
from .overload import OverloadConfig
from .policies import LeastLoadedReplica, Policy
from .url_table import UrlTable, UrlTableError

__all__ = ["ContentAwareDistributor"]


class ContentAwareDistributor(Frontend):
    """Routes each request to a node that holds the requested content."""

    def __init__(self, sim: Simulator, lan: Lan, spec: NodeSpec,
                 servers: dict[str, BackendServer],
                 url_table: UrlTable,
                 policy: Optional[Policy] = None,
                 costs: FrontendCosts = FrontendCosts(),
                 prefork: int = 8,
                 max_pool_size: Optional[int] = None,
                 warmup: float = 0.0,
                 client_latency: float = 0.0,
                 overload: Optional[OverloadConfig] = None,
                 tracer=None,
                 name: Optional[str] = None):
        super().__init__(sim, lan, spec, servers,
                         policy=policy or LeastLoadedReplica(),
                         costs=costs, warmup=warmup,
                         client_latency=client_latency, overload=overload,
                         tracer=tracer, name=name)
        self.url_table = url_table
        # Sorted replica lists, memoized per URL and stamped with the table
        # version: route() needs them on every request, while the location
        # sets only change on (rare) management-plane mutations -- each of
        # which bumps ``url_table.version`` and lazily invalidates us.
        self._sorted_locs: dict[str, tuple[int, list[str]]] = {}
        self.pools = PoolManager(sim, prefork=prefork,
                                 max_size=max_pool_size, tracer=tracer)
        # prefork eagerly to every backend, as the paper's distributor does
        for backend in servers:
            self.pools.pool(backend)

    def _replicas(self, url: str, record) -> list[str]:
        """The document's replica set, sorted (memoized, see __init__)."""
        version = self.url_table.version
        entry = self._sorted_locs.get(url)
        if entry is not None and entry[0] == version:
            return entry[1]
        locs = sorted(record.locations)
        self._sorted_locs[url] = (version, locs)
        return locs

    # -- Frontend hooks --------------------------------------------------
    def route(self, request: HttpRequest) -> Generator:
        """HTTP parse + URL-table lookup + replica selection."""
        tracer = self.tracer
        tid = request.trace_id or None
        if (tracer is None and self.sim.fast_path
                and self.cpu._core.can_acquire
                and self.sim.fits_horizon(
                    self.cpu.scaled(self.costs.http_parse_cpu))):
            # Collapse parse + lookup into one segmented CPU hold.  The
            # eager table probe is safe: only route() touches the URL
            # table, and no competing route can complete its parse burst
            # (the step that precedes its probe) while we hold the core;
            # the horizon gate guarantees the event path's probe (at the
            # parse boundary) would also precede any run-deadline freeze.
            before_hits = self.url_table.cache_hits
            try:
                record = self.url_table.lookup(request.url)
            except UrlTableError:
                # unknown URL: single burst, nothing to merge
                self.metrics.counter("route/unknown-url").increment()
                yield from self.cpu.run(self.costs.http_parse_cpu)
                return None, None
            if self.url_table.cache_hits > before_hits:
                lookup_cpu = self.costs.lookup_cache_hit_cpu
            else:
                levels = self.url_table.lookup_cost_levels(request.url)
                lookup_cpu = self.costs.lookup_per_level_cpu * levels
            yield from self.cpu.run_pair(self.costs.http_parse_cpu,
                                         lookup_cpu)
            backend = self.policy.select(
                self._replicas(request.url, record), self.view)
            if backend is None:
                self.metrics.counter("route/no-replica-alive").increment()
                return None, None
            return backend, record.item
        yield from self.cpu.run(self.costs.http_parse_cpu)
        before_hits = self.url_table.cache_hits
        try:
            record = self.url_table.lookup(request.url)
        except UrlTableError:
            self.metrics.counter("route/unknown-url").increment()
            if tracer is not None:
                tracer.point("lookup", "unknown-url", trace_id=tid,
                             node=self.name, reason="unknown-url")
            return None, None
        if self.url_table.cache_hits > before_hits:
            if tracer is not None:
                tracer.point("lookup", "cache-hit", trace_id=tid,
                             node=self.name)
            yield from self.cpu.run(self.costs.lookup_cache_hit_cpu)
        else:
            levels = self.url_table.lookup_cost_levels(request.url)
            if tracer is not None:
                tracer.point("lookup", "cache-miss", trace_id=tid,
                             node=self.name, levels=levels)
            yield from self.cpu.run(self.costs.lookup_per_level_cpu * levels)
        backend = self.policy.select(self._replicas(request.url, record),
                                     self.view)
        if backend is None:
            self.metrics.counter("route/no-replica-alive").increment()
            if tracer is not None:
                tracer.point("lookup", "no-replica-alive", trace_id=tid,
                             node=self.name, reason="no-replica-alive")
            return None, None
        return backend, record.item

    def acquire_backend(self, backend: str) -> Generator:
        pool = self.pools.pool(backend)
        if self.sim.fast_path:
            conn = pool.try_acquire()
            if conn is not None:
                return conn
        conn: PooledConnection = yield pool.acquire()
        return conn

    def release_backend(self, backend: str, token) -> None:
        self.pools.pool(backend).release(token)

    # -- management-plane integration ------------------------------------
    def register_content(self, item: ContentItem,
                         locations: set[str]) -> None:
        """Admin/controller API: add a document to the URL table."""
        self.url_table.insert(item, locations)

    def unregister_content(self, path: str) -> None:
        self.url_table.remove(path)

    def add_replica(self, path: str, node: str) -> None:
        self.url_table.add_location(path, node)

    def remove_replica(self, path: str, node: str) -> None:
        self.url_table.remove_location(path, node)
