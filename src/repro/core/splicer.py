"""The packet-level content-aware distributor (§2.2's actual mechanism).

This is the faithful version of Figure 1: the distributor completes the TCP
handshake with the client itself, reads the HTTP request from the first
data segment, consults the URL table, binds the connection to an idle
pre-forked persistent connection, and from then on *relays packets by
rewriting headers* -- IP addresses, ports, and sequence/ACK numbers -- so
client and backend each believe they are talking to a single peer.

Teardown follows §2.2 exactly:

* client FIN -> entry FIN_RECEIVED;
* distributor ACKs the FIN -> HALF_CLOSED;
* final client ACK (covering everything the distributor relayed plus its
  own FIN) -> CLOSED: entry deleted, pre-forked connection returned to the
  available list;
* for HTTP/1.0 the distributor itself sets the FIN flag on the last relayed
  response packet ("the distributor will set the FIN flag instead of server
  when it relay the last packet").

The pre-forked connections are real protocol flows against the backend's
TCP socket: sequence numbers accumulate across successive spliced requests,
which is what makes connection reuse visible in the tests.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..net.http import HttpRequest, HttpVersion
from ..net.packet import (ACK_FLAG, FIN_FLAG, PSH_FLAG, RST_FLAG, SYN_FLAG,
                          Address, Segment)
from ..net.tcp import Network
from ..sim import SimEvent, Simulator, Store
from .mapping_table import MappingEntry, MappingState, MappingTable
from .policies import Policy, RoutingView, WeightedLeastConnection
from .url_table import UrlTable, UrlTableError

__all__ = ["SplicingDistributor", "PoolLeg"]

_isns = itertools.count(5_000_000, 2741)

#: Precomputed plain-int flag words for every segment the splicer emits
#: (``IntFlag.__or__`` is a Python-level call; see ``repro.net.packet``).
_SYN = SYN_FLAG
_ACK = ACK_FLAG
_RST = RST_FLAG
_SYN_ACK = SYN_FLAG | ACK_FLAG
_ACK_PSH = ACK_FLAG | PSH_FLAG
_FIN_ACK = FIN_FLAG | ACK_FLAG

#: Lifecycle of a pre-forked backend leg.  Legs are opened once at prefork
#: time and then stay ESTABLISHED for the life of the distributor (the
#: whole point of §2.2's persistent connections); the repro.analysis
#: state-machine checker verifies every ``leg.state`` assignment against
#: this table.
_LEG_TRANSITIONS: dict[str, frozenset[str]] = {
    "CLOSED": frozenset({"SYN_SENT"}),
    "SYN_SENT": frozenset({"ESTABLISHED"}),
    "ESTABLISHED": frozenset(),
}


def _leg_transition(leg: "PoolLeg", new: str, tracer=None) -> None:
    """Move a leg through its lifecycle, enforcing the declared table."""
    if new not in _LEG_TRANSITIONS[leg.state]:
        raise RuntimeError(f"pool leg {leg.local}: illegal transition "
                           f"{leg.state} -> {new}")
    old, leg.state = leg.state, new
    if tracer is not None:
        tracer.point("leg", f"{old}->{new}", node=leg.backend,
                     port=leg.local.port)


class PoolLeg:
    """One pre-forked persistent connection: distributor -> backend."""

    __slots__ = ("backend", "local", "remote", "state", "isn", "snd_nxt",
                 "rcv_nxt", "established", "bound_entry", "uses")

    def __init__(self, backend: str, local: Address, remote: Address):
        self.backend = backend
        self.local = local
        self.remote = remote
        self.state = "CLOSED"            # CLOSED -> SYN_SENT -> ESTABLISHED
        self.isn = next(_isns)
        self.snd_nxt = self.isn
        self.rcv_nxt = 0
        self.established: Optional[SimEvent] = None
        self.bound_entry: Optional[MappingEntry] = None
        self.uses = 0


class SplicingDistributor:
    """Packet-level front end owning a VIP and a pool of backend legs."""

    def __init__(self, sim: Simulator, net: Network,
                 url_table: UrlTable,
                 backends: dict[str, Address],
                 vip: str = "10.0.0.100",
                 dist_ip: str = "10.0.0.1",
                 prefork: int = 2,
                 policy: Optional[Policy] = None,
                 weights: Optional[dict[str, float]] = None,
                 tracer=None):
        if not backends:
            raise ValueError("need at least one backend")
        self.sim = sim
        self.net = net
        self.url_table = url_table
        #: repro.obs tracer; None keeps the legacy behavior byte-for-byte
        self.tracer = tracer
        self.backends = dict(backends)
        self.vip = Address(vip, 80)
        self.dist_ip = dist_ip
        self.prefork = prefork
        self.policy = policy or WeightedLeastConnection()
        self.view = RoutingView(weights or {b: 1.0 for b in backends})
        self.mapping = MappingTable()
        self._ports = itertools.count(20000)
        self._legs: dict[int, PoolLeg] = {}
        self._available: dict[str, Store] = {
            b: Store(sim, name=f"avail:{b}") for b in backends}
        self._inboxes: dict[Address, Store] = {}
        self.relayed_to_server = 0
        self.relayed_to_client = 0
        if tracer is not None:
            self.mapping.on_transition = self._trace_splice
        net.register(vip, self._on_vip_segment)
        net.register(dist_ip, self._on_dist_segment)

    def _trace_splice(self, entry: MappingEntry, old: MappingState,
                      new: MappingState) -> None:
        self.tracer.point("splice", f"{old.value}->{new.value}",
                          trace_id=entry.trace_id or None,
                          node=entry.backend or "distributor")

    # -- pool management ------------------------------------------------------
    def prefork_all(self) -> SimEvent:
        """Open ``prefork`` persistent connections to every backend.

        Returns an event that fires when every leg is ESTABLISHED.
        """
        events = []
        for backend, remote in self.backends.items():
            for _ in range(self.prefork):
                events.append(self._open_leg(backend, remote))
        return self.sim.all_of(events)

    def _open_leg(self, backend: str, remote: Address) -> SimEvent:
        local = Address(self.dist_ip, next(self._ports))
        leg = PoolLeg(backend, local, remote)
        leg.established = self.sim.event()
        self._legs[local.port] = leg
        _leg_transition(leg, "SYN_SENT", self.tracer)
        self.net.send(Segment(src=local, dst=remote, seq=leg.snd_nxt,
                              ack=0, flags=_SYN))
        leg.snd_nxt += 1
        return leg.established

    def idle_legs(self, backend: str) -> int:
        return len(self._available[backend])

    # -- VIP leg: the client side ------------------------------------------
    def _on_vip_segment(self, seg: Segment) -> None:
        client = seg.src
        if seg.is_syn and client not in self.mapping:
            entry = self.mapping.create(client, self.sim.now,
                                        client_isn=seg.seq,
                                        vip_isn=next(_isns))
            if self.tracer is not None:
                entry.trace_id = self.tracer.new_trace()
            entry.client_seq = seg.seq + 1          # rcv_nxt on the client leg
            inbox: Store = Store(self.sim, name=f"conn:{client}")
            self._inboxes[client] = inbox
            self.sim.process(self._client_conn(entry, inbox),
                             name=f"splice:{client}")
            self.net.send(Segment(src=self.vip, dst=client,
                                  seq=entry.vip_isn, ack=entry.client_seq,
                                  flags=_SYN_ACK))
            return
        inbox = self._inboxes.get(client)
        if inbox is not None:
            inbox.put(seg)

    def _vip_send(self, entry: MappingEntry, flags: int,
                  payload_len: int = 0, payload=None,
                  frags: int = 1) -> None:
        self.net.send(Segment(src=self.vip, dst=entry.client,
                              seq=entry.client_ack, ack=entry.client_seq,
                              flags=flags, payload_len=payload_len,
                              payload=payload, frags=frags))

    def _client_conn(self, entry: MappingEntry, inbox: Store):
        """Per-connection state machine over the client's segments.

        ``entry.client_seq`` tracks the next expected client sequence
        number; ``entry.client_ack`` is the distributor's own send cursor
        on the client leg (it starts one past the VIP ISN once the
        handshake completes).
        """
        while True:
            seg: Segment = yield inbox.get()
            if seg.is_rst:
                self._teardown(entry, aborted=True)
                return
            if entry.state is MappingState.SYN_RECEIVED and seg.is_ack:
                self.mapping.transition(entry, MappingState.ESTABLISHED)
                entry.client_ack = entry.vip_isn + 1  # our send cursor
                if not seg.payload_len:
                    continue
            if seg.payload_len and isinstance(seg.payload, HttpRequest):
                entry.client_seq = seg.seq + seg.payload_len
                request: HttpRequest = seg.payload
                if entry.state is MappingState.ESTABLISHED:
                    bound = yield from self._bind(entry, request)
                    if not bound:
                        # unknown document / no backend: refuse the conn
                        self._vip_send(entry, _RST)
                        self._teardown(entry, aborted=True)
                        return
                leg: PoolLeg = entry.pooled_conn  # type: ignore[assignment]
                # §2.2 header rewriting: client request -> backend leg
                self.net.send(Segment(
                    src=leg.local, dst=leg.remote,
                    seq=leg.snd_nxt, ack=leg.rcv_nxt,
                    flags=_ACK_PSH,
                    payload_len=seg.payload_len, payload=seg.payload,
                    frags=seg.frags))
                leg.snd_nxt += seg.payload_len
                entry.requests_relayed += 1
                entry.bytes_to_server += seg.payload_len
                self.relayed_to_server += seg.frags
                self._vip_send(entry, _ACK, frags=seg.frags)
                if request.version is HttpVersion.HTTP_1_0:
                    entry.http10 = True
                continue
            if seg.is_fin:
                entry.client_seq = seg.seq + 1
                if entry.state in (MappingState.ESTABLISHED,
                                   MappingState.BOUND):
                    self.mapping.transition(entry, MappingState.FIN_RECEIVED)
                self._vip_send(entry, _ACK)
                if entry.state is MappingState.FIN_RECEIVED:
                    self.mapping.transition(entry, MappingState.HALF_CLOSED)
                if entry.vip_fin_sent:
                    # our FIN already went out (HTTP/1.0 relay path) and the
                    # client's FIN acknowledges everything: fully closed.
                    self._teardown(entry)
                    return
                self._vip_send(entry, _FIN_ACK)
                entry.client_ack += 1
                entry.vip_fin_sent = True
                continue
            if seg.is_ack and entry.state is MappingState.HALF_CLOSED \
                    and seg.ack >= entry.client_ack:
                self._teardown(entry)
                return

    def _bind(self, entry: MappingEntry, request: HttpRequest):
        """Route + bind: URL-table lookup, backend choice, pool checkout."""
        try:
            record = self.url_table.lookup(request.url)
        except UrlTableError:
            return False
        backend = self.policy.select(
            sorted(b for b in record.locations if b in self.backends),
            self.view)
        if backend is None:
            return False
        leg: PoolLeg = yield self._available[backend].get()
        leg.bound_entry = entry
        leg.uses += 1
        self.mapping.bind(entry, leg, backend,
                          seq_delta=leg.snd_nxt - entry.client_seq,
                          ack_delta=entry.vip_isn - leg.rcv_nxt)
        self.view.connection_started(backend)
        return True

    def _teardown(self, entry: MappingEntry, aborted: bool = False) -> None:
        """CLOSED: delete the entry, return the leg to the available list."""
        leg: Optional[PoolLeg] = entry.pooled_conn  # type: ignore[assignment]
        if leg is not None:
            leg.bound_entry = None
            self._available[leg.backend].put(leg)
            self.view.connection_finished(leg.backend)
        if aborted:
            self.mapping.abort(entry.client)
        else:
            self.mapping.transition(entry, MappingState.CLOSED)
            self.mapping.delete(entry.client)
        self._inboxes.pop(entry.client, None)

    # -- distributor IP: the backend side -----------------------------------
    def _on_dist_segment(self, seg: Segment) -> None:
        leg = self._legs.get(seg.dst.port)
        if leg is None:
            return
        if leg.state == "SYN_SENT" and seg.is_syn and seg.is_ack:
            leg.rcv_nxt = seg.seq + 1
            _leg_transition(leg, "ESTABLISHED", self.tracer)
            self.net.send(Segment(src=leg.local, dst=leg.remote,
                                  seq=leg.snd_nxt, ack=leg.rcv_nxt,
                                  flags=_ACK))
            self._available[leg.backend].put(leg)
            assert leg.established is not None
            leg.established.succeed(leg)
            return
        if seg.payload_len:
            leg.rcv_nxt = seg.seq + seg.payload_len
            # ACK the backend on the pool leg (one per relayed fragment)...
            self.net.send(Segment(src=leg.local, dst=leg.remote,
                                  seq=leg.snd_nxt, ack=leg.rcv_nxt,
                                  flags=_ACK, frags=seg.frags))
            # ...and relay the response to the client, rewritten.
            entry = leg.bound_entry
            if entry is None:
                return  # response after abort: drop
            flags = _ACK_PSH
            # §2.2: for HTTP/1.0 "the distributor will set the FIN flag
            # instead of server when it relay the last packet".  The last
            # packet of a response is the one carrying the parsed message
            # (fragments before it carry raw bytes only).
            last_packet = seg.payload is not None
            add_fin = entry.http10 and last_packet and not entry.vip_fin_sent
            if add_fin:
                flags |= FIN_FLAG
                entry.vip_fin_sent = True
            self.net.send(Segment(src=self.vip, dst=entry.client,
                                  seq=entry.client_ack,
                                  ack=entry.client_seq, flags=flags,
                                  payload_len=seg.payload_len,
                                  payload=seg.payload, frags=seg.frags))
            entry.client_ack += seg.payload_len + (1 if add_fin else 0)
            entry.bytes_to_client += seg.payload_len
            self.relayed_to_client += seg.frags
        # pure ACKs from the backend are absorbed
