"""The mapping table: per-connection splice state at the distributor.

§2.2: "After receiving the SYN packet, the distributor first creates an
entry (indexed by the source IP address and port number) in an internal
table (termed mapping table) for this connection then records the TCP state
information (e.g., sequence number, ACK number, etc.) in the entry. ...
Once the distributor selects a target server, it also chooses an idle
pre-forked connection ... the distributor stores related information about
the selected connection in the mapping table, which will bind the user
connection to the pre-forked connection."

Teardown (§2.2, verbatim states): on a client FIN the entry moves to
FIN_RECEIVED; after the distributor ACKs the FIN it is HALF_CLOSED; when the
last relayed packet is ACKed the entry is CLOSED, deleted, and the
pre-forked connection returns to the available list.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Optional

from ..net.packet import Address

__all__ = ["MappingState", "MappingEntry", "MappingTable", "MappingError"]


class MappingError(Exception):
    """Illegal mapping-table operation or state transition."""


class MappingState(enum.Enum):
    """Lifecycle of a client connection at the distributor (§2.2 names)."""

    SYN_RECEIVED = "SYN_RECEIVED"    # entry created on the client's SYN
    ESTABLISHED = "ESTABLISHED"      # handshake with the client completed
    BOUND = "BOUND"                  # bound to a pre-forked backend connection
    FIN_RECEIVED = "FIN_RECEIVED"    # client sent FIN
    HALF_CLOSED = "HALF_CLOSED"      # distributor ACKed the FIN
    CLOSED = "CLOSED"                # final ACK seen; entry to be deleted

    # Identity hash: members are singletons and the per-transition
    # ``_TRANSITIONS[state]`` lookups otherwise pay the Python-level
    # ``Enum.__hash__`` on the request hot path.
    __hash__ = object.__hash__


#: Legal transitions of the splice state machine.
_TRANSITIONS: dict[MappingState, frozenset[MappingState]] = {
    MappingState.SYN_RECEIVED: frozenset({MappingState.ESTABLISHED,
                                          MappingState.CLOSED}),
    MappingState.ESTABLISHED: frozenset({MappingState.BOUND,
                                         MappingState.FIN_RECEIVED,
                                         MappingState.CLOSED}),
    MappingState.BOUND: frozenset({MappingState.FIN_RECEIVED,
                                   MappingState.CLOSED}),
    MappingState.FIN_RECEIVED: frozenset({MappingState.HALF_CLOSED,
                                          MappingState.CLOSED}),
    MappingState.HALF_CLOSED: frozenset({MappingState.CLOSED}),
    MappingState.CLOSED: frozenset(),
}


@dataclasses.dataclass(slots=True)
class MappingEntry:
    """Splice state for one client connection."""

    client: Address
    state: MappingState
    created_at: float
    # TCP state recorded from the client handshake:
    client_isn: int = 0          # client's initial sequence number
    vip_isn: int = 0             # distributor's ISN on the client leg
    client_seq: int = 0          # highest client seq seen
    client_ack: int = 0          # highest ack the client has sent
    # binding to the pre-forked backend connection:
    pooled_conn: Optional[object] = None
    backend: str = ""
    # splice arithmetic: deltas applied when rewriting headers
    seq_delta_c2s: int = 0       # client seq -> backend-leg seq
    ack_delta_c2s: int = 0
    requests_relayed: int = 0
    bytes_to_server: int = 0
    bytes_to_client: int = 0
    # client-leg teardown details (packet-level splicer):
    http10: bool = False         # §2.2: distributor sets FIN itself for 1.0
    vip_fin_sent: bool = False   # distributor's FIN toward the client
    #: repro.obs correlation id (0 = untraced)
    trace_id: int = 0

    @property
    def bound(self) -> bool:
        return self.pooled_conn is not None


class MappingTable:
    """All live client connections, indexed by (source IP, port)."""

    def __init__(self):
        self._entries: dict[Address, MappingEntry] = {}
        self.created = 0
        self.deleted = 0
        self.peak_size = 0
        #: observation hook called as ``(entry, old_state, new_state)``
        #: after every state change (including aborts); set by the owning
        #: front end when tracing is on, None otherwise
        self.on_transition: Optional[Callable[
            [MappingEntry, MappingState, MappingState], None]] = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, client: Address) -> bool:
        return client in self._entries

    def create(self, client: Address, now: float,
               client_isn: int = 0, vip_isn: int = 0) -> MappingEntry:
        """Create the entry when the client's SYN arrives."""
        if client in self._entries:
            raise MappingError(f"duplicate connection from {client}")
        entry = MappingEntry(client=client, state=MappingState.SYN_RECEIVED,
                             created_at=now, client_isn=client_isn,
                             vip_isn=vip_isn)
        self._entries[client] = entry
        self.created += 1
        if len(self._entries) > self.peak_size:
            self.peak_size = len(self._entries)
        return entry

    def get(self, client: Address) -> MappingEntry:
        try:
            return self._entries[client]
        except KeyError:
            raise MappingError(f"no mapping entry for {client}") from None

    def transition(self, entry: MappingEntry, new: MappingState) -> None:
        """Move an entry through the state machine, enforcing legality."""
        if new not in _TRANSITIONS[entry.state]:
            raise MappingError(
                f"{entry.client}: illegal transition "
                f"{entry.state.value} -> {new.value}")
        old, entry.state = entry.state, new
        if self.on_transition is not None:
            self.on_transition(entry, old, new)

    def bind(self, entry: MappingEntry, pooled_conn, backend: str,
             seq_delta: int = 0, ack_delta: int = 0) -> None:
        """Bind the client connection to a pre-forked backend connection."""
        if entry.state is not MappingState.ESTABLISHED:
            raise MappingError(
                f"{entry.client}: can only bind in ESTABLISHED, "
                f"not {entry.state.value}")
        entry.pooled_conn = pooled_conn
        entry.backend = backend
        entry.seq_delta_c2s = seq_delta
        entry.ack_delta_c2s = ack_delta
        self.transition(entry, MappingState.BOUND)

    def close(self, entry: MappingEntry) -> None:
        """The §2.2 teardown chain fused into one call.

        Semantically identical to the ``FIN_RECEIVED -> HALF_CLOSED ->
        CLOSED`` transitions followed by :meth:`delete` (the observation
        hook still sees every individual transition), but pays one
        legality check instead of four table lookups -- this runs once
        per request.
        """
        hook = self.on_transition
        state = entry.state
        if state is MappingState.BOUND or state is MappingState.ESTABLISHED:
            entry.state = MappingState.FIN_RECEIVED
            if hook is not None:
                hook(entry, state, MappingState.FIN_RECEIVED)
            entry.state = MappingState.HALF_CLOSED
            if hook is not None:
                hook(entry, MappingState.FIN_RECEIVED,
                     MappingState.HALF_CLOSED)
            state = MappingState.HALF_CLOSED
        elif MappingState.CLOSED not in _TRANSITIONS[state]:
            raise MappingError(
                f"{entry.client}: illegal transition "
                f"{state.value} -> {MappingState.CLOSED.value}")
        entry.state = MappingState.CLOSED
        if hook is not None:
            hook(entry, state, MappingState.CLOSED)
        del self._entries[entry.client]
        self.deleted += 1

    def delete(self, client: Address) -> MappingEntry:
        """Remove a CLOSED entry (the §2.2 final step)."""
        entry = self.get(client)
        if entry.state is not MappingState.CLOSED:
            raise MappingError(
                f"{client}: cannot delete entry in state {entry.state.value}")
        del self._entries[client]
        self.deleted += 1
        return entry

    def abort(self, client: Address) -> MappingEntry:
        """Force an entry to CLOSED and remove it (RST / failure path)."""
        entry = self.get(client)
        old, entry.state = entry.state, MappingState.CLOSED
        del self._entries[client]
        self.deleted += 1
        if self.on_transition is not None:
            self.on_transition(entry, old, MappingState.CLOSED)
        return entry

    def entries(self) -> list[MappingEntry]:
        return list(self._entries.values())
