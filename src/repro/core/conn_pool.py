"""Pre-forked persistent backend connections.

§2.2: "The distributor pre-forks a number of persistent connections
(supported by HTTP 1.1) to the backend nodes. ... Once the distributor
selects a target server, it also chooses an idle pre-forked connection from
the available connection list."  Releasing a connection returns it to that
list (after the client connection reaches CLOSED).

Pooling is the paper's answer to HTTP redirection's cost: no per-request
TCP handshake to the backend, ever.  The pool can optionally grow beyond its
pre-forked size up to a hard cap, modelling an administrator-tuned limit.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Optional

from ..sim import SimEvent, Simulator, Store

__all__ = ["PooledConnection", "ConnectionPool", "PoolManager"]

_conn_ids = itertools.count(1)


@dataclasses.dataclass(slots=True)
class PooledConnection:
    """One persistent distributor->backend connection."""

    backend: str
    conn_id: int = dataclasses.field(default_factory=lambda: next(_conn_ids))
    created_at: float = 0.0
    uses: int = 0
    in_use: bool = False
    # Splice bookkeeping for the packet-level distributor: cumulative bytes
    # already pushed in each direction (offsets into the connection's
    # sequence space across successive spliced requests).
    seq_offset_out: int = 0
    seq_offset_in: int = 0
    transport: Optional[object] = None   # packet-level TcpSocket, if any


class ConnectionPool:
    """The available-connection list for one backend."""

    def __init__(self, sim: Simulator, backend: str, prefork: int = 8,
                 max_size: Optional[int] = None, tracer=None):
        if prefork < 1:
            raise ValueError("prefork must be >= 1")
        if max_size is not None and max_size < prefork:
            raise ValueError("max_size must be >= prefork")
        self.sim = sim
        self.backend = backend
        #: repro.obs tracer; acquire/release become "pool" point events
        self.tracer = tracer
        self.prefork = prefork
        self.max_size = max_size if max_size is not None else prefork
        self._idle: Store = Store(sim, name=f"pool:{backend}")
        #: connections currently delivered to a holder and not yet released
        #: (a conn popped from the idle list but still in flight to its
        #: acquirer is in neither set -- the invariant verifier relies on
        #: lease accounting happening at delivery time)
        self._leased: dict[int, PooledConnection] = {}
        self.total = 0
        self.acquired = 0
        self.released = 0
        self.grown = 0
        self.waits = 0
        #: acquirers currently blocked on an empty list, and the high-water
        #: mark -- the observable that explodes when the front end has no
        #: admission control and keeps binding under overload
        self.waiting = 0
        self.peak_waiting = 0
        for _ in range(prefork):
            self._idle.put(self._new_conn())

    def _new_conn(self) -> PooledConnection:
        self.total += 1
        return PooledConnection(backend=self.backend,
                                created_at=self.sim.now)

    @property
    def idle_count(self) -> int:
        return len(self._idle)

    @property
    def busy_count(self) -> int:
        return self.total - self.idle_count

    @property
    def leased_count(self) -> int:
        """Connections delivered to a holder and not yet released."""
        return len(self._leased)

    def acquire(self) -> SimEvent:
        """Take an idle connection; yield the returned event.

        If the list is empty the pool grows (up to ``max_size``); beyond
        that, callers queue until a connection is released -- the natural
        backpressure of a finite connection table.
        """
        self.acquired += 1
        grew = False
        if len(self._idle) == 0 and self.total < self.max_size:
            self._idle.put(self._new_conn())
            self.grown += 1
            grew = True
        waited = len(self._idle) == 0
        if waited:
            self.waits += 1
            self.waiting += 1
            self.peak_waiting = max(self.peak_waiting, self.waiting)
        if self.tracer is not None:
            self.tracer.point("pool", "acquire", node=self.backend,
                              idle=len(self._idle), waited=waited,
                              grown=grew)
        ev = self._idle.get()
        if waited:
            ev.add_callback(self._waiter_served)
        ev.add_callback(self._mark_busy)
        return ev

    def try_acquire(self) -> Optional[PooledConnection]:
        """Synchronously take an idle connection, or ``None`` if the caller
        would have to wait for a release.

        The fast-path twin of :meth:`acquire`: growth, counters, and trace
        points are byte-identical to the event-based path for the
        no-wait case; lease accounting just happens immediately instead of
        at event-delivery time (the delivery event fires at the same
        timestamp, so nothing observable moves).
        """
        if len(self._idle) == 0 and self.total >= self.max_size:
            return None
        self.acquired += 1
        grew = False
        if len(self._idle) == 0:
            self._idle.put(self._new_conn())
            self.grown += 1
            grew = True
        if self.tracer is not None:
            self.tracer.point("pool", "acquire", node=self.backend,
                              idle=len(self._idle), waited=False,
                              grown=grew)
        conn = self._idle.try_get()
        conn.in_use = True
        conn.uses += 1
        self._leased[conn.conn_id] = conn
        return conn

    def _waiter_served(self, event: SimEvent) -> None:
        self.waiting -= 1

    def _mark_busy(self, event: SimEvent) -> None:
        conn: PooledConnection = event.value
        conn.in_use = True
        conn.uses += 1
        self._leased[conn.conn_id] = conn

    def release(self, conn: PooledConnection) -> None:
        """Return a connection to the available list."""
        if conn.backend != self.backend:
            raise ValueError(
                f"connection for {conn.backend!r} released to pool "
                f"{self.backend!r}")
        if not conn.in_use:
            raise ValueError(f"connection {conn.conn_id} is not in use")
        conn.in_use = False
        self._leased.pop(conn.conn_id, None)
        self.released += 1
        if self.tracer is not None:
            self.tracer.point("pool", "release", node=self.backend,
                              idle=len(self._idle) + 1)
        self._idle.put(conn)


class PoolManager:
    """All per-backend pools, created lazily with shared defaults."""

    def __init__(self, sim: Simulator, prefork: int = 8,
                 max_size: Optional[int] = None, tracer=None):
        self.sim = sim
        self.prefork = prefork
        self.max_size = max_size
        self.tracer = tracer
        self._pools: dict[str, ConnectionPool] = {}

    def pool(self, backend: str) -> ConnectionPool:
        if backend not in self._pools:
            self._pools[backend] = ConnectionPool(
                self.sim, backend, prefork=self.prefork,
                max_size=self.max_size, tracer=self.tracer)
        return self._pools[backend]

    def pools(self) -> dict[str, ConnectionPool]:
        return dict(self._pools)

    def total_connections(self) -> int:
        return sum(p.total for p in self._pools.values())

    def peak_waiting(self) -> int:
        """Worst per-pool acquire-queue depth seen so far."""
        return max((p.peak_waiting for p in self._pools.values()), default=0)
