"""Content placement schemes.

§1.2 proposes partitioning (or partially replicating) content across the
cluster instead of the two traditional schemes:

* **full replication** -- every document on every node (config 1);
* **shared NFS** -- every document on one file server (config 2);
* **content partition** -- documents spread by type/size/priority so each
  node serves what it is good at (config 3):

  - dynamic content (CGI/ASP) on the nodes with powerful CPUs,
  - large files and multimedia on nodes with large, fast disks,
  - plain HTML/images on the remaining nodes,
  - critical documents replicated for availability.

A :class:`PlacementPlan` is pure data (path -> set of node names) so it can
be inspected, diffed, and tested without a simulator; ``apply_plan`` loads
it into real backend stores, a URL table, and a document tree.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Iterable, Optional, Sequence

from ..cluster import BackendServer, NfsServer, NodeSpec
from ..content import ContentItem, ContentType, DocTree, Priority, SiteCatalog
from .url_table import UrlTable

__all__ = ["PlacementPlan", "full_replication", "shared_nfs",
           "partition_by_type", "partition_by_priority",
           "partial_replication", "apply_plan"]


@dataclasses.dataclass
class PlacementPlan:
    """Which nodes hold a copy of each document."""

    locations: dict[str, set[str]]
    uses_nfs: bool = False

    def nodes_for(self, path: str) -> set[str]:
        return set(self.locations[path])

    def paths_on(self, node: str) -> list[str]:
        return [p for p, nodes in self.locations.items() if node in nodes]

    def replica_count(self, path: str) -> int:
        return len(self.locations[path])

    def bytes_on(self, node: str, catalog: SiteCatalog) -> int:
        return sum(catalog.get(p).size_bytes for p in self.paths_on(node))

    def add_replica(self, path: str, node: str) -> None:
        self.locations[path].add(node)

    def validate(self, catalog: SiteCatalog,
                 node_names: Iterable[str]) -> None:
        """Every document placed somewhere; every location a known node."""
        known = set(node_names)
        for item in catalog:
            nodes = self.locations.get(item.path)
            if not nodes:
                raise ValueError(f"{item.path} has no placement")
            unknown = nodes - known
            if unknown:
                raise ValueError(f"{item.path} placed on unknown {unknown}")

    # -- persistence (ops tooling: plans are reviewable artifacts) ---------
    def to_json_dict(self) -> dict:
        return {
            "uses_nfs": self.uses_nfs,
            "locations": {path: sorted(nodes)
                          for path, nodes in sorted(self.locations.items())},
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "PlacementPlan":
        return cls(
            locations={path: set(nodes)
                       for path, nodes in data["locations"].items()},
            uses_nfs=bool(data.get("uses_nfs", False)))

    def save(self, path: str | Path) -> None:
        """Write the plan as reviewable JSON."""
        with open(path, "w") as f:
            json.dump(self.to_json_dict(), f, indent=1, sort_keys=True)

    @classmethod
    def load(cls, path: str | Path) -> "PlacementPlan":
        with open(path) as f:
            return cls.from_json_dict(json.load(f))

    def diff(self, other: "PlacementPlan") -> dict:
        """What changes when moving from this plan to ``other``: per-path
        (added_nodes, removed_nodes).  The management console can turn a
        diff directly into replicate/offload operations."""
        changes: dict[str, tuple[set[str], set[str]]] = {}
        for path in sorted(set(self.locations) | set(other.locations)):
            before = self.locations.get(path, set())
            after = other.locations.get(path, set())
            if before != after:
                changes[path] = (after - before, before - after)
        return changes


def full_replication(catalog: SiteCatalog,
                     node_names: Sequence[str]) -> PlacementPlan:
    """Configuration 1: the entire document set on every node."""
    if not node_names:
        raise ValueError("need at least one node")
    all_nodes = set(node_names)
    return PlacementPlan(
        locations={item.path: set(all_nodes) for item in catalog})


def shared_nfs(catalog: SiteCatalog,
               node_names: Sequence[str]) -> PlacementPlan:
    """Configuration 2: content on the file server; any web node can serve
    any document by reading it over NFS, so the routable location set is
    the whole cluster while local stores stay empty."""
    if not node_names:
        raise ValueError("need at least one node")
    all_nodes = set(node_names)
    return PlacementPlan(
        locations={item.path: set(all_nodes) for item in catalog},
        uses_nfs=True)


def _weighted_spread(items: Sequence[ContentItem],
                     nodes: Sequence[NodeSpec]) -> dict[str, set[str]]:
    """Deterministic weighted assignment: each item goes to the eligible
    node with the least assigned load per unit weight (size-aware, so one
    node does not accumulate all the big files)."""
    load = {n.name: 0.0 for n in nodes}
    weight = {n.name: n.weight for n in nodes}
    out: dict[str, set[str]] = {}
    for item in sorted(items, key=lambda i: (-i.size_bytes, i.path)):
        target = min(load, key=lambda n: (load[n] / weight[n], n))
        # 1 unit of expected request cost + bytes as a tiebreaker proxy
        load[target] += 1.0 + item.size_bytes / (256 * 1024)
        out[item.path] = {target}
    return out


def partition_by_type(catalog: SiteCatalog,
                      specs: Sequence[NodeSpec],
                      replicate_critical: bool = True) -> PlacementPlan:
    """Configuration 3: partition the document tree by content type.

    Mirrors §5.3's manual partitioning: dynamic content on the powerful-CPU
    nodes, large/multimedia files on the big fast-disk nodes, plain
    HTML/images on the remaining (slower) nodes -- falling back to the whole
    cluster when a class of nodes is not needed (e.g. workload A has no
    dynamic content, so every node serves static files).
    """
    if not specs:
        raise ValueError("need at least one node spec")
    specs = list(specs)
    max_mhz = max(s.cpu_mhz for s in specs)
    fast_cpu = [s for s in specs if s.cpu_mhz >= max_mhz * 0.999]
    big_disk = sorted(specs, key=lambda s: (s.disk.transfer_mbps,
                                            s.disk.capacity_gb),
                      reverse=True)
    big_disk = [s for s in big_disk
                if s.disk.transfer_mbps >= big_disk[0].disk.transfer_mbps * 0.7]
    slower = [s for s in specs if s not in fast_cpu]

    dynamic_items = catalog.dynamic_items()
    multimedia = [i for i in catalog
                  if i.ctype.is_multimedia or
                  (i.ctype.is_static and i.is_large)]
    multimedia_paths = {i.path for i in multimedia}
    plain = [i for i in catalog.static_items()
             if i.path not in multimedia_paths]

    locations: dict[str, set[str]] = {}
    if dynamic_items:
        locations.update(_weighted_spread(dynamic_items, fast_cpu))
        static_pool = slower or specs
    else:
        static_pool = specs
    locations.update(_weighted_spread(multimedia, big_disk))
    locations.update(_weighted_spread(plain, static_pool))

    plan = PlacementPlan(locations=locations)
    if replicate_critical:
        # §1.2: replicate critical content for availability; put the extra
        # copy on a powerful node that does not already hold it.
        by_power = sorted(specs, key=lambda s: s.weight, reverse=True)
        for item in catalog:
            if item.priority is Priority.CRITICAL:
                current = plan.locations[item.path]
                for spec in by_power:
                    if spec.name not in current:
                        # dynamic content must stay on capable CPUs
                        if item.ctype.is_dynamic and spec not in fast_cpu:
                            continue
                        plan.add_replica(item.path, spec.name)
                        break
    return plan


def partition_by_priority(catalog: SiteCatalog,
                          specs: Sequence[NodeSpec],
                          critical_replicas: int = 2) -> PlacementPlan:
    """§1.2's other partitioning axis: "by some other policy (e.g.,
    priority)".

    * CRITICAL documents go to the most powerful nodes, replicated
      ``critical_replicas`` times ("place critical content on more
      powerful machines ... replicate some critical content to multiple
      nodes for achieving high availability");
    * NORMAL documents spread over the whole cluster by weight;
    * LOW-priority documents are confined to the least powerful nodes, so
      they can never crowd out anything that matters.

    Dynamic content is still constrained to the fastest CPUs regardless of
    priority (a slow node cannot execute it acceptably).
    """
    if not specs:
        raise ValueError("need at least one node spec")
    if critical_replicas < 1:
        raise ValueError("critical_replicas must be >= 1")
    by_power = sorted(specs, key=lambda s: (s.weight, s.name), reverse=True)
    n = len(by_power)
    powerful = by_power[:max(1, n // 3)]
    weak = by_power[-max(1, n // 3):]
    max_mhz = max(s.cpu_mhz for s in specs)
    fast_cpu = [s for s in specs if s.cpu_mhz >= max_mhz * 0.999]

    critical = [i for i in catalog if i.priority is Priority.CRITICAL]
    low = [i for i in catalog if i.priority is Priority.LOW]
    normal = [i for i in catalog if i.priority is Priority.NORMAL]

    locations: dict[str, set[str]] = {}
    locations.update(_weighted_spread(normal, list(specs)))
    locations.update(_weighted_spread(low, weak))
    locations.update(_weighted_spread(critical, powerful))
    plan = PlacementPlan(locations=locations)

    # replicate critical content across distinct powerful nodes
    for item in critical:
        pool = powerful if not item.ctype.is_dynamic else \
            [s for s in powerful if s in fast_cpu] or fast_cpu
        for spec in pool:
            if plan.replica_count(item.path) >= critical_replicas:
                break
            plan.add_replica(item.path, spec.name)
    # dynamic content must stay on capable CPUs
    fast_names = {s.name for s in fast_cpu}
    for item in catalog.dynamic_items():
        bad = plan.locations[item.path] - fast_names
        if bad:
            keep = plan.locations[item.path] & fast_names
            if not keep:
                keep = {_weighted_spread([item], fast_cpu)[item.path].pop()}
            plan.locations[item.path] = keep
    return plan


def partial_replication(plan: PlacementPlan, paths: Iterable[str],
                        nodes: Iterable[str]) -> PlacementPlan:
    """Replicate the given documents onto additional nodes (§1.2: "The
    administrator can replicate some critical content to multiple nodes")."""
    node_list = list(nodes)
    for path in paths:
        if path not in plan.locations:
            raise KeyError(f"plan has no document {path}")
        for node in node_list:
            plan.add_replica(path, node)
    return plan


def apply_plan(plan: PlacementPlan, catalog: SiteCatalog,
               servers: dict[str, BackendServer],
               nfs: Optional[NfsServer] = None,
               url_table: Optional[UrlTable] = None,
               doctree: Optional[DocTree] = None
               ) -> tuple[UrlTable, DocTree]:
    """Load a plan into backend stores, the URL table, and the doc tree."""
    plan.validate(catalog, servers.keys())
    if plan.uses_nfs:
        if nfs is None:
            raise ValueError("plan uses NFS but no NFS server given")
        nfs.export(catalog)
    url_table = url_table or UrlTable()
    doctree = doctree or DocTree()
    for item in catalog:
        nodes = plan.locations[item.path]
        if not plan.uses_nfs:
            for node in nodes:
                # dynamic content is installed (scripts), static is copied;
                # both occupy the node's store
                servers[node].place(item)
        url_table.insert(item, set(nodes))
        doctree.insert(item, set(nodes))
    return url_table, doctree
