"""HTTP-redirection front end: the §2.1 alternative the paper rejects.

"HTTP redirection might be used for content-aware routing.  However, we do
not prefer HTTP redirection because this mechanism is quite heavy-weight.
Not only does it necessitate the use of one additional connection, which
introduces an extra round-trip latency, but also the routing decision is
performed at the application level and uses the expensive TCP protocol as
the transport layer."

The model follows that description: the redirector terminates the client
connection *in user space* (heavier per-request CPU than the kernel
distributor), parses the request, looks up the URL table, and answers with
a ``302`` naming the chosen backend.  The client then opens a **new TCP
connection directly to that backend** -- paying connection setup, but from
then on the data path bypasses the front end entirely (the one structural
advantage redirection has; it is visible in the benchmark as lower
front-end NIC usage).
"""

from __future__ import annotations

from typing import Generator, Optional

from ..cluster import BackendServer, NodeSpec
from ..net import HttpRequest, HttpResponse, Lan, Nic
from ..net.http import RESPONSE_HEADER_BYTES
from ..sim import Simulator
from .frontend import Frontend, FrontendCosts, RequestOutcome
from .policies import LeastLoadedReplica, Policy
from .url_table import UrlTable, UrlTableError

__all__ = ["HttpRedirector", "redirect_costs"]

#: Wire size of the 302 response (status line + Location header).
REDIRECT_RESPONSE_BYTES = 280
#: TCP handshake cost: 1.5 RTTs worth of segments, modelled as 3 small
#: transfers' latency; the byte volume is negligible.
HANDSHAKE_SEGMENTS = 3
HANDSHAKE_SEGMENT_BYTES = 60


def redirect_costs() -> FrontendCosts:
    """User-space request handling is heavier than the kernel module's."""
    return FrontendCosts(conn_setup_cpu=220e-6, http_parse_cpu=150e-6,
                         lookup_cache_hit_cpu=1.5e-6,
                         lookup_per_level_cpu=1.8e-6,
                         relay_cpu_per_kb=0.0,  # no relaying at all
                         teardown_cpu=60e-6)


class HttpRedirector(Frontend):
    """Content-aware routing by 302 redirects instead of splicing."""

    def __init__(self, sim: Simulator, lan: Lan, spec: NodeSpec,
                 servers: dict[str, BackendServer],
                 url_table: UrlTable,
                 policy: Optional[Policy] = None,
                 costs: Optional[FrontendCosts] = None,
                 warmup: float = 0.0,
                 client_latency: float = 0.0,
                 name: Optional[str] = None):
        super().__init__(sim, lan, spec, servers,
                         policy=policy or LeastLoadedReplica(),
                         costs=costs or redirect_costs(),
                         warmup=warmup, client_latency=client_latency,
                         name=name)
        self.url_table = url_table
        self.redirects_issued = 0

    def route(self, request: HttpRequest) -> Generator:
        yield from self.cpu.run(self.costs.http_parse_cpu)
        try:
            record = self.url_table.lookup(request.url)
        except UrlTableError:
            self.metrics.counter("route/unknown-url").increment()
            return None, None
        backend = self.policy.select(sorted(record.locations), self.view)
        if backend is None:
            self.metrics.counter("route/no-replica-alive").increment()
            return None, None
        return backend, record.item

    def submit(self, request: HttpRequest, client_nic: Nic,
               client_addr=None) -> Generator:
        """The redirect flow: two connections, direct data path.

        1. client -> redirector: request; redirector answers 302
           (one full round trip on the front end);
        2. client -> chosen backend: NEW TCP connection (handshake RTTs),
           request re-sent, response returned directly.
        """
        if not self.alive:
            raise RuntimeError(f"front end {self.name} is down")
        started = self.sim.now
        # leg 1: handshake with the client, then the redirect exchange
        if self.client_latency:
            yield self.sim.timeout(3 * self.client_latency)
        yield from self.lan.transfer(client_nic, self.nic,
                                     request.wire_bytes)
        yield from self.cpu.run(self.costs.conn_setup_cpu)
        backend, item = yield from self.route(request)
        if backend is None:
            response = HttpResponse(request=request, status=503,
                                    completed_at=self.sim.now)
            return self._record(request, response, started, None)
        yield from self.lan.transfer(self.nic, client_nic,
                                     REDIRECT_RESPONSE_BYTES)
        if self.client_latency:
            yield self.sim.timeout(self.client_latency)
        self.redirects_issued += 1
        # leg 2: a fresh connection straight to the backend -- the §2.1
        # "additional connection" and its extra client round trips
        server = self.servers[backend]
        if self.client_latency:
            yield self.sim.timeout(3 * self.client_latency)
        for _ in range(HANDSHAKE_SEGMENTS):
            yield from self.lan.transfer(client_nic, server.nic,
                                         HANDSHAKE_SEGMENT_BYTES)
        yield from self.lan.transfer(client_nic, server.nic,
                                     request.wire_bytes)
        self.view.connection_started(backend)
        try:
            response = yield self.sim.process(server.serve(request, item))
            yield from self.lan.transfer(server.nic, client_nic,
                                         response.wire_bytes)
            if self.client_latency:
                yield self.sim.timeout(self.client_latency)
        finally:
            self.view.connection_finished(backend)
        return self._record(request, response, started, item)

    def _record(self, request: HttpRequest, response: HttpResponse,
                started: float, item) -> RequestOutcome:
        latency = self.sim.now - started
        self.meter.record(self.sim.now, nbytes=response.content_length)
        if item is not None and response.ok:
            self.class_meters[item.ctype].record(
                self.sim.now, nbytes=response.content_length)
        self.metrics.histogram("latency/all",
                               low=1e-5, high=100.0).observe(latency)
        self.metrics.counter(f"status/{response.status}").increment()
        if self.on_response is not None:
            self.on_response(item, response)
        return RequestOutcome(response=response, latency=latency,
                              backend=response.served_by or None)
