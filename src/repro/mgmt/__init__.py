"""The content management system: controller / broker / agent / console."""

from .agents import (Agent, CopyAgent, DeleteAgent, InventoryAgent,
                     RenameAgent, StatusAgent, UpdateAgent, VerifyAgent)
from .broker import Broker
from .console import RemoteConsole
from .controller import Controller, ManagementError
from .durability import (ControllerCrashed, ControllerDurability,
                         ControllerWal, CrashPlan, DurabilityConfig,
                         RecoveryReport, WalCorruption, WalRecord, recover)
from .messages import AgentDispatch, AgentResult, StatusReport
from .monitor import ClusterMonitor, NodeEvent

__all__ = [
    "Agent", "DeleteAgent", "CopyAgent", "RenameAgent", "StatusAgent",
    "UpdateAgent", "VerifyAgent", "InventoryAgent",
    "Broker", "Controller", "ManagementError", "RemoteConsole",
    "AgentDispatch", "AgentResult", "StatusReport",
    "ClusterMonitor", "NodeEvent",
    "ControllerCrashed", "ControllerDurability", "ControllerWal",
    "CrashPlan", "DurabilityConfig", "RecoveryReport", "WalCorruption",
    "WalRecord", "recover",
]
