"""The broker: the per-node management daemon (§3.1).

"The broker is a standalone Java application, which executes as a daemon
process on each backend server in order to perform the administrative
functions and monitor the status of the managed node.  The brokers
distributed on each node may download the appropriate classes to perform
the corresponding management tasks."

The broker runs as a simulation process consuming dispatches from a
mailbox.  The first dispatch of each agent *type* pays the mobile-code
download (a LAN transfer of ``code_bytes`` from the controller); afterwards
the class is cached locally -- the deploy-once economy §3.2 credits to
downloaded executable content.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..cluster import BackendServer
from ..net import Lan, Nic
from ..sim import Simulator, Store
from .messages import AgentDispatch, AgentResult, DISPATCH_HEADER_BYTES

__all__ = ["Broker"]


class Broker:
    """One node's management daemon."""

    def __init__(self, sim: Simulator, lan: Lan, server: BackendServer,
                 controller_nic: Nic,
                 registry: Optional[dict[str, "Broker"]] = None):
        self.sim = sim
        self.lan = lan
        self.server = server
        self.name = server.name
        self.controller_nic = controller_nic
        self._registry = registry if registry is not None else {}
        self._registry[self.name] = self
        self.mailbox: Store = Store(sim, name=f"broker:{self.name}")
        self.results: Store = Store(sim, name=f"results:{self.name}")
        self._class_cache: set[str] = set()
        self.agents_executed = 0
        self.code_downloads = 0
        #: fault injection: when set, dispatches matching the predicate are
        #: lost in flight (never enqueued, never answered -- the controller
        #: only recovers via its dispatch timeout)
        self.drop_filter: Optional[Callable[[AgentDispatch], bool]] = None
        self.dispatches_dropped = 0
        self.running = True
        self._process = sim.process(self._run(), name=f"broker:{self.name}")

    def peer(self, name: str) -> Optional["Broker"]:
        """Another node's broker (used by CopyAgent to fetch content)."""
        return self._registry.get(name)

    def deliver(self, dispatch: AgentDispatch) -> None:
        """Called by the controller to enqueue work."""
        if self.drop_filter is not None and self.drop_filter(dispatch):
            self.dispatches_dropped += 1
            return
        self.mailbox.put(dispatch)

    def stop(self) -> None:
        self.running = False
        if self._process.is_alive:
            self._process.interrupt("stopped")

    def _run(self) -> Generator:
        while self.running:
            dispatch: AgentDispatch = yield self.mailbox.get()
            agent = dispatch.agent
            # download the agent class unless cached (mobile code, §3.2)
            if agent.name not in self._class_cache:
                yield from self.lan.transfer(
                    self.controller_nic, self.server.nic,
                    DISPATCH_HEADER_BYTES + agent.code_bytes)
                self._class_cache.add(agent.name)
                self.code_downloads += 1
            else:
                yield from self.lan.transfer(self.controller_nic,
                                             self.server.nic,
                                             DISPATCH_HEADER_BYTES)
            try:
                detail = yield from agent.execute(self)
                ok = True
            except Exception as exc:  # agent failure travels back, not up
                detail = {"error": repr(exc)}
                ok = False
            result = AgentResult(dispatch_id=dispatch.dispatch_id,
                                 node=self.name, agent_name=agent.name,
                                 ok=ok, detail=detail,
                                 completed_at=self.sim.now)
            self.agents_executed += 1
            # result message rides back to the controller
            yield from self.lan.transfer(self.server.nic,
                                         self.controller_nic,
                                         result.wire_bytes)
            self.results.put(result)
