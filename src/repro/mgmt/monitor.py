"""Cluster monitoring: §3.1's broker status loop wired into routing.

"The broker is a standalone Java application, which executes as a daemon
process on each backend server in order to perform the administrative
functions and monitor the status (e.g., load situation, failure) of the
managed node."

The :class:`ClusterMonitor` runs on the controller: every interval it
gathers a :class:`~repro.mgmt.messages.StatusReport` from each broker.  A
node that fails to report healthy for ``misses_to_fail`` consecutive
rounds is declared down; the monitor

* marks the node down in the distributor's routing view (no new requests
  route there),
* and, for every document that *lost* a replica, asks the controller to
  re-replicate it from a surviving copy onto a healthy node -- restoring
  the §1.2 availability guarantee for replicated content.  Documents whose
  *only* copy lived on the dead node are reported as lost (exactly the
  failure mode the paper's partial-replication advice exists to prevent).

When the node reports healthy again it is marked back up.
"""

from __future__ import annotations

import dataclasses
from typing import Generator, Optional

from ..core.policies import RoutingView
from ..sim import Simulator
from .agents import StatusAgent
from .controller import Controller, ManagementError
from .durability import ControllerCrashed

__all__ = ["ClusterMonitor", "NodeEvent"]


@dataclasses.dataclass(frozen=True)
class NodeEvent:
    """One detected state change, kept for reporting and tests."""

    at: float
    node: str
    kind: str            # "down" | "up" | "re-replicated" | "lost"
    detail: str = ""     # also "rejoined" | "purged" after a recovery


class ClusterMonitor:
    """Periodic health sweep + failure reaction."""

    def __init__(self, sim: Simulator, controller: Controller,
                 view: RoutingView,
                 interval: float = 1.0,
                 misses_to_fail: int = 2,
                 re_replicate: bool = True,
                 probe_timeout: Optional[float] = None,
                 reconcile_on_recovery: bool = True,
                 tracer=None):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if misses_to_fail < 1:
            raise ValueError("misses_to_fail must be >= 1")
        self.sim = sim
        self.controller = controller
        self.view = view
        self.interval = interval
        self.misses_to_fail = misses_to_fail
        self.re_replicate = re_replicate
        self.probe_timeout = probe_timeout
        self.reconcile_on_recovery = reconcile_on_recovery
        #: repro.obs tracer; sweep verdicts become "monitor" point events
        self.tracer = tracer
        self.events: list[NodeEvent] = []
        self.rounds = 0
        self._misses: dict[str, int] = {}
        self._down: set[str] = set()
        self._pending_reconcile: set[str] = set()
        self._process = None

    def start(self) -> None:
        self._process = self.sim.process(self._run(), name="cluster-monitor")

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stopped")

    @property
    def down_nodes(self) -> set[str]:
        return set(self._down)

    def _run(self) -> Generator:
        while True:
            yield self.sim.timeout(self.interval)
            if not self.controller.alive:
                # the management brain is down (MgmtCrash / crash-point
                # exploration); skip the round -- recovery will
                # anti-entropy the cluster when the controller returns
                continue
            try:
                yield from self.sweep_once()
            except ControllerCrashed:
                # the controller died mid-sweep: abandon the round
                continue

    def sweep_once(self) -> Generator:
        """One monitoring round: poll every broker, react to changes."""
        self.rounds += 1
        for node in sorted(self.controller.brokers):
            healthy = yield from self._probe(node)
            if self.tracer is not None:
                self.tracer.point("monitor",
                                  "probe-ok" if healthy else "probe-failed",
                                  node=node)
            if healthy:
                self._misses[node] = 0
                if node in self._down:
                    self._mark_up(node)
                if node in self._pending_reconcile:
                    yield from self._reconcile(node)
            else:
                self._misses[node] = self._misses.get(node, 0) + 1
                if (self._misses[node] >= self.misses_to_fail and
                        node not in self._down):
                    yield from self._mark_down(node)

    def _probe(self, node: str) -> Generator:
        """A status probe; a dead backend cannot execute the agent."""
        broker = self.controller.brokers[node]
        if not broker.server.alive:
            # the broker daemon dies with its machine: no response
            return False
        result = yield from self.controller.execute(
            StatusAgent(), node, timeout=self.probe_timeout)
        return bool(result.ok and result.detail.alive)

    def _mark_up(self, node: str) -> None:
        self._down.discard(node)
        self.view.mark_up(node)
        if self.tracer is not None:
            self.tracer.point("monitor", "mark-up", node=node)
        self.events.append(NodeEvent(at=self.sim.now, node=node, kind="up"))
        if self.reconcile_on_recovery:
            self._pending_reconcile.add(node)

    def _reconcile(self, node: str) -> Generator:
        """Repair a recovered node's divergence from the URL table.

        A returning node may still store documents the :meth:`_mark_down`
        path routed away from it (INV003 orphans) or be routed documents it
        lost.  Retried every sweep until the inventory round-trip succeeds
        (agent loss / partition make individual attempts fail).
        """
        summary = yield from self.controller.reconcile_node(
            node, timeout=self.probe_timeout)
        if "error" in summary:
            return  # stays pending; retried next sweep
        self._pending_reconcile.discard(node)
        for kind in ("rejoined", "purged", "lost"):
            for path in summary.get(kind, []):
                self.events.append(NodeEvent(
                    at=self.sim.now, node=node, kind=kind, detail=path))

    def _mark_down(self, node: str) -> Generator:
        self._down.add(node)
        self.view.mark_down(node)
        if self.tracer is not None:
            self.tracer.point("monitor", "mark-down", node=node,
                              reason="missed-probes")
        self.events.append(NodeEvent(at=self.sim.now, node=node,
                                     kind="down"))
        if not self.re_replicate:
            return
        # restore availability for documents that lost a replica
        url_table = self.controller.url_table
        healthy = [n for n in sorted(self.controller.brokers)
                   if n not in self._down]
        for record in list(url_table.records()):
            if node not in record.locations:
                continue
            survivors = record.locations - self._down
            if not survivors:
                self.events.append(NodeEvent(
                    at=self.sim.now, node=node, kind="lost",
                    detail=record.path))
                continue
            # drop the dead replica from routing state; re-replicate the
            # document onto a healthy node that lacks it
            if len(record.locations) > 1:
                self.controller.wal_apply("route-drop",
                                          path=record.path, node=node)
                url_table.remove_location(record.path, node)
                if self.controller.doctree.exists(record.path):
                    self.controller.doctree.file(
                        record.path).locations.discard(node)
            targets = [n for n in healthy if n not in record.locations]
            if not targets:
                continue
            target = targets[0]
            try:
                yield from self.controller.replicate(record.path, target)
            except ManagementError:
                continue
            self.events.append(NodeEvent(
                at=self.sim.now, node=target, kind="re-replicated",
                detail=record.path))
