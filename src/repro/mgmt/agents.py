"""Management agents: the mobile code the controller dispatches (§3.1-3.2).

"Each administrative function is implemented in the form of a Java class,
which is termed an agent.  The brokers distributed on each node may download
the appropriate classes to perform the corresponding management tasks."

Every agent is a small object with a ``code_bytes`` size (the class file the
broker downloads, cached per type after first use -- the mobile-code
economy §3.2 highlights) and an ``execute(broker)`` generator that performs
node-local work in simulated time: disk I/O on the node, LAN transfers for
content fetches, a sliver of CPU.

Concrete agents implement §3.2-3.3's operations: delete, copy/replicate,
rename, status collection, content update (mutable-document consistency,
§4), and a verification pass.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..content import ContentItem

__all__ = ["Agent", "DeleteAgent", "CopyAgent", "RenameAgent",
           "StatusAgent", "UpdateAgent", "VerifyAgent"]

#: CPU seconds (reference clock) a broker spends bootstrapping an agent.
AGENT_STARTUP_CPU = 0.002


class Agent:
    """Base class for a management function shipped to a broker."""

    #: size of the downloaded class (bytes); subclasses override
    code_bytes: int = 2048

    @property
    def name(self) -> str:
        return type(self).__name__

    def execute(self, broker) -> Generator:
        """Run on the broker's node; a simulation generator returning the
        result detail (any JSON-able value)."""
        raise NotImplementedError
        yield  # pragma: no cover


class DeleteAgent(Agent):
    """Remove a document's local copy (§3.2: "one agent is responsible for
    deleting a file from the local file system of the node")."""

    code_bytes = 1536

    def __init__(self, path: str):
        self.path = path

    def execute(self, broker) -> Generator:
        server = broker.server
        yield from server.cpu.run(AGENT_STARTUP_CPU)
        if self.path not in server.store:
            return {"deleted": False, "reason": "no local copy"}
        item = server.store.get(self.path)
        # a metadata-sized disk operation removes the file
        yield from server.disk.write(4096)
        server.evict(self.path)
        return {"deleted": True, "bytes_freed": item.size_bytes}


class CopyAgent(Agent):
    """Install a copy of a document on this node.

    The bytes come from ``source`` (another backend, fetched over the LAN)
    or, when ``source`` is None, from the controller's master copy (an
    admin upload).  Used both for explicit placement and for §3.3
    auto-replication.
    """

    code_bytes = 3072

    def __init__(self, item: ContentItem, source: Optional[str] = None):
        self.item = item
        self.source = source

    def execute(self, broker) -> Generator:
        server = broker.server
        yield from server.cpu.run(AGENT_STARTUP_CPU)
        if self.item.path in server.store:
            return {"copied": False, "reason": "already present"}
        if self.source is not None:
            peer = broker.peer(self.source)
            if peer is None or not peer.server.holds(self.item.path):
                return {"copied": False,
                        "reason": f"source {self.source} lacks the file"}
            # read at the source, ship over the LAN, write locally
            yield from peer.server.disk.read(self.item.size_bytes)
            yield from broker.lan.transfer(peer.server.nic, server.nic,
                                           self.item.size_bytes)
        else:
            yield from broker.lan.transfer(broker.controller_nic, server.nic,
                                           self.item.size_bytes)
        yield from server.disk.write(self.item.size_bytes)
        server.place(self.item)
        return {"copied": True, "bytes": self.item.size_bytes}


class RenameAgent(Agent):
    """Rename a document's local copy (file-manager rename, §3.2)."""

    code_bytes = 1792

    def __init__(self, old_path: str, new_item: ContentItem):
        self.old_path = old_path
        self.new_item = new_item

    def execute(self, broker) -> Generator:
        server = broker.server
        yield from server.cpu.run(AGENT_STARTUP_CPU)
        if self.old_path not in server.store:
            return {"renamed": False, "reason": "no local copy"}
        yield from server.disk.write(4096)  # directory metadata update
        server.store.remove(self.old_path)
        server.cache.invalidate(self.old_path)
        server.place(self.new_item)
        return {"renamed": True}


class StatusAgent(Agent):
    """Collect the node's status (§3.1 monitoring)."""

    code_bytes = 2048

    def execute(self, broker) -> Generator:
        from .messages import StatusReport
        server = broker.server
        yield from server.cpu.run(AGENT_STARTUP_CPU / 2)
        return StatusReport(
            node=server.name,
            alive=server.alive,
            active_requests=server.active_requests,
            completed_requests=server.completed_requests,
            store_items=len(server.store),
            store_bytes=server.store.used_bytes,
            cache_hit_rate=server.cache.hit_rate,
            cpu_utilization=server.cpu.utilization(),
            disk_utilization=server.disk.utilization(),
            collected_at=broker.sim.now,
        )


class UpdateAgent(Agent):
    """Install a new version of a (mutable) document and invalidate the
    node's cached copy -- the §4 consistency path for replicated mutable
    content."""

    code_bytes = 2560

    def __init__(self, item: ContentItem):
        self.item = item

    def execute(self, broker) -> Generator:
        server = broker.server
        yield from server.cpu.run(AGENT_STARTUP_CPU)
        if self.item.path not in server.store:
            return {"updated": False, "reason": "no local copy"}
        yield from broker.lan.transfer(broker.controller_nic, server.nic,
                                       self.item.size_bytes)
        yield from server.disk.write(self.item.size_bytes)
        server.store.remove(self.item.path)
        server.place(self.item)
        server.cache.invalidate(self.item.path)
        return {"updated": True, "bytes": self.item.size_bytes}


class InventoryAgent(Agent):
    """Report the node's full content inventory (paths + bytes).

    One round trip per node instead of one per document -- the bulk
    building block for the controller's cluster-wide consistency audit.
    """

    code_bytes = 1664

    def execute(self, broker) -> Generator:
        server = broker.server
        # walking the local tree costs CPU proportional to the inventory
        yield from server.cpu.run(AGENT_STARTUP_CPU +
                                  2e-6 * len(server.store))
        return {"paths": set(server.store.paths()),
                "used_bytes": server.store.used_bytes}


class VerifyAgent(Agent):
    """Check whether the node's store agrees with the controller's view."""

    code_bytes = 1280

    def __init__(self, path: str, expected_present: bool):
        self.path = path
        self.expected_present = expected_present

    def execute(self, broker) -> Generator:
        server = broker.server
        yield from server.cpu.run(AGENT_STARTUP_CPU / 2)
        present = self.path in server.store
        return {"path": self.path, "present": present,
                "consistent": present == self.expected_present}
