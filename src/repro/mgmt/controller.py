"""The controller: the management brain on the distributor node (§3.1-3.3).

"One special daemon, called the controller, is responsible for receiving
requests from the administrator and then invoking brokers to perform the
delegated tasks by dispatching the corresponding agents.  The controller
resides on the distributor."

Every management mutation follows the same shape: dispatch agent(s), await
their results, and -- only on success -- update the URL table and the
document tree so the distributor routes to the new reality.  The controller
also implements the :class:`repro.core.loadbalance.ReplicationActuator`
protocol (``replicate``/``offload``), which is how §3.3's auto-replication
acts on the cluster.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..content import ContentItem, DocTree
from ..core.url_table import UrlTable, UrlTableError
from ..net import Nic
from ..sim import SimEvent, Simulator
from .agents import (Agent, CopyAgent, DeleteAgent, InventoryAgent,
                     RenameAgent, StatusAgent, UpdateAgent, VerifyAgent)
from .broker import Broker
from .durability import ControllerCrashed, item_to_payload
from .messages import AgentDispatch, AgentResult, StatusReport

__all__ = ["Controller", "ManagementError"]


class ManagementError(Exception):
    """A management operation could not be carried out."""


class Controller:
    """Receives admin commands, dispatches agents, updates routing state."""

    def __init__(self, sim: Simulator, nic: Nic,
                 url_table: UrlTable, doctree: DocTree, tracer=None):
        self.sim = sim
        self.nic = nic
        self.url_table = url_table
        self.doctree = doctree
        #: repro.obs tracer; every dispatch becomes an "agent" span
        self.tracer = tracer
        self.brokers: dict[str, Broker] = {}
        self._pending: dict[int, SimEvent] = {}
        #: applied to every dispatch that doesn't pass an explicit timeout;
        #: None preserves the original wait-forever behaviour
        self.default_timeout: Optional[float] = None
        #: data-plane health sink (a repro.core.overload BreakerBoard):
        #: dispatch timeouts are reported per node so the management and
        #: data planes agree on which backend is sick
        self.health_sink = None
        #: durable-state plumbing (a repro.mgmt.durability
        #: ControllerDurability); None preserves the original
        #: fire-and-forget, volatile-state behaviour byte for byte
        self.durability = None
        #: a crashed controller refuses dispatches until restart()
        self.alive = True
        self.crashes = 0
        self.restarts = 0
        self.dispatches = 0
        self.failures = 0
        self.timeouts = 0
        self.log: list[tuple[float, str, str, str]] = []  # (t, op, path, node)

    # -- broker wiring ------------------------------------------------------
    def register_broker(self, broker: Broker) -> None:
        if broker.name in self.brokers:
            raise ManagementError(f"broker {broker.name} already registered")
        self.brokers[broker.name] = broker
        self.sim.process(self._collect(broker), name=f"collect:{broker.name}")

    def _collect(self, broker: Broker) -> Generator:
        while True:
            result: AgentResult = yield broker.results.get()
            ev = self._pending.pop(result.dispatch_id, None)
            if ev is not None:
                ev.succeed(result)

    # -- crash / restart (durable-state contract) ---------------------------
    def crash(self) -> None:
        """Kill the controller process.

        Volatile state -- the pending-dispatch map -- is lost: every
        operation waiting on an agent result observes
        :class:`ControllerCrashed` at its next yield and unwinds without
        mutating routing state.  The WAL (``durability``), modelling a
        durable medium, survives.
        """
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        pending = len(self._pending)
        exc = ControllerCrashed(
            f"controller crashed at t={self.sim.now:.6f}")
        for dispatch_id in sorted(self._pending):
            ev = self._pending[dispatch_id]
            if not ev.triggered:
                ev.fail(exc)
                ev.defuse()
        self._pending.clear()
        if self.tracer is not None:
            self.tracer.point("recovery", "controller-crash",
                              pending=pending)

    def restart(self) -> None:
        """Bring a crashed controller back (state recovery is separate:
        run :func:`repro.mgmt.durability.recover` afterwards)."""
        if self.alive:
            return
        self.alive = True
        self.restarts += 1
        if self.tracer is not None:
            self.tracer.point("recovery", "controller-restart")

    def wal_apply(self, action: str, **payload) -> None:
        """Write-ahead one routing mutation (no-op without durability).

        Callers that mutate the URL table / document tree directly (the
        cluster monitor, ``reconcile_node``) log through here *before*
        mutating, preserving the write-ahead ordering.
        """
        if self.durability is not None:
            self.durability.log_apply(action, dict(payload))

    # -- the dispatch primitive ----------------------------------------------
    def execute(self, agent: Agent, node: str,
                timeout: Optional[float] = None) -> Generator:
        """Send one agent to one broker and await its result.

        With ``timeout`` set, a dispatch whose result never comes back
        (broker dead, agent lost in flight) resolves to a synthetic failed
        :class:`AgentResult` after ``timeout`` simulated seconds instead of
        blocking forever.
        """
        if not self.alive:
            raise ControllerCrashed(
                f"controller is down ({agent.name} -> {node})")
        broker = self.brokers.get(node)
        if broker is None:
            raise ManagementError(f"no broker registered for {node!r}")
        dispatch = AgentDispatch(agent=agent, target=node,
                                 sent_at=self.sim.now)
        done = self.sim.event()
        self._pending[dispatch.dispatch_id] = done
        self.dispatches += 1
        span = None
        if self.tracer is not None:
            span = self.tracer.begin("agent", agent.name, node=node,
                                     dispatch=dispatch.dispatch_id)
        if self.durability is not None:
            self.durability.log_dispatch(dispatch.dispatch_id,
                                         agent.name, node)
        broker.deliver(dispatch)
        if self.durability is not None:
            self.durability.boundary(f"deliver:{agent.name}@{node}")
        if timeout is None:
            timeout = self.default_timeout
        timed_out = False
        if timeout is None:
            result: AgentResult = yield done
        else:
            yield self.sim.any_of([done, self.sim.timeout(timeout)])
            if done.triggered:
                result = done.value
            else:
                timed_out = True
                self._pending.pop(dispatch.dispatch_id, None)
                self.timeouts += 1
                if self.health_sink is not None:
                    self.health_sink.record_mgmt_timeout(node)
                result = AgentResult(dispatch_id=dispatch.dispatch_id,
                                     node=node, agent_name=agent.name,
                                     ok=False, detail={"error": "timeout"},
                                     completed_at=self.sim.now)
        if not result.ok:
            self.failures += 1
        if span is not None:
            status = "ok" if result.ok else (
                "timeout" if timed_out else "failed")
            self.tracer.end(span, status=status)
        return result

    # -- content management operations (§3.2) ------------------------------
    def place(self, item: ContentItem, node: str,
              source: Optional[str] = None) -> Generator:
        """Install a document on ``node`` and make it routable there."""
        op_id = None
        if self.durability is not None:
            op_id = self.durability.log_intent("place", {
                "path": item.path, "node": node, "source": source,
                "item": item_to_payload(item)})
        try:
            result = yield from self.execute(
                CopyAgent(item, source=source), node)
            if not (result.ok and result.detail.get("copied")):
                raise ManagementError(
                    f"place {item.path} on {node} failed: {result.detail}")
            self.wal_apply("route-add", path=item.path, node=node,
                           item=item_to_payload(item))
            if item.path in self.url_table:
                self.url_table.add_location(item.path, node)
                self.doctree.file(item.path).locations.add(node)
            else:
                self.url_table.insert(item, {node})
                self.doctree.insert(item, {node})
        except (ManagementError, UrlTableError) as exc:
            if self.durability is not None and op_id is not None:
                self.durability.log_abort(op_id, str(exc))
            raise
        self.log.append((self.sim.now, "place", item.path, node))
        if self.durability is not None and op_id is not None:
            self.durability.log_commit(op_id)
        return result

    def replicate(self, path: str, node: str) -> Generator:
        """Copy an existing document to one more node (§3.3 and §1.2)."""
        record = self.url_table.lookup(path)
        if node in record.locations:
            return None
        source = sorted(record.locations)[0]
        op_id = None
        if self.durability is not None:
            op_id = self.durability.log_intent("replicate", {
                "path": path, "node": node, "source": source,
                "item": item_to_payload(record.item)})
        try:
            result = yield from self.execute(
                CopyAgent(record.item, source=source), node)
            if not (result.ok and result.detail.get("copied")):
                raise ManagementError(
                    f"replicate {path} to {node} failed: {result.detail}")
            self.wal_apply("route-add", path=path, node=node)
            self.url_table.add_location(path, node)
            self.doctree.file(path).locations.add(node)
        except (ManagementError, UrlTableError) as exc:
            if self.durability is not None and op_id is not None:
                self.durability.log_abort(op_id, str(exc))
            raise
        self.log.append((self.sim.now, "replicate", path, node))
        if self.durability is not None and op_id is not None:
            self.durability.log_commit(op_id)
        return result

    def offload(self, path: str, node: str) -> Generator:
        """Drop one node's copy (§3.3: 'decrease the content copies of that
        server').  Routing is updated *before* the physical delete so no
        request races onto the disappearing copy; the last copy is never
        offloaded."""
        op_id = None
        if self.durability is not None:
            op_id = self.durability.log_intent(
                "offload", {"path": path, "node": node})
        try:
            self.wal_apply("route-drop", path=path, node=node)
            self.url_table.remove_location(path, node)  # raises on last copy
            self.doctree.file(path).locations.discard(node)
            result = yield from self.execute(DeleteAgent(path), node)
            if not result.ok:
                raise ManagementError(
                    f"offload {path} from {node} failed: {result.detail}")
        except (ManagementError, UrlTableError) as exc:
            if self.durability is not None and op_id is not None:
                self.durability.log_abort(op_id, str(exc))
            raise
        self.log.append((self.sim.now, "offload", path, node))
        if self.durability is not None and op_id is not None:
            self.durability.log_commit(op_id)
        return result

    def remove_document(self, path: str) -> Generator:
        """Delete a document everywhere and unregister it."""
        record = self.url_table.lookup(path)
        nodes = sorted(record.locations)
        op_id = None
        if self.durability is not None:
            op_id = self.durability.log_intent(
                "remove", {"path": path, "nodes": nodes})
        for node in nodes:
            yield from self.execute(DeleteAgent(path), node)
        self.wal_apply("route-remove", path=path)
        self.url_table.remove(path)
        self.doctree.delete(path)
        self.log.append((self.sim.now, "remove", path, ",".join(nodes)))
        if self.durability is not None and op_id is not None:
            self.durability.log_commit(op_id)

    def rename_document(self, old: str, new_item: ContentItem) -> Generator:
        """Rename a document on every node holding it."""
        record = self.url_table.lookup(old)
        nodes = sorted(record.locations)
        op_id = None
        if self.durability is not None:
            op_id = self.durability.log_intent("rename", {
                "old": old, "path": new_item.path,
                "item": item_to_payload(new_item), "nodes": nodes})
        try:
            for node in nodes:
                result = yield from self.execute(
                    RenameAgent(old, new_item), node)
                if not (result.ok and result.detail.get("renamed")):
                    raise ManagementError(
                        f"rename {old} on {node} failed: {result.detail}")
            self.wal_apply("route-rename", old=old, path=new_item.path,
                           item=item_to_payload(new_item), nodes=nodes)
            self.url_table.remove(old)
            self.url_table.insert(new_item, set(nodes))
            self.doctree.delete(old)
            self.doctree.insert(new_item, set(nodes))
        except (ManagementError, UrlTableError) as exc:
            if self.durability is not None and op_id is not None:
                self.durability.log_abort(op_id, str(exc))
            raise
        self.log.append((self.sim.now, "rename", old, new_item.path))
        if self.durability is not None and op_id is not None:
            self.durability.log_commit(op_id)

    def update_content(self, item: ContentItem) -> Generator:
        """Push a new version of a mutable document to all replicas (§4)."""
        record = self.url_table.lookup(item.path)
        op_id = None
        if self.durability is not None:
            op_id = self.durability.log_intent("update", {
                "path": item.path, "item": item_to_payload(item),
                "nodes": sorted(record.locations)})
        try:
            for node in sorted(record.locations):
                result = yield from self.execute(UpdateAgent(item), node)
                if not (result.ok and result.detail.get("updated")):
                    raise ManagementError(
                        f"update {item.path} on {node} failed: "
                        f"{result.detail}")
            # the dispatch loop yields: a concurrent remove/rename may have
            # dropped the record while agents were in flight -- revalidate
            # before writing through the pre-yield handle
            if record.path not in self.url_table:
                raise ManagementError(
                    f"update {item.path}: document removed during update")
            self.wal_apply("route-size", path=item.path,
                           size_bytes=item.size_bytes)
            record.item.size_bytes = item.size_bytes
        except (ManagementError, UrlTableError) as exc:
            if self.durability is not None and op_id is not None:
                self.durability.log_abort(op_id, str(exc))
            raise
        self.log.append((self.sim.now, "update", item.path,
                         ",".join(sorted(record.locations))))
        if self.durability is not None and op_id is not None:
            self.durability.log_commit(op_id)

    # -- monitoring / consistency -----------------------------------------
    def status_all(self) -> Generator:
        """Gather a StatusReport from every broker, in parallel."""
        events = []
        for node in sorted(self.brokers):
            events.append(self.sim.process(
                self.execute(StatusAgent(), node)))
        results = yield self.sim.all_of(events)
        reports: dict[str, StatusReport] = {}
        for ev in events:
            result: AgentResult = ev.value
            reports[result.node] = result.detail
        return reports

    def audit(self) -> Generator:
        """Cluster-wide consistency audit: URL table vs physical stores.

        One InventoryAgent per node (in parallel), then a pure comparison.
        Returns a dict with two lists of (path, node) pairs:

        * ``missing``  -- routed there by the URL table, not on the node;
        * ``orphaned`` -- on the node, unknown to (or unrouted by) the
          URL table.
        """
        events = []
        for node in sorted(self.brokers):
            events.append(self.sim.process(
                self.execute(InventoryAgent(), node)))
        yield self.sim.all_of(events)
        # a node whose inventory failed (e.g. dispatch timeout) cannot be
        # audited this round; it is simply not counted
        inventories = {ev.value.node: ev.value.detail["paths"]
                       for ev in events if ev.value.ok}
        nodes = sorted(inventories)
        missing: list[tuple[str, str]] = []
        orphaned: list[tuple[str, str]] = []
        routed: dict[str, set[str]] = {n: set() for n in nodes}
        for record in self.url_table.records():
            for node in sorted(record.locations):
                if node in routed:
                    routed[node].add(record.path)
        for node in nodes:
            for path in sorted(routed[node] - inventories[node]):
                missing.append((path, node))
            for path in sorted(inventories[node] - routed[node]):
                orphaned.append((path, node))
        return {"missing": missing, "orphaned": orphaned,
                "nodes_audited": len(nodes)}

    def reconcile_node(self, node: str,
                       timeout: Optional[float] = None) -> Generator:
        """Reconcile one (typically just-recovered) node with the URL table.

        A node that crashed and came back may hold documents the monitor
        re-routed away from it while it was down (stored-but-unrouted), and
        the table may still route documents the node never finished
        receiving (routed-but-missing).  Both break INV003.  The repair:

        * stored + record still exists  -> re-add the location ("rejoined");
        * stored + record gone          -> DeleteAgent ("purged");
        * routed but missing, >1 copies -> drop this location ("dropped");
        * routed but missing, last copy -> remove the record ("lost").

        Returns the four lists, or ``{"error": ...}`` when the inventory
        itself failed (caller should retry).
        """
        result = yield from self.execute(InventoryAgent(), node,
                                         timeout=timeout)
        if not result.ok:
            return {"error": result.detail}
        stored: set[str] = set(result.detail["paths"])
        routed = {record.path for record in self.url_table.records()
                  if node in record.locations}
        summary: dict[str, list[str]] = {
            "rejoined": [], "purged": [], "dropped": [], "lost": []}
        for path in sorted(stored - routed):
            if path in self.url_table:
                self.wal_apply("route-add", path=path, node=node)
                self.url_table.add_location(path, node)
                if self.doctree.exists(path):
                    self.doctree.file(path).locations.add(node)
                summary["rejoined"].append(path)
            else:
                yield from self.execute(DeleteAgent(path), node,
                                        timeout=timeout)
                summary["purged"].append(path)
        for path in sorted(routed - stored):
            locations = self.url_table.locations(path)
            if len(locations) > 1:
                self.wal_apply("route-drop", path=path, node=node)
                self.url_table.remove_location(path, node)
                if self.doctree.exists(path):
                    self.doctree.file(path).locations.discard(node)
                summary["dropped"].append(path)
            else:
                self.wal_apply("route-remove", path=path)
                self.url_table.remove(path)
                if self.doctree.exists(path):
                    self.doctree.delete(path)
                summary["lost"].append(path)
        if any(summary.values()):
            self.log.append((self.sim.now, "reconcile", node,
                             ",".join(f"{k}={len(v)}"
                                      for k, v in sorted(summary.items()))))
        return summary

    def verify_placement(self, path: str) -> Generator:
        """Cross-check the URL table against every node's store."""
        record = self.url_table.lookup(path)
        inconsistencies = []
        for node in sorted(self.brokers):
            expected = node in record.locations
            result = yield from self.execute(
                VerifyAgent(path, expected_present=expected), node)
            if not result.detail["consistent"]:
                inconsistencies.append(node)
        return inconsistencies
