"""Management-plane message types.

The administration framework (§3.1, from the authors' LISA'98 system) moves
three kinds of traffic over the cluster LAN: agent dispatches (the mobile
code plus its parameters), agent results, and status reports.  Messages are
plain dataclasses; their ``wire_bytes`` drive the simulated transfers.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Optional

__all__ = ["AgentDispatch", "AgentResult", "StatusReport",
           "DISPATCH_HEADER_BYTES", "RESULT_BYTES", "STATUS_REPORT_BYTES"]

#: Envelope cost of a dispatch message (headers, serialized parameters).
DISPATCH_HEADER_BYTES = 256
#: An agent result message.
RESULT_BYTES = 192
#: A status report message.
STATUS_REPORT_BYTES = 384

_dispatch_ids = itertools.count(1)


@dataclasses.dataclass(slots=True)
class AgentDispatch:
    """Controller -> broker: run this agent on your node."""

    agent: Any                      # an agents.Agent instance
    target: str                     # broker/node name
    dispatch_id: int = dataclasses.field(
        default_factory=lambda: next(_dispatch_ids))
    sent_at: float = 0.0

    @property
    def wire_bytes(self) -> int:
        """Envelope plus mobile code, unless the broker has the class
        cached (the broker decides; this is the worst-case size)."""
        return DISPATCH_HEADER_BYTES + self.agent.code_bytes


@dataclasses.dataclass(slots=True)
class AgentResult:
    """Broker -> controller: the agent finished (or failed)."""

    dispatch_id: int
    node: str
    agent_name: str
    ok: bool
    detail: Any = None
    completed_at: float = 0.0

    @property
    def wire_bytes(self) -> int:
        return RESULT_BYTES


@dataclasses.dataclass(slots=True)
class StatusReport:
    """What a StatusAgent collects from its node (§3.1: brokers 'monitor
    the status (e.g., load situation, failure) of the managed node')."""

    node: str
    alive: bool
    active_requests: int
    completed_requests: int
    store_items: int
    store_bytes: int
    cache_hit_rate: float
    cpu_utilization: float
    disk_utilization: float
    collected_at: float = 0.0

    @property
    def wire_bytes(self) -> int:
        return STATUS_REPORT_BYTES
