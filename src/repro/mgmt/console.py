"""The remote console: the administrator's single-system-image view (§3.2).

"We first extended the remote console to produce a single, coherent view of
the Web document tree, comprised of portions that actually reside on several
different server nodes.  The remote console provides a file manager
interface containing methods for inserting, deleting, and renaming files or
directories.  With the GUI, the administrator can easily assign different
content to different servers..."

The GUI itself is out of scope (a Java applet in the paper); this class is
its programmatic surface: every file-manager verb, plus ``render`` views of
the tree.  All mutating verbs are simulation generators because they ride
through the controller's agents; ``run`` is a convenience that executes one
verb to completion on a quiescent simulator.
"""

from __future__ import annotations

import dataclasses
from typing import Generator, Optional

from ..content import ContentItem, DocTreeError
from .controller import Controller, ManagementError

__all__ = ["RemoteConsole"]


class RemoteConsole:
    """File-manager facade over the controller."""

    def __init__(self, controller: Controller):
        self.controller = controller

    # -- views ---------------------------------------------------------------
    def view(self, path: str = "/", max_entries: int = 200) -> str:
        """The coherent tree rendering the GUI displayed."""
        return self.controller.doctree.render(path, max_entries=max_entries)

    def list_dir(self, path: str = "/") -> list[str]:
        return self.controller.doctree.list_dir(path)

    def locations_of(self, path: str) -> set[str]:
        return self.controller.doctree.locations_of(path)

    def exists(self, path: str) -> bool:
        return self.controller.doctree.exists(path)

    # -- file-manager verbs (generators) -------------------------------------
    def insert_file(self, item: ContentItem,
                    nodes: set[str]) -> Generator:
        """Upload a new document and place it on the chosen nodes."""
        if not nodes:
            raise ManagementError("insert_file needs at least one node")
        ordered = sorted(nodes)
        yield from self.controller.place(item, ordered[0])
        for node in ordered[1:]:
            yield from self.controller.replicate(item.path, node)

    def delete_file(self, path: str) -> Generator:
        """Delete a document from every node that holds it."""
        yield from self.controller.remove_document(path)

    def rename_file(self, old: str, new_path: str) -> Generator:
        """Rename a document; replicas follow."""
        record = self.controller.url_table.lookup(old)
        new_item = dataclasses.replace(record.item, path=new_path)
        yield from self.controller.rename_document(old, new_item)

    def assign(self, path: str, nodes: set[str]) -> Generator:
        """Make the replica set of ``path`` exactly ``nodes`` (§3.2: "assign
        different content to different servers").  Copies are added before
        stale ones are removed so the document never becomes unroutable."""
        if not nodes:
            raise ManagementError("assign needs at least one node")
        current = self.controller.url_table.locations(path)
        for node in sorted(nodes - current):
            yield from self.controller.replicate(path, node)
        for node in sorted(current - nodes):
            yield from self.controller.offload(path, node)

    def replicate(self, path: str, node: str) -> Generator:
        yield from self.controller.replicate(path, node)

    def update_file(self, item: ContentItem) -> Generator:
        """Push a new version of a mutable document to all replicas."""
        yield from self.controller.update_content(item)

    # -- convenience ------------------------------------------------------
    def run(self, operation: Generator) -> None:
        """Execute one console verb to completion on the simulator."""
        sim = self.controller.sim
        proc = sim.process(operation, name="console-op")
        sim.run()
        if proc._exception is not None:  # surface failures to the caller
            raise proc._exception
