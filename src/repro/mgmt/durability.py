"""Management-plane durability: controller WAL, checkpoints, recovery.

The paper's controller (§3.1-3.3) is the single authority for content
placement, but the original system treats its state as ephemeral: a crash
mid-placement strands replicas, leaks URL-table intents, or double-applies
a placement on restart.  This module gives the controller a durable state
contract:

* **Write-ahead log** -- every state mutation (placement decisions,
  URL-table updates, dispatch intents) is appended as a checksummed
  :class:`WalRecord` *before* the in-memory tables change.  Record kinds:

  - ``intent``   an operation has been decided (op + args, open until a
                 matching ``commit``/``abort``);
  - ``dispatch`` an agent is about to be handed to a broker;
  - ``apply``    a routing mutation is about to be applied to the URL
                 table / document tree (idempotent-apply contract: the
                 same ``apply`` may be replayed any number of times);
  - ``commit`` / ``abort``  the intent reached a terminal state.

* **Checkpoints** -- periodically the live tables are snapshotted into the
  log head and the record list truncated, so replay cost stays bounded.

* **Recovery** -- :func:`recover` replays checkpoint+WAL, recomputes the
  set of open intents, then resolves each one against node-agent truth
  (VerifyAgent probes, re-dispatched Delete/Update/Rename agents, and a
  final audit + :meth:`Controller.reconcile_node` anti-entropy pass).
  Every resolution is emitted as a reasoned ``recovery`` trace event via
  :mod:`repro.obs`.

* **Crash points** -- every WAL append and broker hand-off is a numbered
  *boundary*.  A :class:`CrashPlan` kills the controller at an exact
  boundary index; because the simulation prefix up to any boundary is
  deterministic, boundary *k* names the same instant in every run, which
  is what makes exhaustive crash-point exploration
  (:mod:`repro.chaos.crashpoints`) byte-reproducible.

Everything is strictly gated: a controller with ``durability=None``
(the default) behaves byte-identically to the pre-durability code.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Generator, Optional

from ..content import ContentItem, ContentType, DocTree, Priority
from ..core.url_table import UrlTable

__all__ = [
    "ControllerCrashed",
    "ControllerDurability",
    "ControllerWal",
    "CrashPlan",
    "DurabilityConfig",
    "RecoveryReport",
    "WalCorruption",
    "WalRecord",
    "item_from_payload",
    "item_to_payload",
    "recover",
    "replay_apply",
    "snapshot_records",
]


class ControllerCrashed(Exception):
    """The controller process died; in-flight operations must not proceed."""


class WalCorruption(Exception):
    """A WAL record failed its checksum or cannot be replayed."""


# -- payload helpers --------------------------------------------------------

def item_to_payload(item: ContentItem) -> dict[str, Any]:
    """A JSON-able, checksummable rendering of a content item."""
    return {
        "path": item.path,
        "size_bytes": item.size_bytes,
        "ctype": item.ctype.value,
        "priority": int(item.priority),
        "mutable": item.mutable,
        "cpu_work": item.cpu_work,
    }


def item_from_payload(payload: dict[str, Any]) -> ContentItem:
    return ContentItem(
        path=payload["path"],
        size_bytes=payload["size_bytes"],
        ctype=ContentType(payload["ctype"]),
        priority=Priority(payload["priority"]),
        mutable=payload.get("mutable", False),
        cpu_work=payload.get("cpu_work", 0.0),
    )


def _canonical(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def record_checksum(lsn: int, kind: str, payload: dict[str, Any]) -> str:
    digest = hashlib.sha256(
        _canonical([lsn, kind, payload]).encode("utf-8")).hexdigest()
    return digest[:16]


# -- the log ----------------------------------------------------------------

@dataclasses.dataclass(frozen=True, slots=True)
class WalRecord:
    """One durable log entry; ``checksum`` covers (lsn, kind, payload)."""

    lsn: int
    kind: str
    payload: dict[str, Any]
    checksum: str

    def verify(self) -> None:
        expected = record_checksum(self.lsn, self.kind, self.payload)
        if expected != self.checksum:
            raise WalCorruption(
                f"lsn {self.lsn} ({self.kind}): checksum mismatch "
                f"{self.checksum!r} != {expected!r}")

    def to_dict(self) -> dict[str, Any]:
        return {"lsn": self.lsn, "kind": self.kind,
                "payload": self.payload, "checksum": self.checksum}


class ControllerWal:
    """An in-simulation write-ahead log: checkpoint head + record tail.

    The log models a durable medium: it survives a controller crash
    (which only wipes the controller's *volatile* state -- pending
    dispatch events and its right to mutate the tables).
    """

    def __init__(self) -> None:
        self.checkpoint: Optional[dict[str, Any]] = None
        self.records: list[WalRecord] = []
        self.next_lsn = 1
        self.appends = 0
        self.truncations = 0

    def append(self, kind: str, payload: dict[str, Any]) -> WalRecord:
        record = WalRecord(
            lsn=self.next_lsn, kind=kind, payload=payload,
            checksum=record_checksum(self.next_lsn, kind, payload))
        self.records.append(record)
        self.next_lsn += 1
        self.appends += 1
        return record

    def set_checkpoint(self, snapshot: dict[str, Any]) -> None:
        """Install a snapshot and truncate the record tail."""
        self.checkpoint = snapshot
        self.records = []
        self.truncations += 1

    def replay(self) -> tuple[Optional[dict[str, Any]], tuple[WalRecord, ...]]:
        """Verify every record checksum and return (checkpoint, records)."""
        for record in self.records:
            record.verify()
        return self.checkpoint, tuple(self.records)


# -- snapshots & the idempotent-apply contract ------------------------------

def snapshot_records(url_table: UrlTable) -> list[dict[str, Any]]:
    """A canonical (sorted, JSON-able) rendering of the routing state."""
    rows = []
    for record in url_table.records():
        row = item_to_payload(record.item)
        row["locations"] = sorted(record.locations)
        rows.append(row)
    rows.sort(key=lambda row: row["path"])
    return rows


def replay_apply(url_table: UrlTable, doctree: DocTree,
                 action: str, payload: dict[str, Any]) -> bool:
    """Apply one routing mutation idempotently.

    Every action is an *ensure* operation: replaying it against a table
    that already reflects it (or reflects any later history) is a no-op.
    Returns True when state changed.  Raises :class:`WalCorruption` for
    an apply that cannot be interpreted (e.g. ``route-add`` for an
    unknown document with no item payload).
    """
    if action == "route-add":
        path, node = payload["path"], payload["node"]
        if path in url_table:
            if node in url_table.locations(path):
                return False
            url_table.add_location(path, node)
            if doctree.exists(path):
                doctree.file(path).locations.add(node)
            return True
        item_payload = payload.get("item")
        if item_payload is None:
            # a location-only add for a document this table no longer
            # knows: a later record in the suffix removed it, so the
            # add is moot (verify_consistency catches real corruption)
            return False
        item = item_from_payload(item_payload)
        url_table.insert(item, {node})
        doctree.insert(item, {node})
        return True
    if action == "route-drop":
        path, node = payload["path"], payload["node"]
        if path not in url_table:
            return False
        locations = url_table.locations(path)
        if node not in locations or len(locations) <= 1:
            return False
        url_table.remove_location(path, node)
        if doctree.exists(path):
            doctree.file(path).locations.discard(node)
        return True
    if action == "route-remove":
        path = payload["path"]
        if path not in url_table:
            return False
        url_table.remove(path)
        if doctree.exists(path):
            doctree.delete(path)
        return True
    if action == "route-rename":
        old, item_payload = payload["old"], payload["item"]
        new_item = item_from_payload(item_payload)
        if old in url_table:
            record = url_table.remove(old)
            locations = set(record.locations)
            if doctree.exists(old):
                doctree.delete(old)
        elif new_item.path in url_table:
            return False
        else:
            locations = set(payload["nodes"])
        url_table.insert(new_item, locations)
        if not doctree.exists(new_item.path):
            doctree.insert(new_item, locations)
        return True
    if action == "route-size":
        path, size = payload["path"], payload["size_bytes"]
        if path not in url_table:
            return False
        record = url_table.record(path)
        if record.item.size_bytes == size:
            return False
        record.item.size_bytes = size
        return True
    raise WalCorruption(f"unknown apply action {action!r}")


# -- configuration / crash plans --------------------------------------------

@dataclasses.dataclass(slots=True)
class DurabilityConfig:
    """Tuning for the WAL + recovery machinery."""

    #: take a checkpoint after this many appends since the last one
    checkpoint_every: int = 24
    #: settle time at the start of recovery so agents that were in
    #: flight at the crash land (their results are discarded) before
    #: intent resolution probes node truth
    recovery_grace: float = 0.5
    #: default delay between a crash and the harness restarting the
    #: controller (crash-point explorer / MgmtCrash default)
    restart_delay: float = 0.6


@dataclasses.dataclass(slots=True)
class CrashPlan:
    """Kill the controller at exactly one WAL/dispatch boundary."""

    at_boundary: int
    fired: bool = False
    fired_at: Optional[float] = None
    descriptor: str = ""


class ControllerDurability:
    """The durable half of a controller: WAL, checkpoints, crash plumbing.

    Attach with :meth:`attach`, which takes the initial checkpoint of the
    live tables.  The object models the durable medium, so it survives
    :meth:`Controller.crash` -- only the controller's volatile state
    (pending dispatches) is lost.
    """

    def __init__(self, config: Optional[DurabilityConfig] = None):
        self.config = config if config is not None else DurabilityConfig()
        self.wal = ControllerWal()
        self.controller = None
        #: monotone operation ids; persisted via checkpoints
        self.next_op_id = 1
        #: live map of open intents (rebuilt from the WAL on recovery)
        self.open: dict[int, dict[str, Any]] = {}
        #: crash-point boundary bookkeeping
        self.boundaries = 0
        self.boundary_log: list[str] = []
        self.crash_plan: Optional[CrashPlan] = None
        self.checkpoints = 0
        self.commits = 0
        self.aborts = 0
        self._since_checkpoint = 0
        self.last_recovery: Optional["RecoveryReport"] = None

    # -- wiring ----------------------------------------------------------
    def attach(self, controller) -> "ControllerDurability":
        """Bind to a controller and take the initial checkpoint."""
        self.controller = controller
        controller.durability = self
        self.take_checkpoint()
        return self

    # -- boundaries ------------------------------------------------------
    def boundary(self, descriptor: str) -> None:
        """Mark one crash point; fire the crash plan if it names it."""
        self.boundaries += 1
        self.boundary_log.append(descriptor)
        plan = self.crash_plan
        if plan is None or plan.fired:
            return
        if self.boundaries == plan.at_boundary:
            plan.fired = True
            plan.descriptor = descriptor
            if self.controller is not None:
                plan.fired_at = self.controller.sim.now
                self.controller.crash()
            raise ControllerCrashed(
                f"crash point {plan.at_boundary} ({descriptor})")

    # -- logging primitives ---------------------------------------------
    def log_intent(self, op: str, payload: dict[str, Any]) -> int:
        op_id = self.next_op_id
        self.next_op_id += 1
        body = {"op_id": op_id, "op": op}
        body.update(payload)
        self.open[op_id] = body
        self._append("intent", body, f"wal:intent/{op}#{op_id}")
        return op_id

    def log_dispatch(self, dispatch_id: int, agent: str, node: str) -> None:
        self._append(
            "dispatch",
            {"dispatch_id": dispatch_id, "agent": agent, "node": node},
            f"wal:dispatch/{agent}@{node}")

    def log_apply(self, action: str, payload: dict[str, Any]) -> None:
        body = {"action": action}
        body.update(payload)
        self._append("apply", body, f"wal:apply/{action}:{payload['path']}")

    def log_commit(self, op_id: int, resolution: str = "") -> None:
        self.open.pop(op_id, None)
        self.commits += 1
        payload: dict[str, Any] = {"op_id": op_id}
        if resolution:
            payload["resolution"] = resolution
        self._append("commit", payload, f"wal:commit#{op_id}")
        self.maybe_checkpoint()

    def log_abort(self, op_id: int, reason: str) -> None:
        self.open.pop(op_id, None)
        self.aborts += 1
        self._append("abort", {"op_id": op_id, "reason": reason},
                     f"wal:abort#{op_id}")
        self.maybe_checkpoint()

    def _append(self, kind: str, payload: dict[str, Any],
                descriptor: str) -> None:
        self.wal.append(kind, payload)
        self._since_checkpoint += 1
        self.boundary(descriptor)

    # -- checkpoints -----------------------------------------------------
    def maybe_checkpoint(self) -> None:
        if self._since_checkpoint >= self.config.checkpoint_every:
            self.take_checkpoint()
            self.boundary("wal:checkpoint")

    def take_checkpoint(self) -> None:
        if self.controller is None:
            raise ValueError("durability is not attached to a controller")
        snapshot = {
            "records": snapshot_records(self.controller.url_table),
            "open_intents": [self.open[op_id]
                             for op_id in sorted(self.open)],
            "next_op_id": self.next_op_id,
            "lsn": self.wal.next_lsn - 1,
        }
        self.wal.set_checkpoint(snapshot)
        self.checkpoints += 1
        self._since_checkpoint = 0

    # -- replay ----------------------------------------------------------
    def open_intents_from_wal(self) -> list[dict[str, Any]]:
        """Recompute the open-intent set from durable state alone."""
        checkpoint, records = self.wal.replay()
        intents: dict[int, dict[str, Any]] = {}
        if checkpoint is not None:
            for intent in checkpoint["open_intents"]:
                intents[intent["op_id"]] = intent
        for record in records:
            if record.kind == "intent":
                intents[record.payload["op_id"]] = record.payload
            elif record.kind in ("commit", "abort"):
                intents.pop(record.payload["op_id"], None)
        return [intents[op_id] for op_id in sorted(intents)]

    def replay_state(self) -> tuple[UrlTable, DocTree]:
        """Rebuild routing state from scratch: checkpoint + applies."""
        table = UrlTable()
        doctree = DocTree()
        checkpoint, records = self.wal.replay()
        if checkpoint is not None:
            for row in checkpoint["records"]:
                item = item_from_payload(row)
                locations = set(row["locations"])
                table.insert(item, locations)
                doctree.insert(item, locations)
        for record in records:
            if record.kind == "apply":
                payload = dict(record.payload)
                action = payload.pop("action")
                replay_apply(table, doctree, action, payload)
        return table, doctree

    def restore_tables(self, url_table: UrlTable, doctree: DocTree) -> int:
        """Rebuild ``url_table``/``doctree`` in place from durable state.

        Used when the volatile tables themselves are gone (a standby
        distributor taking over).  Returns the number of records
        restored.
        """
        replayed, replayed_tree = self.replay_state()
        for path in [record.path for record in url_table.records()]:
            url_table.remove(path)
        for path in list(doctree.files()):
            if doctree.exists(path):
                doctree.delete(path)
        count = 0
        for record in replayed.records():
            locations = set(record.locations)
            url_table.insert(record.item, locations)
            if doctree.exists(record.path):
                doctree.file(record.path).locations.update(locations)
            else:
                doctree.insert(record.item, locations)
            count += 1
        del replayed_tree
        return count

    def verify_consistency(self) -> list[str]:
        """Check the live tables against a from-scratch WAL replay.

        Proves the idempotent-apply contract end to end: the durable log
        alone reconstructs exactly the live routing state (no duplicate
        and no lost placements).  Returns a sorted list of discrepancy
        descriptions (empty = consistent).
        """
        if self.controller is None:
            raise ValueError("durability is not attached to a controller")
        live = {row["path"]: row
                for row in snapshot_records(self.controller.url_table)}
        replayed_table, _tree = self.replay_state()
        replayed = {row["path"]: row
                    for row in snapshot_records(replayed_table)}
        problems = []
        for path in sorted(set(live) | set(replayed)):
            if path not in replayed:
                problems.append(f"{path}: live but not in WAL replay")
            elif path not in live:
                problems.append(f"{path}: in WAL replay but not live")
            elif live[path] != replayed[path]:
                problems.append(
                    f"{path}: live {_canonical(live[path])} != "
                    f"replay {_canonical(replayed[path])}")
        return problems

    def counters(self) -> dict[str, int]:
        return {
            "appends": self.wal.appends,
            "truncations": self.wal.truncations,
            "records": len(self.wal.records),
            "checkpoints": self.checkpoints,
            "commits": self.commits,
            "aborts": self.aborts,
            "open_intents": len(self.open),
            "boundaries": self.boundaries,
        }


# -- recovery ---------------------------------------------------------------

@dataclasses.dataclass(slots=True)
class RecoveryReport:
    """What one recovery pass replayed, resolved, and concluded."""

    checkpoint_lsn: int
    records_replayed: int
    applies_replayed: int
    open_intents: int
    resolutions: list[dict[str, Any]]
    audit: dict[str, Any]
    reconciled_nodes: list[str]
    consistency: list[str]
    clean: bool

    def action_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for resolution in self.resolutions:
            action = resolution["action"]
            counts[action] = counts.get(action, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict[str, Any]:
        return {
            "checkpoint_lsn": self.checkpoint_lsn,
            "records_replayed": self.records_replayed,
            "applies_replayed": self.applies_replayed,
            "open_intents": self.open_intents,
            "resolutions": self.resolutions,
            "actions": self.action_counts(),
            "audit": self.audit,
            "reconciled_nodes": self.reconciled_nodes,
            "consistency": self.consistency,
            "clean": self.clean,
        }


def _trace_resolution(controller, resolution: dict[str, Any]) -> None:
    if controller.tracer is not None:
        controller.tracer.point(
            "recovery", "resolve",
            op=resolution["op"], op_id=resolution["op_id"],
            action=resolution["action"], reason=resolution["reason"])


def _apply_and_log(controller, action: str,
                   payload: dict[str, Any]) -> None:
    """WAL the apply, then mutate the live tables idempotently."""
    durability = controller.durability
    if durability is not None:
        durability.log_apply(action, payload)
    replay_apply(controller.url_table, controller.doctree, action, payload)


def _resolve_placement(controller, intent, timeout) -> Generator:
    """place/replicate: roll forward iff the copy materialized."""
    from .agents import VerifyAgent
    path, node = intent["path"], intent["node"]
    routed = (path in controller.url_table
              and node in controller.url_table.locations(path))
    if routed:
        return "already-applied", "routing already reflects the copy"
    result = yield from controller.execute(
        VerifyAgent(path, expected_present=True), node, timeout=timeout)
    if not result.ok:
        return "deferred", f"cannot probe {node}: {result.detail}"
    if result.detail["present"]:
        payload: dict[str, Any] = {"path": path, "node": node}
        if intent.get("item") is not None:
            payload["item"] = intent["item"]
        _apply_and_log(controller, "route-add", payload)
        return "rolled-forward", f"copy found on {node}; routing re-added"
    return "rolled-back", f"no copy on {node}; placement abandoned"


def _resolve_offload(controller, intent, timeout) -> Generator:
    """offload: the delete is re-driven only if routing already dropped."""
    from .agents import DeleteAgent, VerifyAgent
    path, node = intent["path"], intent["node"]
    still_routed = (path in controller.url_table
                    and node in controller.url_table.locations(path))
    if still_routed:
        return ("rolled-back",
                f"routing still includes {node}; copy kept")
    result = yield from controller.execute(
        VerifyAgent(path, expected_present=False), node, timeout=timeout)
    if not result.ok:
        return "deferred", f"cannot probe {node}: {result.detail}"
    if not result.detail["present"]:
        return "already-applied", f"copy already gone from {node}"
    result = yield from controller.execute(
        DeleteAgent(path), node, timeout=timeout)
    if not result.ok:
        return "deferred", f"delete on {node} failed: {result.detail}"
    return "rolled-forward", f"re-drove delete of {path} on {node}"


def _resolve_remove(controller, intent, timeout) -> Generator:
    """remove: always roll forward (deletes may have partially run)."""
    from .agents import DeleteAgent, VerifyAgent
    path = intent["path"]
    for node in intent["nodes"]:
        result = yield from controller.execute(
            VerifyAgent(path, expected_present=False), node,
            timeout=timeout)
        if not result.ok:
            return "deferred", f"cannot probe {node}: {result.detail}"
        if not result.detail["present"]:
            continue
        result = yield from controller.execute(
            DeleteAgent(path), node, timeout=timeout)
        if not result.ok:
            return "deferred", f"delete on {node} failed: {result.detail}"
    if path in controller.url_table:
        _apply_and_log(controller, "route-remove", {"path": path})
    return "rolled-forward", f"removal of {path} completed everywhere"


def _resolve_update(controller, intent, timeout) -> Generator:
    """update: re-push the new version to every current replica."""
    from .agents import UpdateAgent
    path = intent["path"]
    if path not in controller.url_table:
        return "rolled-back", f"{path} no longer routed; update dropped"
    item = item_from_payload(intent["item"])
    for node in sorted(controller.url_table.locations(path)):
        result = yield from controller.execute(
            UpdateAgent(item), node, timeout=timeout)
        if not result.ok:
            return "deferred", f"update on {node} failed: {result.detail}"
    _apply_and_log(controller, "route-size",
                   {"path": path, "size_bytes": item.size_bytes})
    return "rolled-forward", f"re-pushed {path} to all replicas"


def _resolve_rename(controller, intent, timeout) -> Generator:
    """rename: drive every node to the new name, then fix routing."""
    from .agents import RenameAgent, VerifyAgent
    old = intent["old"]
    new_item = item_from_payload(intent["item"])
    if old not in controller.url_table \
            and new_item.path in controller.url_table:
        return "already-applied", "routing already reflects the rename"
    for node in intent["nodes"]:
        result = yield from controller.execute(
            VerifyAgent(new_item.path, expected_present=True), node,
            timeout=timeout)
        if not result.ok:
            return "deferred", f"cannot probe {node}: {result.detail}"
        if result.detail["present"]:
            continue
        result = yield from controller.execute(
            RenameAgent(old, new_item), node, timeout=timeout)
        if not result.ok:
            return "deferred", f"rename on {node} failed: {result.detail}"
    _apply_and_log(controller, "route-rename",
                   {"old": old, "path": new_item.path,
                    "item": intent["item"], "nodes": intent["nodes"]})
    return "rolled-forward", f"renamed {old} -> {new_item.path}"


_RESOLVERS = {
    "place": _resolve_placement,
    "replicate": _resolve_placement,
    "offload": _resolve_offload,
    "remove": _resolve_remove,
    "update": _resolve_update,
    "rename": _resolve_rename,
}


def recover(controller, *, timeout: Optional[float] = 1.0,
            grace: Optional[float] = None,
            run_audit: bool = True) -> Generator:
    """Replay durable state and resolve open intents against node truth.

    A simulation generator (run it under ``sim.process``).  Returns a
    :class:`RecoveryReport`.  The controller must be alive (restarted)
    and have durability attached.
    """
    durability = controller.durability
    if durability is None:
        raise ValueError("controller has no durability attached")
    if not controller.alive:
        raise ValueError("restart the controller before recovering")
    if controller.tracer is not None:
        controller.tracer.point("recovery", "begin",
                                boundaries=durability.boundaries)
    if grace is None:
        grace = durability.config.recovery_grace
    if grace > 0:
        # let agents that were in flight at the crash land; their
        # results are discarded (their dispatch ids are no longer
        # pending), so probes below see settled node truth
        yield controller.sim.timeout(grace)

    checkpoint, records = durability.wal.replay()
    checkpoint_lsn = checkpoint["lsn"] if checkpoint is not None else 0
    applies = 0
    for record in records:
        if record.kind == "apply":
            payload = dict(record.payload)
            action = payload.pop("action")
            replay_apply(controller.url_table, controller.doctree,
                         action, payload)
            applies += 1
    open_intents = durability.open_intents_from_wal()
    # the durable truth replaces whatever the volatile map held
    durability.open = {intent["op_id"]: intent for intent in open_intents}
    if controller.tracer is not None:
        controller.tracer.point("recovery", "replay",
                                checkpoint_lsn=checkpoint_lsn,
                                records=len(records), applies=applies,
                                open_intents=len(open_intents))

    resolutions: list[dict[str, Any]] = []
    for intent in open_intents:
        resolver = _RESOLVERS.get(intent["op"])
        if resolver is None:
            action, reason = "deferred", f"unknown op {intent['op']!r}"
        else:
            action, reason = yield from resolver(controller, intent,
                                                 timeout)
        resolution = {"op_id": intent["op_id"], "op": intent["op"],
                      "action": action, "reason": reason}
        resolutions.append(resolution)
        _trace_resolution(controller, resolution)
        if action in ("rolled-forward", "already-applied"):
            durability.log_commit(intent["op_id"], resolution=action)
        elif action == "rolled-back":
            durability.log_abort(intent["op_id"], f"recovery: {reason}")
        # "deferred" leaves the intent open for the next pass

    audit: dict[str, Any] = {"missing": [], "orphaned": [],
                             "nodes_audited": 0}
    reconciled: list[str] = []
    if run_audit:
        audit = yield from controller.audit()
        dirty = sorted({node for _path, node in audit["missing"]}
                       | {node for _path, node in audit["orphaned"]})
        for node in dirty:
            summary = yield from controller.reconcile_node(
                node, timeout=timeout)
            if "error" not in summary:
                reconciled.append(node)
        if dirty:
            audit = yield from controller.audit()
        if controller.tracer is not None:
            controller.tracer.point(
                "recovery", "audit",
                missing=len(audit["missing"]),
                orphaned=len(audit["orphaned"]),
                reconciled=len(reconciled))

    consistency = durability.verify_consistency()
    report = RecoveryReport(
        checkpoint_lsn=checkpoint_lsn,
        records_replayed=len(records),
        applies_replayed=applies,
        open_intents=len(open_intents),
        resolutions=resolutions,
        audit={"missing": len(audit["missing"]),
               "orphaned": len(audit["orphaned"]),
               "nodes_audited": audit["nodes_audited"]},
        reconciled_nodes=reconciled,
        consistency=consistency,
        clean=(not audit["missing"] and not audit["orphaned"]
               and not consistency and not durability.open),
    )
    durability.last_recovery = report
    if controller.tracer is not None:
        controller.tracer.point("recovery", "done",
                                clean=report.clean,
                                resolutions=len(resolutions))
    return report
