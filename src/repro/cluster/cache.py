"""Byte-capacity LRU cache modelling a node's in-memory content cache.

Figure 2's result rests on this component: "in the content partition scheme
each server only poses part of the content, so that each server sees a
smaller set of distinct requests and the working set size is reduced.  This
greatly increases performance due to the improved hit rates in the memory
cache."

Whole objects are cached (the unit the web server serves).  Objects larger
than ``bypass_fraction`` of the capacity bypass the cache entirely -- one
video must not evict the node's whole working set, which matches how OS page
caches behave for streaming reads in practice.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["LruCache"]


class LruCache:
    """LRU over (key -> size_bytes) with a byte-capacity bound."""

    def __init__(self, capacity_bytes: int, bypass_fraction: float = 0.25,
                 name: str = ""):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if not 0.0 < bypass_fraction <= 1.0:
            raise ValueError("bypass_fraction must be in (0, 1]")
        self.capacity_bytes = capacity_bytes
        self.bypass_bytes = int(capacity_bytes * bypass_fraction)
        self.name = name
        self._entries: OrderedDict[str, int] = OrderedDict()
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.bypasses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def lookups(self) -> int:
        """Total cache probes (monotone; telemetry samples this as a
        cumulative source so per-window deltas are probe counts)."""
        return self.hits + self.misses

    def access(self, key: str) -> bool:
        """Record an access; returns True on hit (and freshens recency)."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def admit(self, key: str, size_bytes: int) -> bool:
        """Insert after a miss.  Returns False if the object bypasses.

        Re-admitting an existing key refreshes it (and its size, if the
        object changed).
        """
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        if size_bytes > self.bypass_bytes:
            self.bypasses += 1
            return False
        if key in self._entries:
            self.used_bytes -= self._entries.pop(key)
        self._entries[key] = size_bytes
        self.used_bytes += size_bytes
        self.insertions += 1
        while self.used_bytes > self.capacity_bytes:
            old_key, old_size = self._entries.popitem(last=False)
            self.used_bytes -= old_size
            self.evictions += 1
        return True

    def invalidate(self, key: str) -> bool:
        """Drop a key (content updated or offloaded); True if present."""
        size = self._entries.pop(key, None)
        if size is None:
            return False
        self.used_bytes -= size
        return True

    def clear(self) -> None:
        self._entries.clear()
        self.used_bytes = 0
