"""The centralized network-filesystem alternative (§1.1, configuration 2).

"One possible solution ... is to place all content on a centralized network
file system (e.g., NFS). ... However, such a design will suffer from the
single-point-of-failure problem ... Furthermore, accessing data over the
network file system will increase user perceived latency due to the overhead
of remote-file-I/O and LAN congestion."

The model: one NFS server machine with its own CPU, disk, memory cache, and
100 Mbps NIC.  A remote read is an RPC (request over the LAN, server CPU,
cache-or-disk data fetch, data transfer back over the LAN).  Because every
web-server cache miss in configuration 2 funnels through this one machine,
its disk and NIC become the cluster-wide bottleneck -- which is exactly the
Figure 2 behaviour.
"""

from __future__ import annotations

from typing import Generator

from ..content import ContentItem
from ..net import Lan, Nic
from ..sim import Simulator
from .cache import LruCache
from .cpu import Cpu
from .disk import Disk
from .spec import NodeSpec
from .store import LocalStore

__all__ = ["NfsServer", "NFS_RPC_REQUEST_BYTES", "NFS_RPC_CPU_S"]

#: Size of an NFS read request message on the wire.
NFS_RPC_REQUEST_BYTES = 160
#: Reference-CPU seconds to process one RPC (decode, lookup, reply headers).
NFS_RPC_CPU_S = 0.0004


class NfsServer:
    """A dedicated file server exporting the whole document set."""

    def __init__(self, sim: Simulator, lan: Lan, spec: NodeSpec):
        self.sim = sim
        self.lan = lan
        self.spec = spec
        self.name = spec.name
        self.nic = Nic(sim, spec.nic_mbps, name=f"{spec.name}.nic")
        self.cpu = Cpu(sim, spec.cpu_mhz, name=spec.name)
        self.disk = Disk(sim, spec.disk, name=spec.name)
        self.cache = LruCache(spec.cache_bytes, name=f"{spec.name}.cache")
        self.store = LocalStore(capacity_bytes=spec.disk.capacity_bytes,
                                name=spec.name)
        self.rpcs_served = 0
        self.bytes_served = 0

    def export(self, items) -> None:
        """Publish content on the file server."""
        self.store.add_all(items)

    def read(self, item: ContentItem, client_nic: Nic) -> Generator:
        """Serve one remote read to ``client_nic``; use ``yield from``.

        Raises KeyError if the file server does not export the item --
        config-2 experiments export the full set, so this is a setup bug.
        """
        self.store.get(item.path)  # membership check
        # Request RPC rides the LAN to the file server.
        yield from self.lan.transfer(client_nic, self.nic,
                                     NFS_RPC_REQUEST_BYTES)
        # Server-side processing: RPC decode + cache-or-disk fetch.
        yield from self.cpu.run(NFS_RPC_CPU_S)
        if not self.cache.access(item.path):
            yield from self.disk.read(item.size_bytes)
            self.cache.admit(item.path, item.size_bytes)
        # Data travels back; this transfer is what saturates the NFS NIC.
        yield from self.lan.transfer(self.nic, client_nic, item.size_bytes)
        self.rpcs_served += 1
        self.bytes_served += item.size_bytes
