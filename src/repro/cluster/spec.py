"""Hardware specifications for cluster nodes.

§5.1 describes the testbed exactly:

    "a 350 MHz machine (with 128 MB memory) running Linux ... to serve as
    distributor.  The servers cluster consists of the following machines:
    three 150 MHz machines with 64 MB of memory and 4 GB IDE disks, two
    200 MHz machines with 128 MB of memory and 4 GB SCSI disks, and four
    350 MHz machines with 128 MB of memory and 8 GB SCSI disks.  Some of
    the back-end servers run Windows NT with IIS, and the others run Linux
    with Apache. ... fast-ethernet network interfaces (100 Mbps) on each
    node."

This module encodes those machines and the derived model parameters (cache
size from RAM, CPU speed factor, the static capacity ``Weight`` used by the
§3.3 load metric).
"""

from __future__ import annotations

import dataclasses

__all__ = ["DiskSpec", "NodeSpec", "IDE_DISK_4GB", "SCSI_DISK_4GB",
           "SCSI_DISK_8GB", "REFERENCE_MHZ", "paper_testbed_specs",
           "distributor_spec"]

#: CPU work is expressed in seconds on this reference clock (the testbed's
#: fastest machines); slower nodes scale it up proportionally.
REFERENCE_MHZ = 350.0


@dataclasses.dataclass(frozen=True)
class DiskSpec:
    """A late-90s disk model: average positioning time plus streaming rate."""

    kind: str                 # "IDE" | "SCSI"
    avg_access_s: float       # average seek + rotational latency
    transfer_mbps: float      # sustained sequential MB/s
    capacity_gb: float
    #: positioning operations per whole-file read: metadata (inode,
    #: directory) plus data -- a late-90s filesystem rarely did one seek
    per_file_accesses: float = 1.7

    @property
    def bytes_per_second(self) -> float:
        return self.transfer_mbps * 1024 * 1024

    @property
    def capacity_bytes(self) -> int:
        return int(self.capacity_gb * 1024 ** 3)

    def read_time(self, nbytes: int) -> float:
        """Service time of one whole-file read: metadata + data
        positioning, then the streaming transfer."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return (self.per_file_accesses * self.avg_access_s +
                nbytes / self.bytes_per_second)


# Era-typical drives: IDE ~5400 rpm, SCSI ~7200-10k rpm.
IDE_DISK_4GB = DiskSpec(kind="IDE", avg_access_s=0.0145,
                        transfer_mbps=8.0, capacity_gb=4.0)
SCSI_DISK_4GB = DiskSpec(kind="SCSI", avg_access_s=0.0095,
                         transfer_mbps=14.0, capacity_gb=4.0)
SCSI_DISK_8GB = DiskSpec(kind="SCSI", avg_access_s=0.0085,
                         transfer_mbps=18.0, capacity_gb=8.0)

#: RAM the OS + server software keep for themselves; the rest caches content.
_OS_RESERVED_MB = 44


@dataclasses.dataclass(frozen=True)
class NodeSpec:
    """One backend server machine."""

    name: str
    cpu_mhz: float
    mem_mb: int
    disk: DiskSpec
    os: str = "linux"          # "linux"+Apache or "nt"+IIS -- §5.1 mixes both
    nic_mbps: float = 100.0
    max_workers: int = 32      # concurrent request slots (Apache/IIS children)

    def __post_init__(self):
        if self.cpu_mhz <= 0 or self.mem_mb <= 0:
            raise ValueError("cpu_mhz and mem_mb must be positive")

    @property
    def speed_factor(self) -> float:
        """CPU speed relative to the 350 MHz reference."""
        return self.cpu_mhz / REFERENCE_MHZ

    @property
    def cache_bytes(self) -> int:
        """Memory available for the in-memory content cache."""
        usable = max(8, self.mem_mb - _OS_RESERVED_MB)
        return usable * 1024 * 1024

    @property
    def weight(self) -> float:
        """The §3.3 static capacity ``Weight``: "based on the capacity of
        each server".  We combine CPU, memory, and disk speed; the reference
        350 MHz/128 MB/SCSI-8GB node weighs 1.0."""
        cpu = self.cpu_mhz / REFERENCE_MHZ
        mem = self.mem_mb / 128.0
        disk = self.disk.transfer_mbps / SCSI_DISK_8GB.transfer_mbps
        return 0.5 * cpu + 0.25 * mem + 0.25 * disk


def paper_testbed_specs() -> list[NodeSpec]:
    """The nine backend servers of §5.1, OSes alternated as the paper mixes
    NT+IIS and Linux+Apache across the cluster."""
    specs: list[NodeSpec] = []
    for i in range(3):
        specs.append(NodeSpec(name=f"s150-{i}", cpu_mhz=150, mem_mb=64,
                              disk=IDE_DISK_4GB,
                              os="nt" if i % 2 else "linux"))
    for i in range(2):
        specs.append(NodeSpec(name=f"s200-{i}", cpu_mhz=200, mem_mb=128,
                              disk=SCSI_DISK_4GB,
                              os="linux" if i % 2 else "nt"))
    for i in range(4):
        specs.append(NodeSpec(name=f"s350-{i}", cpu_mhz=350, mem_mb=128,
                              disk=SCSI_DISK_8GB,
                              os="nt" if i % 2 else "linux"))
    return specs


def distributor_spec() -> NodeSpec:
    """The front-end machine: 350 MHz, 128 MB, running the modified kernel."""
    return NodeSpec(name="distributor", cpu_mhz=350, mem_mb=128,
                    disk=SCSI_DISK_8GB, os="linux")
