"""The backend web server model.

One :class:`BackendServer` is one machine from §5.1's cluster: a CPU, a
disk, an in-memory content cache, a local content store, a NIC, and a
bounded pool of worker slots (Apache children / IIS threads).  Its service
model captures the cost structure the paper's arguments rest on:

* **static requests** pay a fixed protocol/parse CPU cost plus a per-byte
  copy cost; a cache miss adds a whole-object disk read (or, in the NFS
  configuration, a remote read through the shared file server);
* **dynamic requests** (CGI/ASP) pay the request's ``cpu_work`` scaled by
  the node's CPU speed -- one to two orders of magnitude more than a static
  hit, per the paper's [6] -- so slow nodes are disproportionately bad at
  them;
* **worker slots** bound concurrency, so long-running requests occupy slots
  and CPU, delaying short ones on the same node (the §1.1 interference that
  Figure 4's segregation removes).

Response bytes are transferred by the *front end* (distributor or L4
router), which relays all packets in both directions, matching §2.2.
"""

from __future__ import annotations

import dataclasses
from typing import Generator, Optional

from ..content import ContentItem
from ..net import HttpRequest, HttpResponse, Lan, Nic
from ..sim import Resource, Simulator, ThroughputMeter
from .cache import LruCache
from .cpu import Cpu
from .disk import Disk
from .nfs import NfsServer
from .spec import NodeSpec
from .store import LocalStore

__all__ = ["BackendServer", "ServiceCosts"]


@dataclasses.dataclass(frozen=True)
class ServiceCosts:
    """Tunable service-cost constants (reference-CPU seconds).

    Defaults are calibrated to late-90s server software: a 350 MHz Apache
    saturates around 450-550 small static requests/s from memory, matching
    contemporary SPECweb/WebBench reports.
    """

    static_base_cpu: float = 0.0026   # parse + syscalls + TCP per request
    cpu_per_kb: float = 0.00006       # buffer copy per KB served
    dynamic_base_cpu: float = 0.0030  # fork/interpreter startup baseline
    error_cpu: float = 0.0005         # serving a 404
    os_nt_penalty: float = 1.10       # §5.1 mixes NT+IIS and Linux+Apache
    #: Dynamic content on a low-memory node pages/swaps: the CGI process,
    #: interpreter, and query working set do not fit beside the server.
    #: §5.3: a heavy request on a slow node takes "orders of magnitude more
    #: time than ... the node with powerful processor" -- the 2.3x clock
    #: ratio alone cannot produce that; memory pressure does.
    dynamic_low_mem_penalty: float = 12.0
    dynamic_mem_threshold_mb: int = 96


class BackendServer:
    """One heterogeneous backend node."""

    def __init__(self, sim: Simulator, lan: Lan, spec: NodeSpec,
                 nfs: Optional[NfsServer] = None,
                 costs: ServiceCosts = ServiceCosts(),
                 warmup: float = 0.0):
        self.sim = sim
        self.lan = lan
        self.spec = spec
        self.name = spec.name
        self.nfs = nfs
        self.costs = costs
        self.nic = Nic(sim, spec.nic_mbps, name=f"{spec.name}.nic")
        self.cpu = Cpu(sim, spec.cpu_mhz, name=spec.name)
        self.disk = Disk(sim, spec.disk, name=spec.name)
        self.cache = LruCache(spec.cache_bytes, name=f"{spec.name}.cache")
        self.store = LocalStore(capacity_bytes=spec.disk.capacity_bytes,
                                name=spec.name)
        self.workers = Resource(sim, capacity=spec.max_workers,
                                name=f"{spec.name}.workers")
        self.meter = ThroughputMeter(warmup=warmup, name=spec.name)
        self.active_requests = 0
        self.completed_requests = 0
        self.failed_requests = 0
        #: served-from-memory requests collapsed to an O(1) segmented hold
        #: (fast path only; mirrors ``Lan.fast_transfers``)
        self.fast_serves = 0
        self.alive = True

    # -- content management hooks (driven by agents/controller) -------------
    def place(self, item: ContentItem) -> None:
        self.store.add(item)

    def evict(self, path: str) -> None:
        self.store.remove(path)
        self.cache.invalidate(path)

    def holds(self, path: str) -> bool:
        return path in self.store

    def telemetry_gauges(self) -> dict:
        """Read-only instantaneous signals for the telemetry sampler.

        Strictly observational: every value is computed from existing
        counters, so sampling cannot perturb the event timeline.
        """
        return {
            "cache_hit_rate": self.cache.hit_rate,
            "cpu_utilization": self.cpu.utilization(),
            "disk_utilization": self.disk.utilization(),
        }

    def _cpu_cost_factor(self) -> float:
        return self.costs.os_nt_penalty if self.spec.os == "nt" else 1.0

    # -- service ----------------------------------------------------------
    def serve(self, request: HttpRequest,
              item: Optional[ContentItem]) -> Generator:
        """Process one request to completion; returns an HttpResponse.

        The caller (front end) is responsible for moving the request and
        response bytes over the LAN; this generator models only the
        server-local work.
        """
        if not self.alive:
            raise RuntimeError(f"{self.name} is down")
        started = self.sim.now
        self.active_requests += 1
        ks = self.sim.kernel_stats
        if (self.sim.fast_path and item is not None
                and not item.ctype.is_dynamic and item.path in self.cache):
            factor = self._cpu_cost_factor()
            # the eager cache access below is only equivalent if the event
            # path's access (at the parse-burst boundary) also happens
            # before any run-deadline freeze
            fastable = (self.active_requests == 1 and self.holds(item.path)
                        and self.workers.can_acquire
                        and self.cpu._core.can_acquire
                        and self.sim.fits_horizon(self.cpu.scaled(
                            self.costs.static_base_cpu * factor)))
            if ks is not None:
                ks.on_fast_path("cache_hit", fastable)
            if fastable:
                # Served-from-memory cache hit with the node otherwise
                # idle: collapse parse + copy into one segmented CPU hold
                # (O(1) scheduled events).  With no other serve in flight,
                # no cache operation can occur before the parse burst
                # would have ended, so the eager access below is
                # observably identical to the event path's access at the
                # burst boundary; contention during the hold splits it
                # back onto the event-accurate path.
                self.fast_serves += 1
                hit = self.cache.access(item.path)
                copy_cost = (self.costs.cpu_per_kb
                             * (item.size_bytes / 1024.0))
                slot = self.workers.try_acquire()
                try:
                    yield from self.cpu.run_pair(
                        self.costs.static_base_cpu * factor,
                        copy_cost * factor)
                    return self._finish(request, started,
                                        content_length=item.size_bytes,
                                        cache_hit=hit)
                finally:
                    self.workers.release(slot)
                    self.active_requests -= 1
        slot = (self.workers.try_acquire()
                if self.sim.fast_path else None)
        if slot is None:
            slot = yield self.workers.request()
        try:
            factor = self._cpu_cost_factor()
            if item is None:
                yield from self.cpu.run(self.costs.error_cpu * factor)
                return self._finish(request, started, status=404,
                                    content_length=0, cache_hit=False)
            if item.ctype.is_dynamic:
                work = (self.costs.dynamic_base_cpu + item.cpu_work) * factor
                if self.spec.mem_mb < self.costs.dynamic_mem_threshold_mb:
                    work *= self.costs.dynamic_low_mem_penalty
                yield from self.cpu.run(work)
                return self._finish(request, started,
                                    content_length=item.size_bytes,
                                    cache_hit=False)
            # static path: protocol cost, then locate the bytes
            yield from self.cpu.run(self.costs.static_base_cpu * factor)
            if not self.holds(item.path):
                if self.nfs is not None:
                    # NFS serve-through: close-to-open consistency forces a
                    # round trip per access, so remote content is not held
                    # in the local memory cache -- §5.3: "the majority of
                    # the requested content could not be found locally"
                    yield from self.nfs.read(item, self.nic)
                    copy = self.costs.cpu_per_kb * (item.size_bytes / 1024.0)
                    yield from self.cpu.run(copy * factor)
                    return self._finish(request, started,
                                        content_length=item.size_bytes,
                                        cache_hit=False)
                yield from self.cpu.run(self.costs.error_cpu * factor)
                return self._finish(request, started, status=404,
                                    content_length=0, cache_hit=False)
            hit = self.cache.access(item.path)
            if not hit:
                yield from self.disk.read(item.size_bytes)
                self.cache.admit(item.path, item.size_bytes)
            copy_cost = self.costs.cpu_per_kb * (item.size_bytes / 1024.0)
            yield from self.cpu.run(copy_cost * factor)
            return self._finish(request, started,
                                content_length=item.size_bytes,
                                cache_hit=hit)
        finally:
            self.workers.release(slot)
            self.active_requests -= 1

    def _finish(self, request: HttpRequest, started: float, *,
                content_length: int, cache_hit: bool,
                status: int = 200) -> HttpResponse:
        service_time = self.sim.now - started
        if status == 200:
            self.completed_requests += 1
        else:
            self.failed_requests += 1
        self.meter.record(self.sim.now, nbytes=content_length)
        return HttpResponse(request=request, status=status,
                            content_length=content_length,
                            served_by=self.name, cache_hit=cache_hit,
                            service_time=service_time,
                            completed_at=self.sim.now)

    # -- failure injection ----------------------------------------------------
    def crash(self) -> None:
        """Mark the node as failed; new requests raise."""
        self.alive = False

    def recover(self) -> None:
        self.alive = True
