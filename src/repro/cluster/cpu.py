"""CPU model: a single processor whose speed scales reference work.

All CPU costs in the simulator are expressed as *seconds on the 350 MHz
reference machine*; a 150 MHz node takes 350/150 = 2.33x as long.  This is
the heterogeneity that Figure 3 exploits: "when a complex database query or
a heavy request for a long-running CGI script is dispatched to the node with
a slow processor, it will take orders of magnitude more time".
"""

from __future__ import annotations

from typing import Generator

from ..sim import Resource, Simulator
from ..sim.resources import SEGMENT_SPLIT
from .spec import REFERENCE_MHZ

__all__ = ["Cpu"]


class Cpu:
    """One processor serving bursts FIFO (no preemption; bursts are short)."""

    def __init__(self, sim: Simulator, mhz: float, name: str = ""):
        if mhz <= 0:
            raise ValueError("mhz must be positive")
        self.sim = sim
        self.mhz = mhz
        self.name = name
        self._core = Resource(sim, capacity=1, name=f"{name}.cpu")
        self.busy_seconds = 0.0
        self.bursts = 0

    @property
    def speed_factor(self) -> float:
        return self.mhz / REFERENCE_MHZ

    def scaled(self, reference_seconds: float) -> float:
        """Wall time this CPU needs for ``reference_seconds`` of 350 MHz work."""
        if reference_seconds < 0:
            raise ValueError("work must be non-negative")
        return reference_seconds / self.speed_factor

    def run(self, reference_seconds: float) -> Generator:
        """Execute a burst; use ``yield from cpu.run(...)`` inside a process."""
        duration = self.scaled(reference_seconds)
        core = self._core
        ks = self.sim.kernel_stats
        if self.sim.fast_path:
            req = core.try_acquire()
            if req is not None:
                try:
                    if ks is not None:
                        ks.on_fast_path("cpu", True)
                    yield self.sim.hot_timeout(duration)
                finally:
                    core.release(req)
            else:
                if ks is not None:
                    ks.on_fast_path("cpu", False)
                # Grant-and-hold: the grant event fires once, at the end
                # of the burst (see Resource.request).
                req = yield core.request(hold=duration)
                core.release(req)
        else:
            req = yield core.request()
            try:
                yield self.sim.timeout(duration)
            finally:
                core.release(req)
        self.busy_seconds += duration
        self.bursts += 1

    def run_pair(self, first_ref: float, second_ref: float) -> Generator:
        """Fast path only: two back-to-back bursts as one segmented hold.

        Caller must have verified ``sim.fast_path`` and
        ``self._core.can_acquire``.  Uncontended, this costs one scheduled
        event for both bursts and applies the bookkeeping the two-burst
        event cascade would have produced.  A contender arriving at or
        before the internal boundary splits the hold (see
        :meth:`Resource.hold_segmented`): the first burst completes at the
        boundary exactly as the event path would, and the second burst
        replays through :meth:`run`.
        """
        d1 = self.scaled(first_ref)
        d2 = self.scaled(second_ref)
        core = self._core
        sim = self.sim
        boundary = sim._now + d1
        if boundary + d2 > sim._horizon:
            # A hold truncated by the run deadline would freeze with the
            # boundary bookkeeping unapplied while the event path had
            # already completed the first burst; near the edge, stay
            # event-accurate.
            yield from self.run(first_ref)
            yield from self.run(second_ref)
            return
        req = core.try_acquire()
        try:
            outcome = yield core.hold_segmented(req, d1, d2)
        except BaseException:
            core.release(req)
            raise
        if outcome is SEGMENT_SPLIT:
            core.release(req)
            self.busy_seconds += d1
            self.bursts += 1
            yield from self.run(second_ref)
            return
        # Bookkeeping for the elided boundary: the event path released and
        # instantly re-granted the core there, so the busy integral accrued
        # in two chunks split at the boundary (float addition is not
        # associative -- one (t2-t0) chunk digests differently), and one
        # more zero-wait request was counted.  The core is capacity-1 and
        # we are its sole holder, so the utilization weight is exactly 1.
        if boundary > core._last_change:
            core._busy_integral += boundary - core._last_change
            core._last_change = boundary
        core.release(req)
        core.total_requests += 1
        core.peak_queue_len = max(core.peak_queue_len, 1)
        self.busy_seconds += d1
        self.busy_seconds += d2
        self.bursts += 2

    def utilization(self) -> float:
        return self._core.utilization()

    @property
    def queue_len(self) -> int:
        return self._core.queue_len
