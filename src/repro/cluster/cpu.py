"""CPU model: a single processor whose speed scales reference work.

All CPU costs in the simulator are expressed as *seconds on the 350 MHz
reference machine*; a 150 MHz node takes 350/150 = 2.33x as long.  This is
the heterogeneity that Figure 3 exploits: "when a complex database query or
a heavy request for a long-running CGI script is dispatched to the node with
a slow processor, it will take orders of magnitude more time".
"""

from __future__ import annotations

from typing import Generator

from ..sim import Resource, Simulator
from .spec import REFERENCE_MHZ

__all__ = ["Cpu"]


class Cpu:
    """One processor serving bursts FIFO (no preemption; bursts are short)."""

    def __init__(self, sim: Simulator, mhz: float, name: str = ""):
        if mhz <= 0:
            raise ValueError("mhz must be positive")
        self.sim = sim
        self.mhz = mhz
        self.name = name
        self._core = Resource(sim, capacity=1, name=f"{name}.cpu")
        self.busy_seconds = 0.0
        self.bursts = 0

    @property
    def speed_factor(self) -> float:
        return self.mhz / REFERENCE_MHZ

    def scaled(self, reference_seconds: float) -> float:
        """Wall time this CPU needs for ``reference_seconds`` of 350 MHz work."""
        if reference_seconds < 0:
            raise ValueError("work must be non-negative")
        return reference_seconds / self.speed_factor

    def run(self, reference_seconds: float) -> Generator:
        """Execute a burst; use ``yield from cpu.run(...)`` inside a process."""
        duration = self.scaled(reference_seconds)
        core = self._core
        ks = self.sim.kernel_stats
        if self.sim.fast_path and core.can_acquire:
            if ks is not None:
                ks.on_fast_path("cpu", True)
            req = core.try_acquire()
            try:
                yield self.sim.hot_timeout(duration)
            finally:
                core.release(req)
        else:
            if ks is not None and self.sim.fast_path:
                ks.on_fast_path("cpu", False)
            req = yield core.request()
            try:
                yield self.sim.timeout(duration)
            finally:
                core.release(req)
        self.busy_seconds += duration
        self.bursts += 1

    def utilization(self) -> float:
        return self._core.utilization()

    @property
    def queue_len(self) -> int:
        return self._core.queue_len
