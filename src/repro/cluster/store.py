"""Per-node local content store (the node's filesystem view of the site).

Placement schemes decide *which* items go in which node's store; the store
itself just tracks membership and capacity.  The paper's motivating
statistic -- that full replication wastes most of its space on rarely
requested large files -- is visible through ``used_bytes`` here.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from ..content import ContentItem

__all__ = ["LocalStore", "StoreFullError"]


class StoreFullError(Exception):
    """Adding an item would exceed the node's disk capacity."""


class LocalStore:
    """The set of content items a node holds on its local disk."""

    def __init__(self, capacity_bytes: Optional[int] = None, name: str = ""):
        self.capacity_bytes = capacity_bytes
        self.name = name
        self._items: dict[str, ContentItem] = {}
        self.used_bytes = 0

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, path: str) -> bool:
        return path in self._items

    def __iter__(self) -> Iterator[ContentItem]:
        return iter(self._items.values())

    def paths(self) -> list[str]:
        return list(self._items)

    def get(self, path: str) -> ContentItem:
        try:
            return self._items[path]
        except KeyError:
            raise KeyError(f"{self.name}: no local copy of {path!r}") from None

    def add(self, item: ContentItem) -> None:
        """Place a copy of ``item`` on this node."""
        if item.path in self._items:
            return  # idempotent: placing an existing copy is a no-op
        if (self.capacity_bytes is not None and
                self.used_bytes + item.size_bytes > self.capacity_bytes):
            raise StoreFullError(
                f"{self.name}: {item.path} ({item.size_bytes} B) exceeds "
                f"capacity ({self.used_bytes}/{self.capacity_bytes} B used)")
        self._items[item.path] = item
        self.used_bytes += item.size_bytes

    def add_all(self, items: Iterable[ContentItem]) -> None:
        for item in items:
            self.add(item)

    def remove(self, path: str) -> ContentItem:
        """Delete the local copy (an offload or management delete)."""
        try:
            item = self._items.pop(path)
        except KeyError:
            raise KeyError(f"{self.name}: no local copy of {path!r}") from None
        self.used_bytes -= item.size_bytes
        return item
