"""Disk model: one arm, FIFO service, seek + streaming transfer.

Disk activity is what the paper's load metric weights highest for static
content (load_Disk = 9 of 10), and the cache-miss path through this model is
what separates the three placement schemes in Figure 2.
"""

from __future__ import annotations

from typing import Generator

from ..sim import Resource, Simulator
from .spec import DiskSpec

__all__ = ["Disk"]


class Disk:
    """A single-spindle disk serving whole-object reads FIFO."""

    def __init__(self, sim: Simulator, spec: DiskSpec, name: str = ""):
        self.sim = sim
        self.spec = spec
        self.name = name
        self._arm = Resource(sim, capacity=1, name=f"{name}.disk")
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.busy_seconds = 0.0
        #: service-time multiplier, >= 1.0 (fault injection: degraded disk)
        self.slowdown = 1.0

    def set_slowdown(self, factor: float) -> None:
        """Degrade the disk: every read/write takes ``factor``x longer."""
        if factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1.0, got {factor}")
        self.slowdown = factor

    def clear_slowdown(self) -> None:
        self.slowdown = 1.0

    def _service(self, duration: float) -> Generator:
        """Hold the arm for ``duration``.

        A healthy (``slowdown == 1.0``), idle, unqueued disk takes the
        single-event fast path; a degraded disk always pays the
        event-accurate path so the disk-slowdown chaos fault keeps its
        exact event interleaving.
        """
        arm = self._arm
        ks = self.sim.kernel_stats
        if self.sim.fast_path and self.slowdown == 1.0:
            req = arm.try_acquire()
            if req is not None:
                try:
                    if ks is not None:
                        ks.on_fast_path("disk", True)
                    yield self.sim.hot_timeout(duration)
                finally:
                    arm.release(req)
            else:
                if ks is not None:
                    ks.on_fast_path("disk", False)
                # Grant-and-hold: one event for grant *and* service (see
                # Resource.request).
                req = yield arm.request(hold=duration)
                arm.release(req)
        elif self.sim.fast_path:
            if ks is not None:
                ks.on_fast_path("disk", False)
            # Degraded disk: keep the exact two-event interleaving so
            # the disk-slowdown chaos fault stays event-accurate (the
            # hold timer is still pooled).
            req = yield arm.request()
            try:
                yield self.sim.hot_timeout(duration)
            finally:
                arm.release(req)
        else:
            req = yield arm.request()
            try:
                yield self.sim.timeout(duration)
            finally:
                arm.release(req)

    def read(self, nbytes: int) -> Generator:
        """Read an object; use ``yield from disk.read(nbytes)``."""
        duration = self.spec.read_time(nbytes) * self.slowdown
        yield from self._service(duration)
        self.reads += 1
        self.bytes_read += nbytes
        self.busy_seconds += duration

    def write(self, nbytes: int) -> Generator:
        """Write an object (content copy landing); same service model."""
        duration = self.spec.read_time(nbytes) * self.slowdown
        yield from self._service(duration)
        self.writes += 1
        self.bytes_written += nbytes
        self.busy_seconds += duration

    def utilization(self) -> float:
        return self._arm.utilization()

    @property
    def queue_len(self) -> int:
        return self._arm.queue_len
