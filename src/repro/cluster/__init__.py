"""Cluster substrate: heterogeneous backend servers and the NFS alternative."""

from .cache import LruCache
from .cpu import Cpu
from .disk import Disk
from .nfs import NfsServer
from .server import BackendServer, ServiceCosts
from .spec import (IDE_DISK_4GB, REFERENCE_MHZ, SCSI_DISK_4GB, SCSI_DISK_8GB,
                   DiskSpec, NodeSpec, distributor_spec, paper_testbed_specs)
from .store import LocalStore, StoreFullError

__all__ = [
    "DiskSpec", "NodeSpec", "IDE_DISK_4GB", "SCSI_DISK_4GB", "SCSI_DISK_8GB",
    "REFERENCE_MHZ", "paper_testbed_specs", "distributor_spec",
    "LruCache", "Cpu", "Disk", "LocalStore", "StoreFullError",
    "NfsServer", "BackendServer", "ServiceCosts",
]
