"""Seeded random-number streams and the distributions the workloads need.

Web-server workload characterization (Arlitt & Williamson 1996; Barford &
Crovella 1998; Arlitt & Jin 1999 -- the papers the evaluation cites) relies on
three statistical facts this module supplies samplers for:

* **Zipf-like popularity** -- a small set of documents receives most requests.
* **Heavy-tailed file sizes** -- lognormal body with a Pareto tail.
* **Exponential / hyperexponential think and inter-arrival times.**

Every stream is an independently seeded ``random.Random`` derived from a root
seed plus a label, so experiments are reproducible and sub-streams do not
perturb each other when one component draws more numbers.
"""

from __future__ import annotations

import bisect
import hashlib
import math
import random
from typing import Optional, Sequence

__all__ = ["RngStream", "ZipfSampler", "ParetoSampler", "LognormalSampler",
           "HybridSizeSampler"]


def _derive_seed(root: int, label: str) -> int:
    digest = hashlib.sha256(f"{root}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngStream:
    """A named, reproducible random stream.

    ``RngStream(42, "clients")`` always produces the same sequence, and is
    statistically independent of ``RngStream(42, "catalog")``.
    Sub-streams are derived with :meth:`substream`.
    """

    def __init__(self, seed: int = 0, label: str = "root"):
        self.seed = seed
        self.label = label
        self._random = random.Random(_derive_seed(seed, label))

    def substream(self, label: str) -> "RngStream":
        """Derive an independent stream for a component."""
        return RngStream(self.seed, f"{self.label}/{label}")

    # Thin pass-throughs (kept explicit for a documented, stable surface).
    def random(self) -> float:
        return self._random.random()

    def uniform(self, a: float, b: float) -> float:
        return self._random.uniform(a, b)

    def randint(self, a: int, b: int) -> int:
        return self._random.randint(a, b)

    def choice(self, seq: Sequence):
        return self._random.choice(seq)

    def sample(self, seq: Sequence, k: int):
        return self._random.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        self._random.shuffle(seq)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def lognormvariate(self, mu: float, sigma: float) -> float:
        return self._random.lognormvariate(mu, sigma)

    def paretovariate(self, alpha: float) -> float:
        return self._random.paretovariate(alpha)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)


class ZipfSampler:
    """Bounded Zipf(alpha) over ranks ``1..n`` via inverse-CDF table lookup.

    ``P(rank=k) proportional to 1 / k**alpha``.  The classic web-access value
    is ``alpha ~= 0.75-1.0`` (Almeida et al. 1996 report near-Zipf with
    exponent close to 1); the default matches the paper's "highly skewed"
    characterization.
    """

    def __init__(self, n: int, alpha: float = 0.9,
                 rng: Optional[RngStream] = None):
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.n = n
        self.alpha = alpha
        self._rng = rng or RngStream(0, "zipf")
        weights = [1.0 / (k ** alpha) for k in range(1, n + 1)]
        total = sum(weights)
        acc = 0.0
        self._cdf: list[float] = []
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float round-off

    def probability(self, rank: int) -> float:
        """Exact probability of drawing ``rank`` (1-based)."""
        if not 1 <= rank <= self.n:
            raise ValueError(f"rank out of range: {rank}")
        lo = self._cdf[rank - 2] if rank >= 2 else 0.0
        return self._cdf[rank - 1] - lo

    def sample(self) -> int:
        """Draw a 1-based rank."""
        u = self._rng.random()
        return bisect.bisect_left(self._cdf, u) + 1


class ParetoSampler:
    """Pareto(alpha, x_min): the canonical heavy tail for large web files."""

    def __init__(self, alpha: float = 1.2, x_min: float = 1.0,
                 rng: Optional[RngStream] = None):
        if alpha <= 0 or x_min <= 0:
            raise ValueError("alpha and x_min must be positive")
        self.alpha = alpha
        self.x_min = x_min
        self._rng = rng or RngStream(0, "pareto")

    def sample(self) -> float:
        return self.x_min * self._rng.paretovariate(self.alpha)


class LognormalSampler:
    """Lognormal(mu, sigma): the body of the web file-size distribution."""

    def __init__(self, mu: float = 9.357, sigma: float = 1.318,
                 rng: Optional[RngStream] = None):
        # Defaults are the SURGE/Barford-Crovella body parameters (bytes).
        self.mu = mu
        self.sigma = sigma
        self._rng = rng or RngStream(0, "lognormal")

    def sample(self) -> float:
        return self._rng.lognormvariate(self.mu, self.sigma)

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma ** 2 / 2.0)


class HybridSizeSampler:
    """Lognormal body + Pareto tail, the SURGE-style file-size model.

    With probability ``tail_prob`` a size is drawn from the Pareto tail,
    otherwise from the lognormal body.  Sizes are returned as integer bytes
    and clamped to ``[min_bytes, max_bytes]`` so one absurd draw cannot
    dominate a whole synthetic site.
    """

    def __init__(self, rng: Optional[RngStream] = None,
                 tail_prob: float = 0.03,
                 body: Optional[LognormalSampler] = None,
                 tail: Optional[ParetoSampler] = None,
                 min_bytes: int = 64,
                 max_bytes: int = 64 * 1024 * 1024):
        if not 0.0 <= tail_prob <= 1.0:
            raise ValueError("tail_prob must be in [0, 1]")
        self._rng = rng or RngStream(0, "sizes")
        self.tail_prob = tail_prob
        self.body = body or LognormalSampler(rng=self._rng.substream("body"))
        # Tail defaults reproduce the Arlitt & Jin observation the paper
        # quotes: a fraction of a percent of files holding over half the
        # bytes (top 5 % of draws carry ~60 % of the volume here).
        self.tail = tail or ParetoSampler(alpha=0.85, x_min=128 * 1024,
                                          rng=self._rng.substream("tail"))
        self.min_bytes = min_bytes
        self.max_bytes = max_bytes

    def sample(self) -> int:
        if self._rng.random() < self.tail_prob:
            raw = self.tail.sample()
        else:
            raw = self.body.sample()
        return max(self.min_bytes, min(self.max_bytes, int(raw)))
