"""Discrete-event simulation kernel.

The kernel implements a classic event-list simulator with generator-based
processes, in the style popularized by SimPy but self-contained and small
enough to reason about exactly.  All higher layers (network, cluster,
distributor, management system) are built as processes on top of this module.

Concepts
--------
``Simulator``
    Owns the virtual clock and the event heap.  ``run()`` pops events in
    timestamp order and fires their callbacks.
``SimEvent``
    A one-shot occurrence.  Processes *yield* events to suspend until the
    event is triggered; the event's value (or exception) is delivered to the
    generator when it resumes.
``Process``
    Wraps a generator.  A process is itself an event that triggers when the
    generator returns, so processes can wait for each other ("join").
``Timeout``
    An event that triggers after a fixed delay of virtual time.
``AllOf`` / ``AnyOf``
    Composite conditions over several events.

The kernel is deterministic: events scheduled for the same timestamp fire in
insertion order (a monotone sequence number breaks ties).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "SimEvent",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "StopSimulation",
    "Injection",
]


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` early."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The interrupting party may attach an arbitrary ``cause`` explaining why
    the interrupt happened (e.g. a failure injection or a cancelled request).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Sentinel distinguishing "no value yet" from "value is None".
_PENDING = object()


class SimEvent:
    """A one-shot event that processes can wait on.

    An event moves through three stages: *pending* (just created),
    *triggered* (``succeed``/``fail`` called and the event is on the heap),
    and *processed* (callbacks have run).  Triggering twice is an error --
    events are strictly one-shot.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["SimEvent"], None]]] = []
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._defused = False

    # -- state ----------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise RuntimeError("event has not been triggered yet")
        return self._value

    # -- triggering -----------------------------------------------------------
    def succeed(self, value: Any = None) -> "SimEvent":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._value = value
        self.sim._enqueue(0.0, self)
        return self

    def fail(self, exception: BaseException) -> "SimEvent":
        """Trigger the event with an exception.

        The exception propagates into every waiting process.  If nothing ever
        waits on a failed event, the simulator re-raises it at fire time so
        errors cannot pass silently (call :meth:`defuse` to opt out).
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._exception = exception
        self._value = None
        self.sim._enqueue(0.0, self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled even if no process observes it."""
        self._defused = True

    # -- wiring ---------------------------------------------------------------
    def add_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        if self.callbacks is None:
            raise RuntimeError(f"{self!r} has already been processed")
        self.callbacks.append(callback)

    def _fire(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        observed = False
        for cb in callbacks:  # type: ignore[union-attr]
            observed = True
            cb(self)
        if self._exception is not None and not observed and not self._defused:
            raise self._exception

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(SimEvent):
    """An event that fires after ``delay`` units of virtual time."""

    __slots__ = ("delay", "_pooled")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._pooled = False
        self._value = value
        sim._enqueue(delay, self)


class _Initialize(SimEvent):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim)
        self._value = None
        self.add_callback(process._resume_cb)
        sim._enqueue(0.0, self)


class Process(SimEvent):
    """A running generator.  Also an event that triggers on completion."""

    __slots__ = ("name", "_generator", "_target", "_resume_cb")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(f"process() needs a generator, got {generator!r}")
        super().__init__(sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._target: Optional[SimEvent] = None
        # Interned bound method: every suspension point registers the same
        # callback object, so waits stop paying a method-binding allocation.
        self._resume_cb = self._resume
        _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event first.
        """
        if self.triggered:
            raise RuntimeError(f"{self.name} has already terminated")
        interrupt_event = SimEvent(self.sim)
        interrupt_event._exception = Interrupt(cause)
        interrupt_event._value = None
        interrupt_event.defuse()
        # Detach from the event currently waited on, if any.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
            else:
                ks = self.sim.kernel_stats
                if ks is not None:
                    ks.on_cancelled(target)
        self._target = None
        interrupt_event.add_callback(self._resume_cb)
        self.sim._enqueue(0.0, interrupt_event)

    def _resume(self, event: SimEvent) -> None:
        self._target = None
        sim = self.sim
        sim._active_process = self
        try:
            if event._exception is not None:
                next_event = self._generator.throw(event._exception)
            else:
                next_event = self._generator.send(event._value)
        except StopIteration as stop:
            sim._active_process = None
            self._value = stop.value
            sim._enqueue(0.0, self)
            return
        except Interrupt as exc:
            # An unhandled interrupt terminates the process "successfully"
            # with the interrupt cause -- the interruptor asked it to stop.
            sim._active_process = None
            self._value = exc.cause
            sim._enqueue(0.0, self)
            return
        except BaseException as exc:
            sim._active_process = None
            self._exception = exc
            self._value = None
            sim._enqueue(0.0, self)
            return
        sim._active_process = None
        if not isinstance(next_event, SimEvent):
            raise TypeError(
                f"process {self.name!r} yielded {next_event!r}; "
                "processes must yield SimEvent instances")
        if next_event.sim is not sim:
            raise RuntimeError("cannot wait on an event from another simulator")
        cbs = next_event.callbacks
        if cbs is None:  # processed: resume immediately
            # Already fired: resume immediately (at the current time).
            immediate = SimEvent(sim)
            immediate._value = next_event._value
            immediate._exception = next_event._exception
            immediate.defuse()
            immediate.add_callback(self._resume_cb)
            sim._enqueue(0.0, immediate)
            self._target = None
        else:
            cbs.append(self._resume_cb)
            if next_event._exception is not None:
                next_event.defuse()
            self._target = next_event


class _Condition(SimEvent):
    """Base for AllOf/AnyOf composites."""

    __slots__ = ("events", "_done")

    def __init__(self, sim: "Simulator", events: Iterable[SimEvent]):
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise RuntimeError("condition mixes events from different simulators")
        self._done = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.processed:
                self._check(ev)
            else:
                ev.add_callback(self._check)

    def _collect(self) -> dict:
        # Only events whose callbacks have run count as "happened" for the
        # purposes of a condition result: a Timeout is *triggered* from
        # birth (it is already on the heap) but has not occurred yet.
        return {ev: ev._value for ev in self.events
                if ev.processed and ev._exception is None}

    def _check(self, event: SimEvent) -> None:
        raise NotImplementedError

    def _detach_losers(self) -> None:
        """Stop listening on events that did not decide the condition.

        Once the condition has triggered, ``_check`` on a late event is a
        no-op -- but the callback reference kept the condition (and its
        collected result graph) alive until every component fired.  In long
        overload episodes the abandoned backend-serve processes of timed-out
        requests accumulated exactly this garbage; dropping the callback on
        trigger lets the losers be collected as soon as they are processed.
        """
        check = self._check
        ks = self.sim.kernel_stats
        for ev in self.events:
            cbs = ev.callbacks
            if cbs is None:
                continue
            try:
                cbs.remove(check)
            except ValueError:
                continue
            # _check used to observe (and thereby defuse) a loser's late
            # failure; keep that contract now that it no longer listens
            ev._defused = True
            if ks is not None:
                ks.on_cancelled(ev)


class AllOf(_Condition):
    """Triggers when every component event has triggered."""

    __slots__ = ()

    def _check(self, event: SimEvent) -> None:
        if self.triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            self._detach_losers()
            return
        self._done += 1
        if self._done == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers as soon as one component event triggers."""

    __slots__ = ()

    def _check(self, event: SimEvent) -> None:
        if self.triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed(self._collect())
        self._detach_losers()


class Injection:
    """Bookkeeping record for one scheduled fault injection.

    Created by :meth:`Simulator.add_injection`; the chaos layer
    (:mod:`repro.chaos`) reads these records to report which faults were
    applied (and reverted) during a run.
    """

    __slots__ = ("label", "at", "duration", "applied_at", "reverted_at")

    def __init__(self, label: str, at: float, duration: float):
        self.label = label
        self.at = at
        self.duration = duration
        self.applied_at: Optional[float] = None
        self.reverted_at: Optional[float] = None

    @property
    def applied(self) -> bool:
        return self.applied_at is not None

    @property
    def active(self) -> bool:
        """True between apply and revert (or forever, for one-shot faults
        registered without a revert)."""
        return self.applied and self.reverted_at is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("reverted" if self.reverted_at is not None else
                 "active" if self.applied else "pending")
        return f"<Injection {self.label!r} at={self.at} {state}>"


class Simulator:
    """The event loop: virtual clock plus a time-ordered event heap.

    With ``debug=True`` the engine accepts invariant checks (see
    :meth:`add_invariant`): zero-argument callables run periodically
    between events, raising when a cross-structure coherence property
    (URL table vs stores, pool lease balance, ...) does not hold.  The
    hook costs nothing when no checks are registered.

    Fault injection uses the sibling hook :meth:`add_injection`: an
    apply/revert callable pair scheduled at virtual times, recorded on the
    engine so a chaos harness can introspect what was injected without
    monkeypatching any component.
    """

    def __init__(self, debug: bool = False, fast_path: bool = False,
                 kernel_stats: Optional[Any] = None):
        self._now = 0.0
        self._heap: list[tuple[float, int, SimEvent]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        self.debug = debug
        #: opt-in kernel fast path: resource primitives may grant
        #: synchronously and collapse multi-event exchanges into a single
        #: completion timeout when (and only when) the collapsed form is
        #: observably identical to the event-by-event one.
        self.fast_path = fast_path
        #: queue backend selection, fixed at construction: the reference
        #: engine keeps the flat heap; the fast path runs on the two-level
        #: calendar queue (DESIGN §16).  The structures are proven
        #: order-identical by tests/sim/test_calendar_queue.py.
        self._use_calendar = bool(fast_path)
        #: calendar level 0: FIFO of events due at the *current* timestamp.
        #: Zero-delay enqueues land here in O(1) and drain in one batch.
        self._cur: deque[SimEvent] = deque()
        #: calendar level 1: exact-timestamp buckets (dict append is O(1))
        #: plus a heap of *distinct* pending timestamps.  Within a bucket,
        #: append order is sequence order, so (time, seq) dispatch order is
        #: identical to the reference heap by construction.
        self._buckets: dict[float, list[SimEvent]] = {}
        self._times: list[float] = []
        self._pending = 0
        self._batch_n = 0
        #: the active :meth:`run` deadline; segmented holds must finish
        #: inside it (see :meth:`fits_horizon`) or stay event-accurate,
        #: else a truncated run would freeze them with boundary effects
        #: (cache access, first-burst bookkeeping) in a different state
        #: than the event path's.
        self._horizon = float("inf")
        #: recycled one-shot timeouts for :meth:`hot_timeout`
        self._timeout_pool: list[Timeout] = []
        #: recycled AnyOf conditions for :meth:`hot_any_of`
        self._anyof_pool: list[AnyOf] = []
        #: registered checks as mutable [check, every, countdown] triples
        self._invariants: list[list] = []
        #: fault injections registered via :meth:`add_injection`
        self.injections: list[Injection] = []
        #: opt-in scheduler introspection (duck-typed; see
        #: :class:`repro.obs.KernelStats`).  ``None`` disables every hook.
        #: Like the tracer, the observer is strictly passive: it never
        #: creates events, so the timeline is byte-identical off and on.
        self.kernel_stats = kernel_stats
        #: opt-in windowed sampler (see :class:`repro.obs.TelemetrySampler`).
        #: Driven from :meth:`step` rather than by scheduled events, so
        #: enabling it cannot perturb ``event_count`` or the timeline.
        self.telemetry: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    def fits_horizon(self, delay: float) -> bool:
        """True when an operation of ``delay`` completes within the
        active :meth:`run` deadline (events *at* the deadline fire)."""
        return self._now + delay <= self._horizon

    # -- event creation ---------------------------------------------------
    def event(self) -> SimEvent:
        """Create a pending event to be triggered manually."""
        return SimEvent(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def hot_timeout(self, delay: float) -> Timeout:
        """A pooled :class:`Timeout` for single-yield hot paths.

        The returned event is recycled by :meth:`step` immediately after it
        fires, so callers must *not* keep a reference past their ``yield``
        (no conditions, no post-hoc ``triggered`` checks).  Only the kernel
        fast paths use this; everything else goes through :meth:`timeout`.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        pool = self._timeout_pool
        ks = self.kernel_stats
        if pool:
            t = pool.pop()
            t.callbacks = []
            t._value = None
            t._exception = None
            t._defused = False
            t.delay = delay
            self._enqueue(delay, t)
            if ks is not None:
                ks.on_pool_recycle(True)
            return t
        t = Timeout(self, delay)
        t._pooled = True
        if ks is not None:
            ks.on_pool_recycle(False)
        return t

    def hot_timeout_at(self, when: float) -> Timeout:
        """A pooled :class:`Timeout` that fires at the absolute time
        ``when`` (must not be in the past).

        Segmented holds need bitwise-exact fire times -- ``(t0 + d1) + d2``
        exactly as the event-by-event path computes them; deriving a delay
        and re-adding ``now`` inside :meth:`_enqueue` would round
        differently.  Same recycling contract as :meth:`hot_timeout`.
        """
        if when < self._now:
            raise ValueError(f"fire time {when!r} is in the past")
        pool = self._timeout_pool
        ks = self.kernel_stats
        hit = bool(pool)
        if hit:
            t = pool.pop()
            t.callbacks = []
            t._value = None
            t._exception = None
            t._defused = False
        else:
            t = Timeout.__new__(Timeout)
            SimEvent.__init__(t, self)
            t._value = None
            t._pooled = True
        t.delay = when - self._now
        self._enqueue_abs(when, t)
        if ks is not None:
            ks.on_pool_recycle(hit)
        return t

    def hot_any_of(self, events: Iterable[SimEvent]) -> AnyOf:
        """A pooled :class:`AnyOf` for high-churn race points.

        Same contract as :meth:`hot_timeout`: the caller must hand the
        condition back via :meth:`recycle_any_of` once its result has been
        read, and must not keep a reference afterwards.  Falls back to a
        fresh :class:`AnyOf` when the pool is empty.
        """
        pool = self._anyof_pool
        ks = self.kernel_stats
        if pool:
            cond = pool.pop()
            cond.callbacks = []
            cond._value = _PENDING
            cond._exception = None
            cond._defused = False
            cond.events = list(events)
            cond._done = 0
            check = cond._check
            for ev in cond.events:
                if ev.processed:
                    check(ev)
                else:
                    ev.add_callback(check)
            if ks is not None:
                ks.on_pool_recycle(True)
            return cond
        if ks is not None:
            ks.on_pool_recycle(False)
        return AnyOf(self, events)

    def recycle_any_of(self, cond: AnyOf) -> None:
        """Return a processed :meth:`hot_any_of` condition to the pool."""
        if type(cond) is AnyOf and cond.callbacks is None:
            cond.events = []
            cond._value = None  # drop the collected result graph
            self._anyof_pool.append(cond)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[SimEvent]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[SimEvent]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _enqueue(self, delay: float, event: SimEvent) -> None:
        self._eid += 1
        if self._use_calendar:
            when = self._now + delay
            if when <= self._now:
                # Due at the current timestamp (zero delay, or a delay so
                # small it rounds away): straight onto the level-0 FIFO.
                self._cur.append(event)
            else:
                bucket = self._buckets.get(when)
                if bucket is None:
                    self._buckets[when] = [event]
                    heapq.heappush(self._times, when)
                else:
                    bucket.append(event)
            self._pending += 1
            ks = self.kernel_stats
            if ks is not None:
                ks.on_scheduled(event, self._pending)
            return
        heapq.heappush(self._heap, (self._now + delay, self._eid, event))
        ks = self.kernel_stats
        if ks is not None:
            ks.on_scheduled(event, len(self._heap))

    def _enqueue_abs(self, when: float, event: SimEvent) -> None:
        """Schedule ``event`` at the absolute timestamp ``when``.

        :meth:`hot_timeout_at`'s back end; duplicated from
        :meth:`_enqueue` rather than delegated because the delay form is
        the kernel's hottest function.
        """
        self._eid += 1
        if self._use_calendar:
            if when <= self._now:
                self._cur.append(event)
            else:
                bucket = self._buckets.get(when)
                if bucket is None:
                    self._buckets[when] = [event]
                    heapq.heappush(self._times, when)
                else:
                    bucket.append(event)
            self._pending += 1
            ks = self.kernel_stats
            if ks is not None:
                ks.on_scheduled(event, self._pending)
            return
        heapq.heappush(self._heap, (when, self._eid, event))
        ks = self.kernel_stats
        if ks is not None:
            ks.on_scheduled(event, len(self._heap))

    def _cancel_scheduled(self, event: SimEvent, when: float) -> bool:
        """Remove a not-yet-fired event from the calendar by handle.

        Unlike lazy tombstoning, the entry is gone immediately: it will not
        fire, not count as a batch member, and not occupy queue space.  Only
        the calendar backend supports this (the fast path is its sole
        client); returns False when the event is not found at ``when``.
        """
        if not self._use_calendar:
            return False
        if when <= self._now:
            container: Any = self._cur
        else:
            container = self._buckets.get(when)
            if container is None:
                return False
        try:
            container.remove(event)
        except ValueError:
            return False
        self._pending -= 1
        ks = self.kernel_stats
        if ks is not None:
            ks.on_cancelled(event)
        return True

    def schedule(self, delay: float, callback: Callable[[], Any]) -> SimEvent:
        """Run ``callback()`` after ``delay`` time units (fire-and-forget)."""
        ev = SimEvent(self)
        ev._value = None
        ev.add_callback(lambda _ev: callback())
        self._enqueue(delay, ev)
        return ev

    # -- running -------------------------------------------------------------
    def peek(self) -> float:
        """Timestamp of the next event, or ``inf`` if the queue is empty."""
        if self._use_calendar:
            if self._cur:
                return self._now
            times, buckets = self._times, self._buckets
            while times:
                when = times[0]
                if buckets.get(when):
                    return when
                # Bucket fully cancelled: drop the stale timestamp key.
                heapq.heappop(times)
                buckets.pop(when, None)
            return float("inf")
        return self._heap[0][0] if self._heap else float("inf")

    # -- debug invariants -----------------------------------------------------
    def add_invariant(self, check: Callable[[], None],
                      every: int = 1) -> None:
        """Run ``check()`` after every ``every``-th event.

        Registering a check implies debug mode; the check should raise
        (e.g. :class:`AssertionError`) when its invariant is violated,
        which propagates out of :meth:`run` at the offending event.
        """
        if every < 1:
            raise ValueError("every must be >= 1")
        self.debug = True
        self._invariants.append([check, every, every])

    # -- fault injection ------------------------------------------------------
    def add_injection(self, delay: float,
                      apply: Callable[[], None],
                      revert: Optional[Callable[[], None]] = None,
                      duration: float = 0.0,
                      label: str = "") -> Injection:
        """Schedule a fault: run ``apply()`` after ``delay`` time units and,
        when ``revert`` is given, ``revert()`` after ``delay + duration``.

        Mirrors :meth:`add_invariant`: the engine owns the registry
        (:attr:`injections`), so a chaos harness injects typed faults
        through a first-class hook instead of monkeypatching components.
        The record's ``applied_at``/``reverted_at`` stamps make the actual
        injection timeline reportable after the run.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        if duration < 0:
            raise ValueError(f"negative duration {duration!r}")
        record = Injection(label or getattr(apply, "__name__", "fault"),
                           self._now + delay, duration)

        def _apply() -> None:
            record.applied_at = self._now
            apply()

        self.schedule(delay, _apply)
        if revert is not None:
            def _revert() -> None:
                record.reverted_at = self._now
                revert()

            self.schedule(delay + duration, _revert)
        self.injections.append(record)
        return record

    def _run_invariants(self) -> None:
        for entry in self._invariants:
            entry[2] -= 1
            if entry[2] <= 0:
                entry[2] = entry[1]
                entry[0]()

    @property
    def event_count(self) -> int:
        """Total events scheduled so far (the monotone tie-break counter)."""
        return self._eid

    @property
    def heap_depth(self) -> int:
        """Number of events currently pending in the queue."""
        return self._pending if self._use_calendar else len(self._heap)

    def _advance(self) -> bool:
        """Move the earliest non-empty bucket onto the level-0 FIFO.

        Advancing the clock closes the previous same-timestamp batch, which
        is when its size is reported to :class:`KernelStats`.
        """
        times, buckets = self._times, self._buckets
        while times:
            when = heapq.heappop(times)
            bucket = buckets.pop(when, None)
            if bucket:
                ks = self.kernel_stats
                if ks is not None and self._batch_n:
                    ks.on_batch(self._batch_n)
                self._batch_n = 0
                self._now = when
                self._cur.extend(bucket)
                return True
        return False

    def step(self) -> None:
        """Pop and fire exactly one event."""
        if self._use_calendar:
            cur = self._cur
            if not cur:
                if not self._advance():
                    raise IndexError("step() on an empty event queue")
            event = cur.popleft()
            self._pending -= 1
            self._batch_n += 1
        else:
            when, _eid, event = heapq.heappop(self._heap)
            self._now = when
        event._fire()
        # Recycle pooled timeouts: every waiter resumed synchronously
        # inside _fire(), so nothing can reference the event afterwards.
        if type(event) is Timeout and event._pooled:
            self._timeout_pool.append(event)
        ks = self.kernel_stats
        if ks is not None:
            ks.on_fired(event)
        tel = self.telemetry
        if tel is not None:
            tel.on_event(self._now)
        if self._invariants:
            self._run_invariants()

    def _run_calendar(self, until: Optional[float]) -> None:
        """Batched dispatch loop over the calendar queue.

        The whole bucket for a timestamp is transferred onto the level-0
        FIFO in one operation and drained — together with any zero-delay
        events its callbacks append — without re-entering the timestamp
        index between events.
        """
        cur = self._cur
        pool = self._timeout_pool
        times, buckets = self._times, self._buckets
        popleft = cur.popleft
        while True:
            # Per-batch hook snapshot: observers attach before run().
            ks = self.kernel_stats
            tel = self.telemetry
            inv = bool(self._invariants)
            if ks is None and tel is None and not inv:
                # Unobserved batch: the timed-run inner loop.  _fire() is
                # inlined (callbacks detach first, exactly as the method
                # does) and the per-event observer conditionals drop out.
                while cur:
                    event = popleft()
                    self._pending -= 1
                    cbs = event.callbacks
                    event.callbacks = None
                    if cbs:
                        for cb in cbs:
                            cb(event)
                    elif event._exception is not None and not event._defused:
                        raise event._exception
                    if type(event) is Timeout and event._pooled:
                        pool.append(event)
            else:
                while cur:
                    event = popleft()
                    self._pending -= 1
                    self._batch_n += 1
                    event._fire()
                    if type(event) is Timeout and event._pooled:
                        pool.append(event)
                    if ks is not None:
                        ks.on_fired(event)
                    if tel is not None:
                        tel.on_event(self._now)
                    if inv:
                        self._run_invariants()
            when = None
            while times:
                head = times[0]
                if buckets.get(head):
                    when = head
                    break
                heapq.heappop(times)
                buckets.pop(head, None)
            if when is None or (until is not None and when > until):
                return
            heapq.heappop(times)
            bucket = buckets.pop(when)
            if ks is not None and self._batch_n:
                ks.on_batch(self._batch_n)
            self._batch_n = 0
            self._now = when
            cur.extend(bucket)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock passes ``until``.

        If ``until`` is given, the clock is advanced exactly to ``until``
        even when no event lands on that timestamp.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        self._horizon = float("inf") if until is None else until
        try:
            if self._use_calendar:
                self._run_calendar(until)
            else:
                while self._heap:
                    if until is not None and self._heap[0][0] > until:
                        break
                    self.step()
        except StopSimulation:
            pass
        if until is not None:
            self._now = max(self._now, until)

    def stop(self) -> None:
        """Halt :meth:`run` from inside a callback or process."""
        raise StopSimulation()
