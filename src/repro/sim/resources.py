"""Shared-resource primitives built on the simulation kernel.

``Resource``
    A counted resource (server slots, disk arms, NIC channels).  Processes
    ``yield resource.request()`` to acquire a unit and call
    ``resource.release(req)`` when done.  FIFO service order.
``PriorityResource``
    Same, but pending requests are served lowest-priority-value first.
``Store``
    An unbounded (or bounded) FIFO buffer of Python objects with blocking
    ``get``; the basic building block for mailboxes and queues.
``Container``
    A continuous level (bytes, tokens) with blocking ``put``/``get``.

All primitives expose counters used by the metrics layer (peak queue length,
total waits, utilization integrals).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .engine import SimEvent, Simulator

__all__ = ["Request", "Resource", "PriorityResource", "Store", "Container"]


class Request(SimEvent):
    """The event returned by :meth:`Resource.request`.

    Succeeds when the resource grants a unit to the caller.  Keep the object:
    it is the handle passed to :meth:`Resource.release`.
    """

    __slots__ = ("resource", "priority", "requested_at", "granted_at",
                 "cancelled")

    def __init__(self, resource: "Resource", priority: float = 0.0):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority
        self.requested_at = resource.sim.now
        self.granted_at: Optional[float] = None
        self.cancelled = False

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request (e.g. after an interrupt)."""
        if self.granted_at is not None:
            raise RuntimeError("cannot cancel a granted request; release it")
        self.cancelled = True
        self.resource._purge()


class Resource:
    """A counted, FIFO-granted resource."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.users: list[Request] = []
        self.queue: list[Request] = []
        # bookkeeping for metrics
        self.total_requests = 0
        self.total_wait_time = 0.0
        self.peak_queue_len = 0
        self._busy_integral = 0.0
        self._last_change = sim.now
        self._created_at = sim.now

    # -- metrics ------------------------------------------------------------
    @property
    def in_use(self) -> int:
        return len(self.users)

    @property
    def queue_len(self) -> int:
        return len(self.queue)

    def utilization(self) -> float:
        """Time-average fraction of capacity in use since creation."""
        self._account()
        elapsed = self.sim.now - self._created_at
        if elapsed <= 0:
            return 0.0
        return self._busy_integral / (elapsed * self.capacity)

    def _account(self) -> None:
        dt = self.sim.now - self._last_change
        if dt > 0:
            self._busy_integral += dt * len(self.users)
            self._last_change = self.sim.now

    # -- protocol ------------------------------------------------------------
    def request(self, priority: float = 0.0) -> Request:
        """Ask for one unit of the resource.  Yield the returned event."""
        req = Request(self, priority)
        self.total_requests += 1
        self.queue.append(req)
        self.peak_queue_len = max(self.peak_queue_len, len(self.queue))
        self._grant()
        return req

    @property
    def can_acquire(self) -> bool:
        """True when a unit would be granted *right now* without queueing."""
        return not self.queue and len(self.users) < self.capacity

    def try_acquire(self) -> Optional[Request]:
        """Synchronously acquire one unit iff it is free right now.

        Returns the granted :class:`Request` (pass it to :meth:`release`),
        or ``None`` when the caller would have to queue -- callers fall back
        to ``yield resource.request()`` in that case.

        This is the kernel fast path's contention check.  Because
        :meth:`request` also grants synchronously inside ``_grant`` (only
        the *notification* is an event), acquiring here leaves every piece
        of bookkeeping -- counters, wait times, utilization integral --
        byte-identical to the event-based path, while skipping the grant
        event entirely.
        """
        if self.queue or len(self.users) >= self.capacity:
            return None
        req = Request(self)
        self.total_requests += 1
        # request() measures peak with the new request momentarily queued.
        self.peak_queue_len = max(self.peak_queue_len, 1)
        self._account()
        req.granted_at = self.sim.now
        req._value = req          # triggered, never scheduled
        self.users.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted unit."""
        if request not in self.users:
            raise RuntimeError("releasing a request that does not hold the resource")
        self._account()
        self.users.remove(request)
        self._grant()

    def _select_next(self) -> Optional[Request]:
        for req in self.queue:
            if not req.cancelled:
                return req
        return None

    def _purge(self) -> None:
        self.queue = [r for r in self.queue if not r.cancelled]
        self._grant()

    def _grant(self) -> None:
        while len(self.users) < self.capacity:
            nxt = self._select_next()
            if nxt is None:
                break
            self.queue.remove(nxt)
            self._account()
            nxt.granted_at = self.sim.now
            self.total_wait_time += nxt.granted_at - nxt.requested_at
            self.users.append(nxt)
            nxt.succeed(nxt)


class PriorityResource(Resource):
    """A resource whose queue is served lowest ``priority`` value first.

    Ties break FIFO (stable with respect to request order).
    """

    def _select_next(self) -> Optional[Request]:
        best: Optional[Request] = None
        for req in self.queue:
            if req.cancelled:
                continue
            if best is None or req.priority < best.priority:
                best = req
        return best


class Store:
    """A FIFO buffer of arbitrary items with blocking ``get``.

    ``put`` never blocks unless ``capacity`` is set and reached, in which
    case it raises (bounded stores in this codebase are error conditions,
    not backpressure points).
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None,
                 name: str = ""):
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: list[Any] = []
        self._getters: list[SimEvent] = []
        self.total_puts = 0
        self.total_gets = 0
        self.peak_size = 0

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes one waiting getter if any."""
        if self.capacity is not None and len(self.items) >= self.capacity:
            raise OverflowError(
                f"store {self.name!r} exceeded capacity {self.capacity}")
        self.total_puts += 1
        if self._getters:
            getter = self._getters.pop(0)
            self.total_gets += 1
            getter.succeed(item)
        else:
            self.items.append(item)
            self.peak_size = max(self.peak_size, len(self.items))

    def get(self) -> SimEvent:
        """Return an event yielding the next item (immediately if buffered)."""
        ev = SimEvent(self.sim)
        if self.items:
            self.total_gets += 1
            ev.succeed(self.items.pop(0))
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; ``None`` when empty."""
        if self.items:
            self.total_gets += 1
            return self.items.pop(0)
        return None

    def cancel_get(self, event: SimEvent) -> None:
        """Withdraw a pending getter (after an interrupt)."""
        try:
            self._getters.remove(event)
        except ValueError:
            pass


class Container:
    """A continuous quantity with blocking ``get`` (put is immediate)."""

    def __init__(self, sim: Simulator, init: float = 0.0,
                 capacity: float = float("inf"), name: str = ""):
        if init < 0 or init > capacity:
            raise ValueError("init must satisfy 0 <= init <= capacity")
        self.sim = sim
        self.level = init
        self.capacity = capacity
        self.name = name
        self._getters: list[tuple[float, SimEvent]] = []

    def put(self, amount: float) -> None:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self.level = min(self.capacity, self.level + amount)
        self._drain()

    def get(self, amount: float) -> SimEvent:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        ev = SimEvent(self.sim)
        self._getters.append((amount, ev))
        self._drain()
        return ev

    def _drain(self) -> None:
        while self._getters:
            amount, ev = self._getters[0]
            if amount > self.level:
                break
            self._getters.pop(0)
            self.level -= amount
            ev.succeed(amount)
