"""Shared-resource primitives built on the simulation kernel.

``Resource``
    A counted resource (server slots, disk arms, NIC channels).  Processes
    ``yield resource.request()`` to acquire a unit and call
    ``resource.release(req)`` when done.  FIFO service order.
``PriorityResource``
    Same, but pending requests are served lowest-priority-value first.
``Store``
    An unbounded (or bounded) FIFO buffer of Python objects with blocking
    ``get``; the basic building block for mailboxes and queues.
``Container``
    A continuous level (bytes, tokens) with blocking ``put``/``get``.

All primitives expose counters used by the metrics layer (peak queue length,
total waits, utilization integrals).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .engine import SimEvent, Simulator, Timeout
from .engine import _PENDING

__all__ = ["Request", "Resource", "PriorityResource", "Store", "Container",
           "SEGMENT_SPLIT"]

#: Sentinel delivered by a segmented hold's timeout when contention
#: materialized the internal boundary: the holder must release at the
#: boundary and replay the second burst through the event-accurate path.
SEGMENT_SPLIT = object()


class Request(SimEvent):
    """The event returned by :meth:`Resource.request`.

    Succeeds when the resource grants a unit to the caller.  Keep the object:
    it is the handle passed to :meth:`Resource.release`.
    """

    __slots__ = ("resource", "priority", "requested_at", "granted_at",
                 "cancelled", "hold")

    def __init__(self, resource: "Resource", priority: float = 0.0):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority
        self.requested_at = resource.sim._now
        self.granted_at: Optional[float] = None
        self.cancelled = False
        #: grant-and-hold duration (fast path only; see Resource.request)
        self.hold: Optional[float] = None

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request (e.g. after an interrupt)."""
        if self.granted_at is not None:
            raise RuntimeError("cannot cancel a granted request; release it")
        self.cancelled = True
        self.resource._purge()


class Resource:
    """A counted, FIFO-granted resource."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.users: list[Request] = []
        self.queue: list[Request] = []
        # bookkeeping for metrics
        self.total_requests = 0
        self.total_wait_time = 0.0
        self.peak_queue_len = 0
        self._busy_integral = 0.0
        self._last_change = sim.now
        self._created_at = sim.now
        #: active segmented hold (fast path only):
        #: (holder request, boundary time, pooled timeout, fire time)
        self._seg: Optional[tuple] = None
        #: recycled Request objects (fast path only; see :meth:`release`)
        self._req_pool: list[Request] = []

    # -- metrics ------------------------------------------------------------
    @property
    def in_use(self) -> int:
        return len(self.users)

    @property
    def queue_len(self) -> int:
        return len(self.queue)

    def utilization(self) -> float:
        """Time-average fraction of capacity in use since creation."""
        self._account()
        elapsed = self.sim.now - self._created_at
        if elapsed <= 0:
            return 0.0
        return self._busy_integral / (elapsed * self.capacity)

    def _account(self) -> None:
        now = self.sim._now
        dt = now - self._last_change
        if dt > 0:
            self._busy_integral += dt * len(self.users)
            self._last_change = now

    # -- protocol ------------------------------------------------------------
    def _take_request(self, priority: float = 0.0) -> Request:
        """A fresh or recycled :class:`Request` (pool filled by release)."""
        pool = self._req_pool
        if pool:
            req = pool.pop()
            req.callbacks = []
            req._value = _PENDING
            req._exception = None
            req._defused = False
            req.priority = priority
            req.requested_at = self.sim._now
            req.granted_at = None
            req.cancelled = False
            return req
        return Request(self, priority)

    def request(self, priority: float = 0.0,
                hold: Optional[float] = None) -> Request:
        """Ask for one unit of the resource.  Yield the returned event.

        ``hold`` (fast path only) is the *grant-and-hold* collapse: when
        the caller already knows it will hold the unit for exactly
        ``hold`` seconds and then release, the grant event is scheduled
        directly at ``grant_time + hold`` instead of waking the owner at
        the grant just so it can arm the same timer.  One event and one
        resume replace two of each; the grant bookkeeping (wait time,
        utilization integral) still happens at the grant instant, so
        every digested counter is byte-identical to the two-step path.
        The owner must call :meth:`release` immediately on wake-up.
        """
        seg = self._seg
        if seg is not None and self.sim._now <= seg[1]:
            # A contender arrived at or before a segmented hold's internal
            # boundary: split the hold so the grant timeline is identical
            # to the event-by-event path.
            self._split_segment()
        req = self._take_request(priority)
        req.hold = hold
        self.total_requests += 1
        self.queue.append(req)
        if len(self.queue) > self.peak_queue_len:
            self.peak_queue_len = len(self.queue)
        self._grant()
        return req

    @property
    def can_acquire(self) -> bool:
        """True when a unit would be granted *right now* without queueing."""
        return not self.queue and len(self.users) < self.capacity

    def try_acquire(self) -> Optional[Request]:
        """Synchronously acquire one unit iff it is free right now.

        Returns the granted :class:`Request` (pass it to :meth:`release`),
        or ``None`` when the caller would have to queue -- callers fall back
        to ``yield resource.request()`` in that case.

        This is the kernel fast path's contention check.  Because
        :meth:`request` also grants synchronously inside ``_grant`` (only
        the *notification* is an event), acquiring here leaves every piece
        of bookkeeping -- counters, wait times, utilization integral --
        byte-identical to the event-based path, while skipping the grant
        event entirely.
        """
        users = self.users
        if self.queue or len(users) >= self.capacity:
            return None
        req = self._take_request()
        self.total_requests += 1
        # request() measures peak with the new request momentarily queued.
        if self.peak_queue_len < 1:
            self.peak_queue_len = 1
        # inlined _account()
        now = self.sim._now
        dt = now - self._last_change
        if dt > 0:
            self._busy_integral += dt * len(users)
            self._last_change = now
        req.granted_at = now
        req._value = req          # triggered, never scheduled
        users.append(req)
        return req

    # -- segmented holds (fast path only) ------------------------------------
    def hold_segmented(self, request: Request, first_delay: float,
                       second_delay: float) -> Timeout:
        """Collapse two back-to-back holds by ``request``'s owner into one
        pooled timeout with a recorded internal boundary.

        The caller holds the resource for both bursts and yields the
        returned timeout.  If nothing contends, it wakes once at the end
        (value ``None``) and the elided re-acquire's bookkeeping is the
        caller's responsibility.  If a contender requests the resource at
        or before the boundary, the pending timeout is *cancelled by
        handle*, re-armed to fire at the boundary, and delivers
        :data:`SEGMENT_SPLIT` -- the caller must then release at the
        boundary (granting the contender exactly when the event-accurate
        path would) and replay the second hold through the normal path.
        """
        assert self._seg is None, "nested segmented hold"
        sim = self.sim
        # Absolute fire times, computed exactly as the event path would:
        # (t0 + d1) + d2, never t0 + (d1 + d2) -- float addition is not
        # associative and the equivalence contract is bitwise.
        boundary = sim._now + first_delay
        fire_at = boundary + second_delay
        timeout = sim.hot_timeout_at(fire_at)
        self._seg = (request, boundary, timeout, fire_at)
        return timeout

    def _split_segment(self) -> None:
        _req, boundary, timeout, fire_at = self._seg
        self._seg = None
        sim = self.sim
        if not sim._cancel_scheduled(timeout, fire_at):
            return  # already fired; nothing to split
        waiters = timeout.callbacks
        timeout.callbacks = []
        sim._timeout_pool.append(timeout)
        # Re-arm at the exact boundary (reusing the cancelled handle).
        rearmed = sim.hot_timeout_at(boundary)
        rearmed._value = SEGMENT_SPLIT
        for cb in waiters:
            rearmed.add_callback(cb)
            owner = getattr(cb, "__self__", None)
            if owner is not None and getattr(owner, "_target", None) is timeout:
                owner._target = rearmed

    def release(self, request: Request) -> None:
        """Return a previously granted unit."""
        users = self.users
        try:
            idx = users.index(request)
        except ValueError:
            raise RuntimeError(
                "releasing a request that does not hold the resource") from None
        seg = self._seg
        if seg is not None and seg[0] is request:
            self._seg = None
        # inlined _account() (the busy integral accrues over the pre-release
        # user count, so this must precede the removal)
        now = self.sim._now
        dt = now - self._last_change
        if dt > 0:
            self._busy_integral += dt * len(users)
            self._last_change = now
        del users[idx]
        if self.queue:
            self._grant()
        if self.sim.fast_path and type(request) is Request:
            # The handle is dead past this point by contract; recycle it.
            self._req_pool.append(request)

    def _select_next(self) -> Optional[Request]:
        for req in self.queue:
            if not req.cancelled:
                return req
        return None

    def _purge(self) -> None:
        self.queue = [r for r in self.queue if not r.cancelled]
        self._grant()

    def _grant(self) -> None:
        while len(self.users) < self.capacity:
            nxt = self._select_next()
            if nxt is None:
                break
            self.queue.remove(nxt)
            self._account()
            nxt.granted_at = self.sim._now
            self.total_wait_time += nxt.granted_at - nxt.requested_at
            self.users.append(nxt)
            hold = nxt.hold
            if hold is None:
                nxt.succeed(nxt)
            else:
                # Grant-and-hold (see request()): fire the grant event at
                # the end of the declared hold.  grant_time + hold is the
                # exact expression the two-step path evaluates when the
                # woken owner arms its timer, so fire times are bitwise
                # equal.
                nxt._value = nxt
                self.sim._enqueue(hold, nxt)


class PriorityResource(Resource):
    """A resource whose queue is served lowest ``priority`` value first.

    Ties break FIFO (stable with respect to request order).
    """

    def _select_next(self) -> Optional[Request]:
        best: Optional[Request] = None
        for req in self.queue:
            if req.cancelled:
                continue
            if best is None or req.priority < best.priority:
                best = req
        return best


class Store:
    """A FIFO buffer of arbitrary items with blocking ``get``.

    ``put`` never blocks unless ``capacity`` is set and reached, in which
    case it raises (bounded stores in this codebase are error conditions,
    not backpressure points).
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None,
                 name: str = ""):
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: list[Any] = []
        self._getters: list[SimEvent] = []
        self.total_puts = 0
        self.total_gets = 0
        self.peak_size = 0

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes one waiting getter if any."""
        if self.capacity is not None and len(self.items) >= self.capacity:
            raise OverflowError(
                f"store {self.name!r} exceeded capacity {self.capacity}")
        self.total_puts += 1
        if self._getters:
            getter = self._getters.pop(0)
            self.total_gets += 1
            getter.succeed(item)
        else:
            self.items.append(item)
            self.peak_size = max(self.peak_size, len(self.items))

    def get(self) -> SimEvent:
        """Return an event yielding the next item (immediately if buffered)."""
        ev = SimEvent(self.sim)
        if self.items:
            self.total_gets += 1
            ev.succeed(self.items.pop(0))
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; ``None`` when empty."""
        if self.items:
            self.total_gets += 1
            return self.items.pop(0)
        return None

    def cancel_get(self, event: SimEvent) -> None:
        """Withdraw a pending getter (after an interrupt)."""
        try:
            self._getters.remove(event)
        except ValueError:
            pass


class Container:
    """A continuous quantity with blocking ``get`` (put is immediate)."""

    def __init__(self, sim: Simulator, init: float = 0.0,
                 capacity: float = float("inf"), name: str = ""):
        if init < 0 or init > capacity:
            raise ValueError("init must satisfy 0 <= init <= capacity")
        self.sim = sim
        self.level = init
        self.capacity = capacity
        self.name = name
        self._getters: list[tuple[float, SimEvent]] = []

    def put(self, amount: float) -> None:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self.level = min(self.capacity, self.level + amount)
        self._drain()

    def get(self, amount: float) -> SimEvent:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        ev = SimEvent(self.sim)
        self._getters.append((amount, ev))
        self._drain()
        return ev

    def _drain(self) -> None:
        while self._getters:
            amount, ev = self._getters[0]
            if amount > self.level:
                break
            self._getters.pop(0)
            self.level -= amount
            ev.succeed(amount)
