"""Measurement primitives shared by every experiment.

The experiment harness needs exactly what WebBench reported: request
throughput (requests/second over a measurement window), per-class breakdowns,
and latency summaries.  This module provides small, composable collectors:

``Counter``          monotone event counts with rate-over-window helpers
``SummaryStats``     streaming mean/variance/min/max (Welford)
``Histogram``        fixed log-spaced buckets with percentile estimates
``TimeWeighted``     time-averaged piecewise-constant signals (queue lengths)
``ThroughputMeter``  completions per second inside [warmup, end]
``MetricSet``        a namespaced bag of the above
"""

from __future__ import annotations

import math
from typing import Optional

__all__ = ["Counter", "SummaryStats", "Histogram", "TimeWeighted",
           "ThroughputMeter", "MetricSet"]


class Counter:
    """A monotone counter of occurrences."""

    def __init__(self, name: str = ""):
        self.name = name
        self.count = 0

    def increment(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters are monotone; use a separate counter")
        self.count += n

    def rate(self, elapsed: float) -> float:
        """Occurrences per unit time over ``elapsed``."""
        return self.count / elapsed if elapsed > 0 else 0.0


class SummaryStats:
    """Streaming summary statistics (Welford's online algorithm)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, x: float) -> None:
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        self.min = min(self.min, x)
        self.max = max(self.max, x)

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "SummaryStats") -> "SummaryStats":
        """Combine two summaries (parallel Welford merge)."""
        merged = SummaryStats(self.name)
        merged.n = self.n + other.n
        if merged.n == 0:
            return merged
        delta = other._mean - self._mean
        merged._mean = self._mean + delta * other.n / merged.n
        merged._m2 = (self._m2 + other._m2 +
                      delta * delta * self.n * other.n / merged.n)
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        return merged


class Histogram:
    """Log-spaced histogram with percentile estimation.

    Buckets span ``[low, high]`` geometrically; observations outside the
    range land in the first/last bucket.  Percentiles are linearly
    interpolated inside the winning bucket, which is accurate enough for
    latency reporting (bucket ratio defaults to ~1.12, i.e. <=12 % error).
    """

    def __init__(self, low: float = 1e-6, high: float = 1e3,
                 buckets_per_decade: int = 20, name: str = ""):
        if low <= 0 or high <= low:
            raise ValueError("need 0 < low < high")
        self.name = name
        self.low = low
        self.high = high
        decades = math.log10(high / low)
        self.nbuckets = max(1, int(math.ceil(decades * buckets_per_decade)))
        self._ratio = (high / low) ** (1.0 / self.nbuckets)
        self.counts = [0] * self.nbuckets
        self.total = 0
        #: observations that landed outside [low, high] -- they are counted
        #: in the first/last bucket, but a large count here means the
        #: configured range does not fit the data
        self.underflow = 0
        self.overflow = 0
        self.stats = SummaryStats(name)

    def _bucket(self, x: float) -> int:
        if x <= self.low:
            return 0
        if x >= self.high:
            return self.nbuckets - 1
        idx = int(math.log(x / self.low) / math.log(self._ratio))
        return min(max(idx, 0), self.nbuckets - 1)

    def observe(self, x: float) -> None:
        self.counts[self._bucket(x)] += 1
        self.total += 1
        if x < self.low:
            self.underflow += 1
        elif x > self.high:
            self.overflow += 1
        self.stats.observe(x)

    def bucket_bounds(self, idx: int) -> tuple[float, float]:
        lo = self.low * self._ratio ** idx
        return lo, lo * self._ratio

    def percentile(self, p: float) -> float:
        """Estimate the p-th percentile (p in [0, 100]).

        The interpolated estimate is clamped to the observed
        ``[stats.min, stats.max]`` range, so an out-of-range observation
        parked in an edge bucket (see ``underflow``/``overflow``) can never
        make a percentile report a value no request actually saw.
        """
        if not 0 <= p <= 100:
            raise ValueError("p must be within [0, 100]")
        if self.total == 0:
            return 0.0
        target = p / 100.0 * self.total
        acc = 0
        estimate = self.high
        for idx, c in enumerate(self.counts):
            if acc + c >= target:
                lo, hi = self.bucket_bounds(idx)
                frac = (target - acc) / c if c else 0.0
                estimate = lo + (hi - lo) * frac
                break
            acc += c
        return min(max(estimate, self.stats.min), self.stats.max)


class TimeWeighted:
    """Time-average of a piecewise-constant signal (e.g. queue length)."""

    def __init__(self, now: float = 0.0, value: float = 0.0, name: str = ""):
        self.name = name
        self._last_t = now
        self._value = value
        self._integral = 0.0
        self._start = now
        self.peak = value

    @property
    def value(self) -> float:
        return self._value

    def update(self, now: float, value: float) -> None:
        if now < self._last_t:
            raise ValueError("time must be monotone")
        self._integral += self._value * (now - self._last_t)
        self._last_t = now
        self._value = value
        self.peak = max(self.peak, value)

    def average(self, now: float) -> float:
        elapsed = now - self._start
        if elapsed <= 0:
            return self._value
        return (self._integral + self._value * (now - self._last_t)) / elapsed


class ThroughputMeter:
    """Counts completions inside a [warmup, horizon] measurement window."""

    def __init__(self, warmup: float = 0.0, name: str = ""):
        self.name = name
        self.warmup = warmup
        self.completions = 0
        self.bytes = 0
        self.first_t: Optional[float] = None
        self.last_t: Optional[float] = None

    def record(self, now: float, nbytes: int = 0) -> None:
        if now < self.warmup:
            return
        self.completions += 1
        self.bytes += nbytes
        if self.first_t is None:
            self.first_t = now
        self.last_t = now

    def requests_per_second(self, horizon: float) -> float:
        """Completions per second between warmup and ``horizon``."""
        window = horizon - self.warmup
        if window <= 0:
            return 0.0
        return self.completions / window

    def bytes_per_second(self, horizon: float) -> float:
        window = horizon - self.warmup
        if window <= 0:
            return 0.0
        return self.bytes / window


class MetricSet:
    """A lazily-populated, namespaced bag of collectors."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._stats: dict[str, SummaryStats] = {}
        self._histograms: dict[str, Histogram] = {}
        self._timeweighted: dict[str, TimeWeighted] = {}
        self._meters: dict[str, ThroughputMeter] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def stats(self, name: str) -> SummaryStats:
        if name not in self._stats:
            self._stats[name] = SummaryStats(name)
        return self._stats[name]

    def histogram(self, name: str, **kwargs) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name=name, **kwargs)
        return self._histograms[name]

    def timeweighted(self, name: str, now: float = 0.0) -> TimeWeighted:
        """A named piecewise-constant signal; ``now`` seeds first creation."""
        if name not in self._timeweighted:
            self._timeweighted[name] = TimeWeighted(now=now, name=name)
        return self._timeweighted[name]

    def meter(self, name: str, warmup: float = 0.0) -> ThroughputMeter:
        """A named completion meter; ``warmup`` applies on first creation."""
        if name not in self._meters:
            self._meters[name] = ThroughputMeter(warmup=warmup, name=name)
        return self._meters[name]

    def counter_value(self, name: str) -> int:
        """Read a counter without creating it (0 when absent).

        Telemetry probes use this instead of :meth:`counter`: a sampling
        read must never materialize a collector, or enabling telemetry
        would change the key set of :meth:`snapshot` and break the
        zero-perturbation contract.
        """
        c = self._counters.get(name)
        return c.count if c is not None else 0

    def meter_value(self, name: str) -> int:
        """Read a meter's completion count without creating it."""
        m = self._meters.get(name)
        return m.completions if m is not None else 0

    def snapshot(self, now: Optional[float] = None) -> dict:
        """A plain-dict view for reports and assertions.

        Keys are sorted in every section, so two equal metric sets always
        serialize identically.  Passing ``now`` adds the time-average to
        each ``timeweighted`` entry (the average is undefined without a
        clock reading).
        """
        timeweighted: dict[str, dict[str, float]] = {}
        for k in sorted(self._timeweighted):
            v = self._timeweighted[k]
            entry: dict[str, float] = {"value": v.value, "peak": v.peak}
            if now is not None:
                entry["avg"] = v.average(now)
            timeweighted[k] = entry
        return {
            "counters": {k: self._counters[k].count
                         for k in sorted(self._counters)},
            "stats": {k: {"n": v.n, "mean": v.mean, "min": v.min,
                          "max": v.max, "stdev": v.stdev}
                      for k, v in sorted(self._stats.items())},
            "histograms": {k: {"n": v.total,
                               "p50": v.percentile(50),
                               "p95": v.percentile(95),
                               "p99": v.percentile(99),
                               "underflow": v.underflow,
                               "overflow": v.overflow}
                           for k, v in sorted(self._histograms.items())},
            "timeweighted": timeweighted,
            "meters": {k: {"n": v.completions, "bytes": v.bytes}
                       for k, v in sorted(self._meters.items())},
        }
