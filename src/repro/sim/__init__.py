"""Discrete-event simulation substrate.

Everything above this package (network, cluster, distributor, management)
is written as generator processes scheduled by :class:`~repro.sim.Simulator`.
"""

from .engine import (AllOf, AnyOf, Injection, Interrupt, Process, SimEvent,
                     Simulator, StopSimulation, Timeout)
from .metrics import (Counter, Histogram, MetricSet, SummaryStats,
                      ThroughputMeter, TimeWeighted)
from .resources import Container, PriorityResource, Request, Resource, Store
from .rng import (HybridSizeSampler, LognormalSampler, ParetoSampler,
                  RngStream, ZipfSampler)

__all__ = [
    "Simulator", "SimEvent", "Timeout", "Process", "Interrupt",
    "AllOf", "AnyOf", "StopSimulation", "Injection",
    "Resource", "PriorityResource", "Request", "Store", "Container",
    "RngStream", "ZipfSampler", "ParetoSampler", "LognormalSampler",
    "HybridSizeSampler",
    "Counter", "SummaryStats", "Histogram", "TimeWeighted",
    "ThroughputMeter", "MetricSet",
]
