"""repro -- reproduction of Yang & Luo, "A Content Placement and Management
System for Distributed Web-Server Systems" (ICDCS 2000).

The package is layered bottom-up:

``repro.sim``          discrete-event simulation kernel
``repro.net``          packets, TCP, HTTP, and the 100 Mbps LAN model
``repro.content``      content items, synthetic site catalogs, document trees
``repro.cluster``      heterogeneous backend servers, caches, disks, NFS
``repro.core``         the paper's contribution: content-aware distributor,
                       URL table, placement schemes, load balancing, failover
``repro.mgmt``         controller / broker / agent management system
``repro.workload``     WebBench-style closed-loop load generation
``repro.experiments``  testbed construction and figure/table reproduction
"""

__version__ = "1.0.0"
