"""Workload generation: the paper's Workloads A/B and WebBench-style rigs."""

from .sampler import RequestSampler
from .trace import Trace, TraceEntry, TraceReplayer, generate_trace
from .webbench import ClientStats, WebBenchClient, WebBenchRig
from .workloads import WORKLOAD_A, WORKLOAD_B, WorkloadSpec

__all__ = [
    "WorkloadSpec", "WORKLOAD_A", "WORKLOAD_B",
    "RequestSampler",
    "WebBenchClient", "WebBenchRig", "ClientStats",
    "Trace", "TraceEntry", "TraceReplayer", "generate_trace",
]
