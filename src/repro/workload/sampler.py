"""Request sampling: turns a workload spec + catalog into a request stream.

Two-stage sampling, the way benchmark generators of the era worked:

1. draw the *content class* from the workload's request mix;
2. draw the *document* within the class from a Zipf distribution over the
   class's documents.

Within a class, popularity ranks are assigned smallest-file-first: the
cited characterizations (Arlitt & Williamson invariant; Barford & Crovella)
found that popular documents are small, which keeps the request-weighted
byte volume realistic while the inventory stays heavy-tailed.
"""

from __future__ import annotations

from typing import Optional

from ..content import ContentItem, ContentType, SiteCatalog
from ..net import HttpRequest, HttpVersion
from ..sim import RngStream, ZipfSampler
from .workloads import WorkloadSpec

__all__ = ["RequestSampler"]


class RequestSampler:
    """Draws requests according to a workload spec."""

    def __init__(self, catalog: SiteCatalog, spec: WorkloadSpec,
                 rng: Optional[RngStream] = None,
                 http10_fraction: float = 0.15):
        if not 0.0 <= http10_fraction <= 1.0:
            raise ValueError("http10_fraction must be in [0, 1]")
        self.catalog = catalog
        self.spec = spec
        self.rng = rng or RngStream(0, "sampler")
        self.http10_fraction = http10_fraction
        self._class_rng = self.rng.substream("class")
        self._proto_rng = self.rng.substream("proto")
        # per-class item lists, smallest file first (rank 1 = most popular)
        self._classes: list[tuple[ContentType, float]] = []
        self._items: dict[ContentType, list[ContentItem]] = {}
        self._zipf: dict[ContentType, ZipfSampler] = {}
        acc = 0.0
        for ctype, frac in sorted(spec.request_mix.items(),
                                  key=lambda kv: kv[0].value):
            if frac == 0.0:
                continue
            items = sorted(catalog.by_type(ctype),
                           key=lambda i: (i.size_bytes, i.path))
            if not items:
                raise ValueError(
                    f"workload {spec.name} requests {ctype} but the "
                    "catalog has no such items")
            acc += frac
            self._classes.append((ctype, acc))
            self._items[ctype] = items
            self._zipf[ctype] = ZipfSampler(
                len(items), alpha=spec.zipf_alpha,
                rng=self.rng.substream(f"zipf/{ctype.value}"))
        self.samples_drawn = 0

    def sample_class(self) -> ContentType:
        u = self._class_rng.random() * self._classes[-1][1]
        for ctype, cum in self._classes:
            if u <= cum:
                return ctype
        return self._classes[-1][0]

    def sample_item(self, ctype: Optional[ContentType] = None) -> ContentItem:
        """Draw one document (optionally within a fixed class)."""
        if ctype is None:
            ctype = self.sample_class()
        rank = self._zipf[ctype].sample()
        self.samples_drawn += 1
        return self._items[ctype][rank - 1]

    def request(self, client_id: str = "", now: float = 0.0) -> HttpRequest:
        """Draw one full HTTP request."""
        item = self.sample_item()
        version = (HttpVersion.HTTP_1_0
                   if self._proto_rng.random() < self.http10_fraction
                   else HttpVersion.HTTP_1_1)
        return HttpRequest(url=item.path, version=version,
                           client_id=client_id, issued_at=now)

    def expected_request_bytes(self, draws: int = 5000) -> float:
        """Monte-Carlo estimate of the request-weighted mean object size
        (used for calibration assertions and reports)."""
        probe = RngStream(self.rng.seed, f"{self.rng.label}/probe")
        total = 0
        sampler = RequestSampler(self.catalog, self.spec, rng=probe,
                                 http10_fraction=self.http10_fraction)
        for _ in range(draws):
            total += sampler.sample_item().size_bytes
        return total / draws
